"""Exploring the bin-count tension and COBRA's answer to it.

Reproduces, on a workload of your choice, the paper's core motivation
(Figure 4): software PB must compromise on one bin count, while COBRA's
hierarchical C-Buffers give Binning an L1-resident view of a few buffers
and Accumulate a large in-memory bin count simultaneously. Also shows the
eviction-buffer DES (Figure 13a) sizing the hardware FIFOs.

Run:  python examples/tune_binning.py [workload] [input]
      e.g. python examples/tune_binning.py integer-sort U16
"""

import sys

from repro.des import EvictionBufferModel, EvictionModelConfig
from repro.harness import Runner
from repro.harness.inputs import WORKLOAD_INPUTS, make_workload
from repro.harness.report import format_table
from repro.pb import BinSpec


def main(workload_name="neighbor-populate", input_name="KRON"):
    runner = Runner(max_sim_events=100_000)
    workload = make_workload(workload_name, input_name, scale=16)
    plan = runner.plan(workload)
    print(f"{workload_name}/{input_name}: {workload}")
    print(f"planner: {plan.describe()}\n")

    # The software sweep: one bin count must serve both phases.
    rows = []
    for num_bins in (16, 64, 256, 1024, 4096):
        spec = BinSpec.from_num_bins(workload.num_indices, num_bins)
        counters = runner.run_with_spec(workload, spec, include_init=False)
        rows.append(
            [
                spec.num_bins,
                counters.phase("binning").cycles / 1e6,
                counters.phase("accumulate").cycles / 1e6,
                counters.cycles / 1e6,
            ]
        )
    print(
        format_table(
            ["bins", "binning Mcyc", "accumulate Mcyc", "total Mcyc"],
            rows,
            title="Software PB: the Figure 4 tension",
        )
    )

    # COBRA's answer: per-level buffer counts from bininit.
    cobra = runner.cobra_config(workload)
    print(
        f"\nCOBRA bininit: L1 {cobra.l1.num_buffers} buffers "
        f"(range {cobra.l1.bin_range}) -> L2 {cobra.l2.num_buffers} -> "
        f"LLC {cobra.llc.num_buffers} = in-memory bins"
    )
    from repro.harness import COBRA, PB_SW

    pb = runner.run(workload, PB_SW)
    hw = runner.run(workload, COBRA)
    print(
        f"PB-SW {pb.cycles / 1e6:.1f}M cycles -> COBRA "
        f"{hw.cycles / 1e6:.1f}M cycles ({pb.cycles / hw.cycles:.2f}x)\n"
    )

    # Eviction-buffer sizing via the DES (Figure 13a).
    rows = []
    for entries in (1, 4, 16, 32):
        config = EvictionModelConfig(
            num_indices=workload.num_indices,
            l1_buffers=cobra.l1.num_buffers,
            l2_buffers=cobra.l2.num_buffers,
            llc_buffers=cobra.llc.num_buffers,
            tuples_per_line=cobra.tuples_per_line,
            l1_evict_queue=entries,
        )
        result = EvictionBufferModel(config).run(
            workload.update_indices[:30_000]
        )
        rows.append([entries, result.stall_fraction])
    print(
        format_table(
            ["L1->L2 FIFO entries", "stall fraction"],
            rows,
            title="Eviction-buffer DES (Figure 13a)",
            floatfmt="{:.4f}",
        )
    )


if __name__ == "__main__":
    args = sys.argv[1:3]
    if args and args[0] not in WORKLOAD_INPUTS:
        raise SystemExit(
            f"unknown workload {args[0]!r}; pick from {sorted(WORKLOAD_INPUTS)}"
        )
    main(*args)
