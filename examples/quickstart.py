"""Quickstart: Propagation Blocking and COBRA in five minutes.

Builds a small power-law graph, runs the degree-counting kernel three ways
— directly, with software PB, and through the COBRA machine model — and
shows that all three agree while the performance model explains why they
differ in speed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CobraConfig, CobraMachine
from repro.graphs import rmat
from repro.harness import BASELINE, COBRA, PB_SW, Runner
from repro.harness.inputs import make_workload
from repro.pb import PropagationBlocker


def main():
    # ------------------------------------------------------------------ #
    # 1. An irregular update stream: count vertex degrees of a graph.
    # ------------------------------------------------------------------ #
    edges = rmat(num_vertices=1 << 14, num_edges=1 << 17, seed=7)
    print(f"input: {edges}")

    degrees_direct = np.zeros(edges.num_vertices, dtype=np.int64)
    np.add.at(degrees_direct, edges.src, 1)

    # ------------------------------------------------------------------ #
    # 2. The same kernel under software Propagation Blocking.
    # ------------------------------------------------------------------ #
    blocker = PropagationBlocker(edges.num_vertices, num_bins=256)
    degrees_pb = blocker.execute(
        edges.src,
        np.ones(edges.num_edges, dtype=np.int64),
        np.zeros(edges.num_vertices, dtype=np.int64),
        op="add",
    )
    print(
        f"software PB ({blocker.num_bins} bins) matches direct execution:",
        bool(np.array_equal(degrees_direct, degrees_pb)),
    )

    # ------------------------------------------------------------------ #
    # 3. The same stream through the COBRA machine model: binupdate per
    #    tuple, hierarchical C-Buffer evictions, binflush at the end.
    # ------------------------------------------------------------------ #
    config = CobraConfig(num_indices=edges.num_vertices, tuple_bytes=4)
    machine = CobraMachine(config).bininit()
    machine.binupdate_many(edges.src.tolist())
    machine.binflush()
    degrees_cobra = np.zeros(edges.num_vertices, dtype=np.int64)
    for bin_tuples in machine.memory_bins.bins:
        for index, _value in bin_tuples:
            degrees_cobra[index] += 1
    print(
        "COBRA machine matches direct execution:",
        bool(np.array_equal(degrees_direct, degrees_cobra)),
    )
    print(
        f"COBRA C-Buffers: {config.l1.num_buffers} (L1) -> "
        f"{config.l2.num_buffers} (L2) -> {config.llc.num_buffers} (LLC); "
        f"{machine.stats.l1_evictions} L1 evictions, "
        f"{machine.memory_bins.lines_written} DRAM lines written"
    )

    # ------------------------------------------------------------------ #
    # 4. Why it is faster: the performance model.
    # ------------------------------------------------------------------ #
    runner = Runner(max_sim_events=100_000)
    workload = make_workload("degree-count", "KRON", scale=17)
    baseline = runner.run(workload, BASELINE).cycles
    pb = runner.run(workload, PB_SW).cycles
    cobra = runner.run(workload, COBRA).cycles
    print(
        f"\nmodeled cycles  baseline={baseline / 1e6:.1f}M  "
        f"PB={pb / 1e6:.1f}M ({baseline / pb:.2f}x)  "
        f"COBRA={cobra / 1e6:.1f}M ({baseline / cobra:.2f}x, "
        f"{pb / cobra:.2f}x over PB)"
    )


if __name__ == "__main__":
    main()
