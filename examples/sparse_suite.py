"""Sparse linear algebra under Propagation Blocking.

Exercises the four SuiteSparse/HPCG-style kernels the paper generalizes PB
to: transpose-SpMV (commutative float adds), PINV, Transpose, and SymPerm
(all non-commutative placements) — demonstrating that unordered
parallelism, not commutativity, is what PB needs.

Run:  python examples/sparse_suite.py
"""

import numpy as np

from repro.harness import BASELINE, COBRA, COBRA_COMM, PB_SW, Runner
from repro.harness.report import format_table
from repro.sparse import (
    poisson2d,
    random_permutation,
    random_symmetric,
)
from repro.workloads import PInv, SpMV, SymPerm, Transpose


def main():
    matrix = poisson2d(side=512, seed=5).to_csr()
    n = matrix.num_rows
    print(f"simulation matrix: {matrix}")

    # Transpose-SpMV: y = A.T x with scattered adds.
    spmv = SpMV(matrix, seed=1)
    assert np.allclose(spmv.run_reference(), spmv.run_pb_functional(64))
    print("spmv: PB result matches direct scatter")

    # PINV: invert a permutation (every index written exactly once).
    perm = random_permutation(n, seed=2)
    pinv = PInv(perm)
    inverse = pinv.run_pb_functional(64)
    assert np.array_equal(perm[inverse], np.arange(n))
    print("pinv: PB-computed inverse verified (perm[inv] == identity)")

    # Transpose: build A.T by non-commutative cursor placement.
    transpose = Transpose(matrix)
    built = transpose.run_pb_functional(64)
    assert built.nnz == matrix.nnz
    print(f"transpose: built {built} via binned placement")

    # SymPerm: permute the upper triangle of a symmetric matrix.
    sym = random_symmetric(n, n * 2, seed=3)
    symperm = SymPerm(sym, random_permutation(n, seed=4))
    lo, hi, vals = symperm.run_pb_functional(64)
    assert np.all(hi >= lo)
    print(f"symperm: permuted {len(vals)} upper-triangular entries\n")

    # Modeled performance across modes. COBRA-COMM applies only to the
    # commutative SpMV — the harness enforces the Section III-B rule.
    runner = Runner(max_sim_events=100_000)
    rows = []
    for workload in (spmv, pinv, transpose, symperm):
        base = runner.run(workload, BASELINE, use_cache=False).cycles
        pb = runner.run(workload, PB_SW, use_cache=False).cycles
        cobra = runner.run(workload, COBRA, use_cache=False).cycles
        if workload.commutative:
            comm = runner.run(workload, COBRA_COMM, use_cache=False).cycles
            comm_cell = f"{base / comm:.2f}"
        else:
            comm_cell = "n/a (non-commutative)"
        rows.append(
            [workload.name, base / pb, base / cobra, comm_cell]
        )
    print(
        format_table(
            ["kernel", "PB x", "COBRA x", "COBRA-COMM x"],
            rows,
            title="Sparse kernels: speedup over direct execution (modeled)",
        )
    )


if __name__ == "__main__":
    main()
