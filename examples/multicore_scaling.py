"""Multicore scaling: why PB/COBRA's per-thread duplication matters.

The paper's parallel PB gives every thread its own bins and C-Buffers, so
Binning needs no synchronization and no cache line ever ping-pongs. This
example measures the consequence with the MESI directory model: the
baseline's shared scatters pay invalidations per update on skewed graphs,
while PB and COBRA scale cleanly.

Run:  python examples/multicore_scaling.py
"""

from repro.cache import DirectoryMESI
from repro.harness import BASELINE, COBRA, PB_SW, Runner
from repro.harness.inputs import make_workload
from repro.harness.parallel import ParallelModel
from repro.harness.report import format_table


def main():
    runner = Runner(max_sim_events=100_000)
    workload = make_workload("pagerank", "KRON", scale=17)
    print(f"workload: {workload}\n")

    # A direct look at the coherence behaviour: interleave the update
    # stream across 4 cores and watch the MESI directory.
    directory = DirectoryMESI(num_cores=4)
    sample = workload.update_indices[:40_000]
    for position, index in enumerate((sample // 16).tolist()):
        directory.write(position % 4, index)
    stats = directory.stats
    print(
        f"baseline sharing on 4 cores: "
        f"{stats.invalidations_per_access:.2f} invalidations/update, "
        f"{stats.cache_transfers} cache-to-cache transfers in "
        f"{stats.accesses} updates\n"
    )

    # The scaling curves.
    model = ParallelModel(runner)
    rows = []
    for mode in (BASELINE, PB_SW, COBRA):
        curve = model.scaling_curve(workload, mode, core_counts=(1, 4, 16))
        base = curve[0].parallel_cycles
        for estimate in curve:
            rows.append(
                [
                    mode,
                    estimate.num_cores,
                    base / estimate.parallel_cycles,
                    estimate.invalidations_per_update,
                ]
            )
    print(
        format_table(
            ["mode", "cores", "speedup", "inval/update"],
            rows,
            title="Scalability (speedup vs the same mode on 1 core)",
        )
    )
    print(
        "\nPB and COBRA scale without coherence traffic because bins and\n"
        "C-Buffers are core-private — the property that also lets COBRA\n"
        "repurpose the MESI state bits as offset counters (Section V-C)."
    )


if __name__ == "__main__":
    main()
