"""Graph-processing pipeline: Edgelist → CSR → Pagerank → Radii, with PB.

The scenario the paper's introduction motivates: a full single-machine
graph-analytics pipeline where *both* the preprocessing (building the CSR,
Graph500-style) and the analytics (Pagerank, Radii) are dominated by
irregular updates — and every stage can be Propagation-Blocked, including
the non-commutative Neighbor-Populate step (Section III-B).

Run:  python examples/graph_pipeline.py
"""

import numpy as np

from repro.graphs import rmat
from repro.harness import BASELINE, COBRA, PB_SW, Runner
from repro.harness.report import format_table
from repro.workloads import DegreeCount, NeighborPopulate, Pagerank, Radii


def main():
    edges = rmat(num_vertices=1 << 17, num_edges=1 << 20, seed=11)
    print(f"pipeline input: {edges}\n")

    # ------------------------------------------------------------------ #
    # Stage 1+2: Edgelist-to-CSR conversion under PB.
    # ------------------------------------------------------------------ #
    degree_count = DegreeCount(edges)
    degrees = degree_count.run_pb_functional(num_bins=128)
    print(f"degree-count (PB): max degree {int(degrees.max())}")

    populate = NeighborPopulate(edges)
    graph = populate.run_pb_functional(num_bins=128)
    reference = populate.run_reference()
    same = np.array_equal(
        graph.canonical_sorted().neighbors,
        reference.canonical_sorted().neighbors,
    )
    print(
        f"neighbor-populate (PB, non-commutative): built {graph}; "
        f"semantically equal to direct build: {same}"
    )

    # ------------------------------------------------------------------ #
    # Stage 3: analytics on the built CSR.
    # ------------------------------------------------------------------ #
    pagerank = Pagerank(graph)
    scores, iterations = pagerank.run_to_convergence(tol=1e-7)
    top = np.argsort(scores)[-3:][::-1]
    print(
        f"pagerank: converged in {iterations} iterations; "
        f"top vertices {top.tolist()}"
    )

    radii = Radii(graph, seed=3)
    visited = radii.run_pb_functional(num_bins=128)
    newly = int(np.count_nonzero(visited != radii.visited))
    print(f"radii (multi-source BFS step): {newly} vertices gained bits\n")

    # ------------------------------------------------------------------ #
    # Performance: the whole pipeline under each execution mode.
    # ------------------------------------------------------------------ #
    runner = Runner(max_sim_events=100_000)
    rows = []
    for workload in (degree_count, populate, pagerank, radii):
        base = runner.run(workload, BASELINE, use_cache=False).cycles
        pb = runner.run(workload, PB_SW, use_cache=False).cycles
        cobra = runner.run(workload, COBRA, use_cache=False).cycles
        rows.append([workload.name, base / pb, base / cobra])
    print(
        format_table(
            ["stage", "PB speedup", "COBRA speedup"],
            rows,
            title="Pipeline speedups over direct execution (modeled)",
        )
    )


if __name__ == "__main__":
    main()
