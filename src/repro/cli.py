"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro list                      # available experiments
    python -m repro inputs                    # the scaled Table III
    python -m repro run fig10 --scale 16      # one experiment
    python -m repro run fig13a fig13b fig13c  # several
    python -m repro run fig10 --jobs 4        # parallel sweep executor
    python -m repro run fig10 --no-cache      # skip the persistent cache
    python -m repro run fig10 --jobs 4 --timeout 600 --retries 2 \
        --telemetry run.jsonl                 # fault-tolerant + observable
    python -m repro run fig10 --jobs 4 --checkpoint-dir  # journal progress
    python -m repro point pagerank KRON --mode cobra  # one point, validated
    python -m repro runs                      # list checkpointed runs
    python -m repro runs --json               # machine-readable run list
    python -m repro resume 1f2e3d4c5b6a       # finish an interrupted run
    python -m repro serve --port 0            # crash-safe sweep daemon
    python -m repro submit degree-count:KRON:13:cobra --wait  # run via daemon
    python -m repro jobs                      # the daemon's job table
    python -m repro report --telemetry run.jsonl  # summarize a run log
    python -m repro machine                   # the simulated machine
    python -m repro lint                      # determinism static analysis
    python -m repro lint --json               # machine-readable findings
    python -m repro lint --baseline write     # regenerate lint_baseline.json
    python -m repro capture                   # record golden canary runs
    python -m repro replay                    # diff canary vs goldens
    python -m repro replay --gate counters --report replay.json  # CI gate
    python -m repro report --replay replay.json  # render a saved report
    python -m repro trend                     # BENCH_*.json perf trajectory

Experiments print the same rows/series the paper's figures plot. Results
persist under ``benchmarks/results/.cache/`` (disable with ``--no-cache``),
so re-running a figure suite or resuming a killed sweep skips completed
simulations. With ``--checkpoint-dir``, sweeps additionally journal every
completed point under a run directory; SIGINT/SIGTERM drain in-flight work
and exit cleanly (code 130) with a ``repro resume`` hint instead of a stack
trace.
"""

from __future__ import annotations

import argparse

from repro.harness.experiments import (
    fig02,
    fig04,
    fig05,
    fig10,
    fig10x,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    mrc,
    scaling,
    table1,
)

__all__ = ["EXPERIMENTS", "build_parser", "main"]

#: Experiment name -> (callable, description).
EXPERIMENTS = {
    "fig02": (fig02.run, "LLC miss rates of baseline irregular updates"),
    "fig04": (fig04.run, "PB bin-count sensitivity (Binning vs Accumulate)"),
    "fig05": (fig05.run, "PB-SW-IDEAL headroom over software PB"),
    "table1": (table1.run, "PB phase breakup (Init/Binning/Accumulate)"),
    "fig10": (fig10.run, "headline speedups: PB-SW / PB-SW-IDEAL / COBRA"),
    "fig10x": (
        fig10x.run,
        "extension-suite speedups: histogram + csr-build, real graphs",
    ),
    "fig11": (fig11.run, "COBRA per-phase speedups over PB-SW"),
    "fig12": (fig12.run, "instruction & branch overheads of Binning"),
    "fig13a": (fig13.run_eviction_buffers, "eviction-buffer sizing (DES)"),
    "fig13b": (fig13.run_way_sensitivity, "reserved-way sensitivity"),
    "fig13c": (fig13.run_context_switch, "context-switch bandwidth waste"),
    "fig14": (fig14.run, "COBRA vs PHI / COBRA-COMM (commutative kernels)"),
    "fig15": (fig15.run, "PB vs CSR-Segmenting tiling (Pagerank)"),
    "mrc": (mrc.run, "miss-ratio curves, raw vs binned (supplemental)"),
    "scaling": (scaling.run, "multicore scalability (extension)"),
}


def build_parser():
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Improving Locality of Irregular Updates with "
            "Hardware Assisted Propagation Blocking' (HPCA 2022)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")
    commands.add_parser("inputs", help="describe the input suite (Table III)")
    commands.add_parser("machine", help="describe the simulated machine")

    run_parser = commands.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS),
        metavar="experiment",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}",
    )
    run_parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="log2 of the input namespace (default: the full-scale suite)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "fan independent (workload, mode) points across this many "
            "worker processes (default: serial)"
        ),
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the persistent result cache under "
            "benchmarks/results/.cache/ (simulate everything fresh)"
        ),
    )
    run_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "per-point wall-clock budget in seconds for parallel sweeps; "
            "hung workers are killed and their points retried "
            "(enables the fault-tolerant executor)"
        ),
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help=(
            "retries per sweep point after a crash/timeout/error "
            "(enables the fault-tolerant executor; default 2 when "
            "--timeout is given)"
        ),
    )
    run_parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help=(
            "append a JSONL run-event log (sweep/point lifecycle, cache "
            "hits, engine choices, per-phase wall-clock) to PATH"
        ),
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        nargs="?",
        const=True,
        default=None,
        help=(
            "journal sweep progress under DIR (bare flag: the default run "
            "root, benchmarks/results/.runs/ or $REPRO_CHECKPOINT_DIR); "
            "interrupted sweeps exit cleanly and can be finished with "
            "`repro resume <run-id>`"
        ),
    )
    run_parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "flag a parallel-sweep worker as stalled when its point emits "
            "no heartbeat for this long (enables the fault-tolerant "
            "executor; catches wedged workers well before --timeout)"
        ),
    )

    point_parser = commands.add_parser(
        "point", help="simulate one (workload, input, mode) point"
    )
    point_parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help=(
            "workload name (see `workloads`); deprecated positional form — "
            "prefer --spec workload/input@scale"
        ),
    )
    point_parser.add_argument(
        "input",
        nargs="?",
        default=None,
        help="input name, e.g. KRON (deprecated positional form)",
    )
    point_parser.add_argument(
        "--spec",
        metavar="WORKLOAD/INPUT[@SCALE]",
        default=None,
        help=(
            "canonical point spec, e.g. degree-count/KRON@18 or "
            "csr-build/KARATE (ingested inputs pin their own scale)"
        ),
    )
    point_parser.add_argument(
        "--mode",
        default="baseline",
        help="execution mode (validated against ExecutionMode)",
    )
    point_parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="log2 of the input namespace (default: full scale)",
    )
    point_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the RunResult as JSON instead of a table",
    )
    point_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )

    workloads_parser = commands.add_parser(
        "workloads",
        help="list the registered workloads and their canonical specs",
        description=(
            "Every workload in the declarative registry with its input "
            "suite, accepted input kinds, and canonical "
            "workload/input@scale spec strings (the form `repro point "
            "--spec` and `repro submit` accept). Extension workloads "
            "(outside the paper's nine-kernel suite) are marked."
        ),
    )
    workloads_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable registry listing",
    )

    runs_parser = commands.add_parser(
        "runs", help="list checkpointed sweep runs"
    )
    runs_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="run root to list (default: the default run root)",
    )
    runs_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the machine-readable run list (the same serializer "
            "backs the sweep service's /jobs run summaries)"
        ),
    )

    serve_parser = commands.add_parser(
        "serve",
        help="run the crash-safe sweep-service daemon",
        description=(
            "Long-running daemon accepting sweep submissions over local "
            "HTTP/JSON. Jobs are journaled durably before acknowledgement "
            "and executed through the fault-tolerant sweep executor with "
            "per-point checkpoints, so a kill -9 plus restart resumes "
            "every in-flight job bit-identically. SIGTERM drains "
            "gracefully within $REPRO_SERVICE_DRAIN_DEADLINE."
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=(
            "TCP port (default $REPRO_SERVICE_PORT or 8377; 0 picks a "
            "free port, published in endpoint.json)"
        ),
    )
    serve_parser.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help=(
            "service state directory for the job journal and "
            "endpoint.json (default: 'service' under the checkpoint root)"
        ),
    )
    serve_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="sweep-checkpoint root (default: the default run root)",
    )
    serve_parser.add_argument(
        "--queue-max",
        type=int,
        default=None,
        help=(
            "bounded queue depth before submissions are shed with 429 "
            "(default $REPRO_SERVICE_QUEUE_MAX or 64)"
        ),
    )
    serve_parser.add_argument(
        "--client-max",
        type=int,
        default=None,
        help="per-client in-flight job cap (default 8)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes per sweep (default 2)",
    )
    serve_parser.add_argument(
        "--drain-deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "SIGTERM drain deadline "
            "(default $REPRO_SERVICE_DRAIN_DEADLINE or 30)"
        ),
    )
    serve_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result-cache read-through tier",
    )
    serve_parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="append service + sweep events to a JSONL log at PATH",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point wall-clock budget in seconds",
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries per point after a crash/timeout/error",
    )
    serve_parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="stall threshold for silent sweep workers (seconds)",
    )

    submit_parser = commands.add_parser(
        "submit",
        help="submit sweep points to a running sweep service",
        description=(
            "Points are 'workload/input[@scale][:mode]' canonical specs "
            "(or the legacy 'workload:input:scale[:mode]' form); mode "
            "defaults to baseline. The daemon is discovered through "
            "endpoint.json in its state directory unless --port is given. "
            "Refusals (429/503) are retried with jittered backoff."
        ),
    )
    submit_parser.add_argument(
        "points",
        nargs="+",
        metavar="point",
        help=(
            "one or more 'workload/input[@scale][:mode]' specs (legacy "
            "'workload:input:scale[:mode]' also accepted)"
        ),
    )
    submit_parser.add_argument(
        "--label", default=None, help="human-readable job label"
    )
    submit_parser.add_argument(
        "--client", default=None, help="client name for per-client caps"
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the job leaves the pending states",
    )
    submit_parser.add_argument(
        "--wait-timeout",
        type=float,
        metavar="SECONDS",
        default=600.0,
        help="--wait deadline (default 600)",
    )

    jobs_parser = commands.add_parser(
        "jobs", help="list a running sweep service's jobs"
    )
    jobs_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw /jobs payload",
    )
    for sub in (submit_parser, jobs_parser):
        sub.add_argument(
            "--state-dir",
            metavar="DIR",
            default=None,
            help=(
                "service state directory holding endpoint.json "
                "(default: 'service' under the checkpoint root)"
            ),
        )
        sub.add_argument(
            "--checkpoint-dir",
            metavar="DIR",
            default=None,
            help="checkpoint root the daemon was started with",
        )
        sub.add_argument(
            "--host", default="127.0.0.1", help="daemon host (with --port)"
        )
        sub.add_argument(
            "--port",
            type=int,
            default=None,
            help="daemon port (skips endpoint.json discovery)",
        )

    resume_parser = commands.add_parser(
        "resume", help="finish an interrupted checkpointed sweep"
    )
    resume_parser.add_argument(
        "run_id", help="run id shown by `repro runs` / the interrupt message"
    )
    resume_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="run root holding the run (default: the default run root)",
    )
    resume_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the remaining points (default: serial)",
    )
    resume_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache while resuming",
    )
    resume_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point wall-clock budget in seconds",
    )
    resume_parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries per point after a crash/timeout/error",
    )
    resume_parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="stall threshold for silent workers (seconds)",
    )
    resume_parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="append a JSONL run-event log to PATH",
    )

    lint_parser = commands.add_parser(
        "lint",
        help="run the determinism/digest-purity static analysis",
        description=(
            "Runs the repo-specific static analysis over the checkout: "
            "file-local AST checkers (unseeded randomness, digest purity, "
            "knob registry, backend pairing, nondeterminism hazards, "
            "worker safety) plus the interprocedural call-graph rules "
            "(concurrency-safety, digest-flow, telemetry-schema). Exits 1 "
            "on findings not excused by the committed lint_baseline.json."
        ),
    )
    lint_parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="checkout root to lint (default: auto-detected)",
    )
    lint_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable findings report",
    )
    lint_parser.add_argument(
        "--baseline",
        choices=["write"],
        default=None,
        help="'write' (re)generates the committed baseline from the "
        "current findings instead of checking against it",
    )
    lint_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined and suppressed findings",
    )
    lint_parser.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="also write the findings as a SARIF 2.1.0 log at PATH "
        "(for CI code-scanning upload)",
    )

    report_parser = commands.add_parser(
        "report", help="summarize a telemetry log or a saved replay report"
    )
    report_parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="telemetry file written by `repro run --telemetry PATH`",
    )
    report_parser.add_argument(
        "--replay",
        metavar="PATH",
        default=None,
        help=(
            "ReplayReport JSON written by `repro replay --report PATH` "
            "(e.g. a CI artifact); rendered as the replay verdict table"
        ),
    )
    report_parser.add_argument(
        "--slowest",
        type=int,
        default=10,
        help="number of slowest points to list (default 10)",
    )

    capture_parser = commands.add_parser(
        "capture",
        help="record golden canary runs for the perf-regression gate",
        description=(
            "Simulates the canary subset (degree-count/KRON under "
            "baseline+cobra, integer-sort/U16 under baseline+pb-sw, and "
            "the ingested csr-build/KARATE under baseline+cobra) fresh "
            "and stores each result — full counter snapshot, result-cache "
            "digest, honest wall-clock — as a content-addressed golden "
            "entry keyed by machine digest + workload + mode. --spec "
            "overrides the canary set with explicit points."
        ),
    )
    replay_parser = commands.add_parser(
        "replay",
        help="re-run the canary and diff against the golden store",
        description=(
            "Re-simulates every canary point and compares it to its "
            "golden: counters bit-exactly, wall-clock within a relative "
            "band ($REPRO_REPLAY_TIME_BAND / --time-band). Exits non-zero "
            "when any point fails the selected gate; stale, missing, and "
            "corrupt goldens are reported for recapture, never failed."
        ),
    )
    for sub in (capture_parser, replay_parser):
        sub.add_argument(
            "--scale",
            type=int,
            default=None,
            help="log2 of the canary input namespace (default 13)",
        )
        sub.add_argument(
            "--spec",
            action="append",
            default=None,
            metavar="WORKLOAD/INPUT[@SCALE][:MODE]",
            help=(
                "override the canary set with explicit points (repeatable); "
                "MODE defaults to baseline, e.g. degree-count/KRON@13:cobra"
            ),
        )
        sub.add_argument(
            "--golden-dir",
            metavar="DIR",
            default=None,
            help=(
                "golden store root (default: benchmarks/results/.golden/ "
                "or $REPRO_GOLDEN_DIR)"
            ),
        )
        sub.add_argument(
            "--telemetry",
            metavar="PATH",
            default=None,
            help="append golden/replay events to a JSONL log at PATH",
        )
    replay_parser.add_argument(
        "--gate",
        choices=["all", "counters"],
        default="all",
        help=(
            "what fails the exit code: 'all' (counters and timing) or "
            "'counters' (bit-identity only; timing excursions are "
            "reported but do not gate — the CI merge-gate setting)"
        ),
    )
    replay_parser.add_argument(
        "--time-band",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "relative wall-clock drift tolerance (0.5 = ±50%%; default "
            "$REPRO_REPLAY_TIME_BAND or 0.5)"
        ),
    )
    replay_parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write the structured ReplayReport JSON to PATH",
    )
    replay_parser.add_argument(
        "--json",
        action="store_true",
        help="print the ReplayReport as JSON instead of the verdict table",
    )

    trend_parser = commands.add_parser(
        "trend",
        help="render the BENCH_*.json perf trajectory",
        description=(
            "Folds the accumulated, append-only BENCH_*.json histories "
            "(one entry per recorded run, keyed by git SHA + UTC date) "
            "into a per-bench table of tracked speedup metrics plus the "
            "net change from oldest to newest entry."
        ),
    )
    trend_parser.add_argument(
        "--results-dir",
        metavar="DIR",
        default=None,
        help="directory holding BENCH_*.json (default: benchmarks/results/)",
    )
    trend_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the structured trajectory instead of tables",
    )
    return parser


def _cmd_list(print_fn):
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        print_fn(f"{name.ljust(width)}  {EXPERIMENTS[name][1]}")


def _cmd_inputs(print_fn, scale=None):
    from repro.harness.report import format_table
    from repro.workloads.registry import describe_inputs

    rows = describe_inputs(scale, include_datasets=True)
    print_fn(
        format_table(
            ["input", "kind", "size", "entries"],
            [
                [
                    row["input"],
                    row["kind"],
                    row.get("vertices", row.get("rows", 0)),
                    row.get("edges", row.get("nnz", 0)),
                ]
                for row in rows
            ],
            title="Input suite (scaled Table III + ingested datasets)",
        )
    )


def _cmd_workloads(print_fn, as_json=False):
    import json

    from repro.harness.report import format_table
    from repro.workloads.registry import describe_workloads

    rows = describe_workloads()
    if as_json:
        print_fn(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    print_fn(
        format_table(
            ["workload", "inputs", "kinds", "ext", "description"],
            [
                [
                    row["workload"],
                    ",".join(row["inputs"]),
                    ",".join(row["kinds"]),
                    "yes" if row["extension"] else "-",
                    row["description"],
                ]
                for row in rows
            ],
            title="Workload registry (spec form: workload/input@scale)",
        )
    )
    return 0


def _cmd_machine(print_fn):
    from repro.harness.machine import DEFAULT_MACHINE

    hierarchy = DEFAULT_MACHINE.hierarchy
    core = DEFAULT_MACHINE.core
    print_fn("Simulated machine (scaled Table II; see DESIGN.md section 5)")
    print_fn(
        f"  L1D  {hierarchy.l1_bytes // 1024} KB, {hierarchy.l1_ways}-way, "
        f"{hierarchy.l1_policy}, load-to-use {core.l1_latency} cycles"
    )
    print_fn(
        f"  L2   {hierarchy.l2_bytes // 1024} KB, {hierarchy.l2_ways}-way, "
        f"{hierarchy.l2_policy}, {core.l2_latency} cycles, stream prefetcher"
    )
    print_fn(
        f"  LLC  {hierarchy.llc_bytes // 1024} KB/core bank, "
        f"{hierarchy.llc_ways}-way, {hierarchy.llc_policy}, "
        f"{core.llc_latency} cycles (remote {core.llc_remote_latency})"
    )
    print_fn(
        f"  core {core.issue_width}-wide @ {core.frequency_ghz} GHz, "
        f"DRAM {core.dram_latency} cycles, "
        f"stream {core.stream_bytes_per_cycle} B/cycle/core"
    )


def _cmd_report(print_fn, args):
    if (args.telemetry is None) == (args.replay is None):
        print_fn("report needs exactly one of --telemetry or --replay")
        return 2
    if args.replay is not None:
        import json

        from repro.harness.report import format_replay

        try:
            with open(args.replay, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            print_fn(f"cannot read replay report: {exc}")
            return 1
        print_fn(format_replay(payload))
        return 0
    from repro.harness.telemetry import format_summary, summarize

    try:
        summary = summarize(args.telemetry, slowest=args.slowest)
    except OSError as exc:
        print_fn(f"cannot read telemetry file: {exc}")
        return 1
    print_fn(format_summary(summary))
    return 0


def _parse_point_arg(raw):
    """Parse one point argument into ``{"point": cache_key, "mode": mode}``.

    Accepts the canonical spec form ``workload/input[@scale][:mode]`` and
    the legacy wire form ``workload:input:scale[:mode]``. Raises
    :class:`ValueError` on malformed or unregistered points.
    """
    from repro.workloads.registry import (
        INPUTS,
        WORKLOADS,
        cache_key_for,
        parse_spec,
    )

    if "/" in raw:
        body, _, mode = raw.partition(":")
        workload_name, input_name, scale = parse_spec(body)
    else:
        pieces = raw.split(":")
        if len(pieces) == 3:
            pieces.append("baseline")
        if len(pieces) != 4:
            raise ValueError(
                f"bad point {raw!r}: want workload:input:scale[:mode] or "
                "workload/input[@scale][:mode]"
            )
        workload_name, input_name, scale_text, mode = pieces
        try:
            scale = int(scale_text)
        except ValueError:
            raise ValueError(
                f"bad point {raw!r}: scale {scale_text!r} is not an integer"
            ) from None
    if workload_name not in WORKLOADS:
        raise ValueError(f"bad point {raw!r}: unknown workload {workload_name!r}")
    if input_name not in INPUTS:
        raise ValueError(f"bad point {raw!r}: unknown input {input_name!r}")
    return {
        "point": cache_key_for(workload_name, input_name, scale),
        "mode": mode or "baseline",
    }


def _golden_wiring(args):
    """Shared ``capture``/``replay`` wiring: runner, canary, store."""
    from repro.golden.canary import canary_points
    from repro.golden.store import GoldenStore
    from repro.harness.resultcache import ResultCache
    from repro.harness.runner import Runner
    from repro.harness.telemetry import NULL_TELEMETRY, JsonlTelemetry

    telemetry = (
        JsonlTelemetry(args.telemetry) if args.telemetry else NULL_TELEMETRY
    )
    # The cache is attached so canary simulation *writes through* (warm
    # for later runs), but capture/replay always simulate with
    # use_cache=False — golden timing must come from honest runs.
    runner = Runner(result_cache=ResultCache(), telemetry=telemetry)
    if getattr(args, "spec", None):
        from repro.workloads.registry import resolve_point

        points = []
        for raw in args.spec:
            entry = _parse_point_arg(raw)
            points.append((resolve_point(entry["point"]), entry["mode"]))
    else:
        points = canary_points(scale=args.scale)
    store = GoldenStore(directory=args.golden_dir, telemetry=telemetry)
    return runner, points, store, telemetry


def _cmd_capture(print_fn, args):
    from repro.golden.replay import capture_goldens

    runner, points, store, telemetry = _golden_wiring(args)
    entries = capture_goldens(runner, points, store, telemetry=telemetry)
    for entry in entries:
        print_fn(
            f"captured {entry['point']} ({entry['mode']}): "
            f"golden {entry['id']} in {entry['timing']['seconds']:.3f}s"
        )
    print_fn(
        f"{len(entries)} golden(s) under {store.directory} "
        f"(machine {runner.machine_digest()[:12]})"
    )
    return 0


def _cmd_replay(print_fn, args):
    import json

    from repro.golden.replay import TolerancePolicy, replay_goldens
    from repro.harness.report import format_replay

    runner, points, store, telemetry = _golden_wiring(args)
    policy = TolerancePolicy.from_env(time_rel_band=args.time_band)
    report = replay_goldens(
        runner, points, store, policy=policy, telemetry=telemetry
    )
    payload = report.as_dict()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print_fn(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print_fn(format_replay(payload))
        needs_capture = sum(
            payload["summary"][bucket]
            for bucket in ("stale", "missing", "corrupt")
        )
        if needs_capture:
            print_fn(
                f"  {needs_capture} point(s) need recapture: "
                "`python -m repro capture`"
            )
    return 0 if report.ok(gate=args.gate) else 1


def _cmd_trend(print_fn, args):
    import json

    from repro.golden.trend import bench_trend, format_trend
    from repro.harness.resultcache import default_cache_dir

    results_dir = (
        args.results_dir
        if args.results_dir is not None
        else default_cache_dir().parent
    )
    data = bench_trend(results_dir)
    if args.json:
        print_fn(json.dumps(data, indent=2, sort_keys=True))
    else:
        print_fn(format_trend(data))
    return 0


def _cmd_point(print_fn, args):
    """Simulate one point through the ``repro.api`` facade."""
    import json

    from repro.api import RunResult, Runner, make_workload, resolve_workload
    from repro.harness.modes import ExecutionMode
    from repro.harness.report import format_table
    from repro.harness.resultcache import ResultCache

    try:
        mode = ExecutionMode.coerce(args.mode)
    except ValueError as exc:
        print_fn(str(exc))
        return 2
    if args.spec is not None and args.workload is not None:
        print_fn("point takes either --spec or positional workload/input")
        return 2
    if args.spec is None and (args.workload is None or args.input is None):
        print_fn(
            "point needs --spec workload/input[@scale] "
            "(or the deprecated positional workload + input)"
        )
        return 2
    try:
        if args.spec is not None:
            if args.scale is not None and "@" in args.spec:
                print_fn("pass the scale either in --spec or via --scale")
                return 2
            spec = args.spec
            if args.scale is not None:
                spec = f"{spec}@{args.scale}"
            workload = resolve_workload(spec)
        else:
            workload = make_workload(
                args.workload, args.input, scale=args.scale
            )
    except (KeyError, ValueError) as exc:
        print_fn(str(exc))
        return 2
    runner = Runner(
        result_cache=None if args.no_cache else ResultCache()
    )
    if mode is ExecutionMode.CHARACTERIZATION:
        result = runner.run_characterization(workload)
    else:
        result = runner.run(workload, mode)
    assert isinstance(result, RunResult)
    if args.json:
        print_fn(json.dumps(result.as_dict(), indent=2))
        return 0
    print_fn(
        format_table(
            ["phase", "engine", "Mcycles", "IPC", "MPKI", "DRAM lines"],
            [
                [
                    p.name,
                    p.engine or "-",
                    p.cycles / 1e6,
                    p.ipc,
                    p.mpki,
                    p.traffic.total_lines,
                ]
                for p in result.phases
            ],
            title=(
                f"{result.workload} / {mode} "
                f"({result.provenance}, engine={result.engine or '-'})"
            ),
        )
    )
    print_fn(
        f"total: {result.cycles / 1e6:.3f} Mcycles, "
        f"MPKI {result.mpki:.3f}"
    )
    return 0


def _checkpoint_root(value):
    """Resolve a ``--checkpoint-dir`` value (bare flag => default root)."""
    from repro.harness.checkpoint import default_checkpoint_dir

    if value is None or value is True:
        return default_checkpoint_dir()
    return value


def _cmd_runs(print_fn, checkpoint_dir, as_json=False):
    from repro.harness.checkpoint import format_runs, list_runs, runs_payload

    runs = list_runs(_checkpoint_root(checkpoint_dir))
    if as_json:
        import json

        print_fn(json.dumps(runs_payload(runs), indent=2, sort_keys=True))
        return 0
    print_fn(format_runs(runs))
    return 0


def _service_state_dir(args):
    """Resolve a service ``--state-dir`` (default: under the run root)."""
    if args.state_dir is not None:
        return args.state_dir
    from pathlib import Path

    return Path(_checkpoint_root(args.checkpoint_dir)) / "service"


def _cmd_serve(print_fn, args):
    import asyncio

    from repro.harness import knobs
    from repro.service.jobqueue import SweepService
    from repro.service.server import DEFAULT_PORT, serve_forever

    runner = _configure_runner(args)
    port = args.port
    if port is None:
        raw = knobs.read("REPRO_SERVICE_PORT")
        port = int(raw) if raw and raw.strip() else DEFAULT_PORT
    service = SweepService(
        runner,
        _service_state_dir(args),
        queue_max=args.queue_max,
        client_max=args.client_max if args.client_max is not None else 8,
        sweep_jobs=args.jobs,
        checkpoint_root=_checkpoint_root(args.checkpoint_dir),
        drain_deadline=args.drain_deadline,
        telemetry=runner.telemetry if runner.telemetry.enabled else None,
    ).start()
    return asyncio.run(
        serve_forever(service, host=args.host, port=port, print_fn=print_fn)
    )


def _service_client(args, client_name=None):
    from repro.service.client import ServiceClient

    if args.port is not None:
        return ServiceClient(
            host=args.host, port=args.port, client_name=client_name
        )
    return ServiceClient.from_state_dir(
        _service_state_dir(args), client_name=client_name
    )


def _cmd_submit(print_fn, args):
    from repro.service.client import ServiceError

    specs = []
    for raw in args.points:
        try:
            specs.append(_parse_point_arg(raw))
        except ValueError as exc:
            print_fn(str(exc))
            return 2
    try:
        client = _service_client(args, client_name=args.client)
        payload = client.submit(specs, label=args.label)
    except (OSError, ValueError, ServiceError) as exc:
        print_fn(f"submit failed: {exc}")
        return 1
    job = payload["job"]
    print_fn(
        f"job {job['job_id']} {job['state']} "
        f"({len(job['points'])} point(s)"
        + (", from cache)" if job.get("from_cache") else ")")
    )
    if not args.wait or job["state"] == "completed":
        return 0
    try:
        final = client.wait_job(job["job_id"], timeout=args.wait_timeout)
    except ServiceError as exc:
        print_fn(str(exc))
        return 1
    state = final["job"]["state"]
    print_fn(f"job {job['job_id']} {state}")
    if final["job"].get("error"):
        print_fn(f"  {final['job']['error']}")
    return 0 if state == "completed" else 1


def _cmd_jobs(print_fn, args):
    import json

    from repro.harness.report import format_table
    from repro.service.client import ServiceError

    try:
        payload = _service_client(args).jobs()
    except (OSError, ValueError, ServiceError) as exc:
        print_fn(f"cannot reach the sweep service: {exc}")
        return 1
    if args.json:
        print_fn(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            job["job_id"],
            job["state"],
            len(job["points"]),
            (job["run"] or {}).get("completed", 0),
            job.get("label") or "-",
            job.get("client") or "-",
        ]
        for job in payload["jobs"]
    ]
    print_fn(
        format_table(
            ["job", "state", "points", "done", "label", "client"],
            rows,
            title=f"{len(rows)} job(s)",
        )
    )
    return 0


def _configure_runner(args):
    """Shared ``run``/``resume`` runner wiring (cache, telemetry, policy)."""
    from repro.harness.experiments.common import shared_runner
    from repro.harness.faults import FaultPolicy
    from repro.harness.resultcache import ResultCache
    from repro.harness.telemetry import JsonlTelemetry

    runner = shared_runner()
    if not args.no_cache and runner.result_cache is None:
        runner.result_cache = ResultCache()
    if args.telemetry:
        runner.telemetry = JsonlTelemetry(args.telemetry)
        if runner.result_cache is not None:
            runner.result_cache.telemetry = runner.telemetry
    if (
        args.timeout is not None
        or args.retries is not None
        or args.heartbeat_timeout is not None
    ):
        runner.fault_policy = FaultPolicy(
            timeout=args.timeout,
            retries=2 if args.retries is None else args.retries,
            heartbeat_timeout=args.heartbeat_timeout,
        )
    return runner


def _cmd_resume(print_fn, args):
    from repro.harness.checkpoint import SweepCheckpoint
    from repro.harness.faults import run_sweep_resilient

    runner = _configure_runner(args)
    root = _checkpoint_root(args.checkpoint_dir)
    try:
        checkpoint = SweepCheckpoint.load(
            root, args.run_id, telemetry=runner.telemetry
        )
    except FileNotFoundError as exc:
        print_fn(str(exc))
        print_fn("known runs:")
        return _cmd_runs(print_fn, args.checkpoint_dir) or 1
    try:
        checkpoint.verify(runner)
    except ValueError as exc:
        print_fn(str(exc))
        return 1
    points = checkpoint.points()
    outcome = run_sweep_resilient(
        runner,
        points,
        jobs=args.jobs if args.jobs is not None else 1,
        policy=runner.fault_policy,
        checkpoint=checkpoint,
        handle_signals=True,
    )
    label = checkpoint.label or checkpoint.run_id
    if outcome.interrupted:
        done = sum(1 for r in outcome.results if r is not None)
        print_fn(
            f"run {checkpoint.run_id} ({label}) interrupted again: "
            f"{done}/{len(points)} points journaled; "
            f"resume with `repro resume {checkpoint.run_id}`"
        )
        return 130
    if outcome.failures:
        for failure in outcome.failures:
            print_fn(
                f"  failed: {failure.point} ({failure.mode}) — "
                f"{failure.reason}"
            )
        print_fn(
            f"run {checkpoint.run_id} ({label}): "
            f"{len(outcome.failures)} point(s) failed"
        )
        return 1
    print_fn(
        f"run {checkpoint.run_id} ({label}) completed: "
        f"{len(points)}/{len(points)} points"
    )
    return 0


def main(argv=None, print_fn=print):
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _cmd_list(print_fn)
        return 0
    if args.command == "inputs":
        _cmd_inputs(print_fn)
        return 0
    if args.command == "workloads":
        return _cmd_workloads(print_fn, as_json=args.json)
    if args.command == "machine":
        _cmd_machine(print_fn)
        return 0
    if args.command == "lint":
        from repro.analysis.lintcli import main as lint_main

        return lint_main(args, print_fn)
    if args.command == "report":
        return _cmd_report(print_fn, args)
    if args.command == "capture":
        return _cmd_capture(print_fn, args)
    if args.command == "replay":
        return _cmd_replay(print_fn, args)
    if args.command == "trend":
        return _cmd_trend(print_fn, args)
    if args.command == "point":
        return _cmd_point(print_fn, args)
    if args.command == "runs":
        return _cmd_runs(print_fn, args.checkpoint_dir, as_json=args.json)
    if args.command == "resume":
        return _cmd_resume(print_fn, args)
    if args.command == "serve":
        return _cmd_serve(print_fn, args)
    if args.command == "submit":
        return _cmd_submit(print_fn, args)
    if args.command == "jobs":
        return _cmd_jobs(print_fn, args)
    import inspect

    from repro.harness.faults import SweepInterrupted

    runner = _configure_runner(args)
    checkpoint_dir = (
        _checkpoint_root(args.checkpoint_dir)
        if args.checkpoint_dir is not None
        else None
    )
    for name in args.experiments:
        run_fn, _description = EXPERIMENTS[name]
        accepted = inspect.signature(run_fn).parameters
        kwargs = {}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if "runner" in accepted:
            kwargs["runner"] = runner
        if args.jobs is not None and "jobs" in accepted:
            kwargs["jobs"] = args.jobs
        if checkpoint_dir is not None and "checkpoint_dir" in accepted:
            kwargs["checkpoint_dir"] = checkpoint_dir
        try:
            result = run_fn(**kwargs)
        except SweepInterrupted as exc:
            runner.telemetry.close()
            print_fn(str(exc))
            return 130
        print_fn(result.text)
        print_fn("")
    return 0
