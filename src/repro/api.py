"""Stable public facade: structured results for programmatic consumers.

This module is the supported entry point for driving the reproduction from
Python. Every execution path — :meth:`Runner.run`, :meth:`Runner.run_many`,
:func:`~repro.harness.faults.run_sweep_resilient`, the persistent result
cache, checkpoint journals, and the ``fig*`` experiment drivers — returns
:class:`RunResult` objects: frozen dataclasses carrying the per-phase
counters, the simulation engine that produced each phase, and where the
result came from (``provenance``).

Quick tour::

    from repro.api import ExecutionMode, Runner, RunResult, make_workload

    runner = Runner()
    workload = make_workload("degree-count", "KRON", scale=20)
    result = runner.run(workload, ExecutionMode.COBRA)
    result.cycles, result.mpki, result.phase("binning").ipc
    legacy = result.as_dict()   # deprecation shim: the on-disk JSON shape

Compatibility: :meth:`RunResult.as_dict` emits exactly the result-cache
JSON layout, and :meth:`RunResult.as_counters` rebuilds the legacy mutable
:class:`~repro.cpu.counters.RunCounters`, so pre-existing dict/counter
consumers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stats import MemoryTraffic, ServiceCounts
from repro.cpu.counters import PhaseCounters, RunCounters

__all__ = [
    "ExecutionMode",
    "PhaseResult",
    "RunResult",
    "Runner",
    "make_workload",
    "resolve_workload",
    "workload_instances",
    "run_experiment",
    "PROVENANCE_SIMULATED",
    "PROVENANCE_DISK",
    "PROVENANCE_JOURNAL",
]

#: The result was freshly simulated in this process.
PROVENANCE_SIMULATED = "simulated"
#: The result was read back from the persistent on-disk result cache.
PROVENANCE_DISK = "disk"
#: The result was spliced from a sweep checkpoint journal.
PROVENANCE_JOURNAL = "journal"


@dataclass(frozen=True)
class PhaseResult:
    """Immutable counters for one phase of one execution.

    Field-compatible with the legacy mutable
    :class:`~repro.cpu.counters.PhaseCounters`, plus ``engine`` — which
    trace simulator produced the phase (``"batch"``, ``"fast"``, or
    ``None`` for phases with no irregular trace). ``engine`` is excluded
    from equality: the engines are equivalence-tested to produce identical
    counters, so results may be compared across them.
    """

    name: str
    instructions: int = 0
    branches: int = 0
    branch_mispredicts: float = 0.0
    irregular_service: ServiceCounts = field(default_factory=ServiceCounts)
    streaming_service: ServiceCounts = field(default_factory=ServiceCounts)
    streaming_bytes: int = 0
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    cycles: float = 0.0
    engine: str = field(default=None, compare=False)

    @property
    def ipc(self):
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self):
        """Branch mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions

    @property
    def demand_service(self):
        """Irregular + streaming service counts combined."""
        return self.irregular_service.merged(self.streaming_service)

    @classmethod
    def from_counters(cls, counters, engine=None):
        """Freeze a legacy :class:`PhaseCounters` (or any field-compatible
        object) into a :class:`PhaseResult`."""
        return cls(
            name=counters.name,
            instructions=counters.instructions,
            branches=counters.branches,
            branch_mispredicts=counters.branch_mispredicts,
            irregular_service=counters.irregular_service,
            streaming_service=counters.streaming_service,
            streaming_bytes=counters.streaming_bytes,
            traffic=counters.traffic,
            cycles=counters.cycles,
            engine=getattr(counters, "engine", None) if engine is None else engine,
        )

    def as_counters(self):
        """Deprecation shim: the legacy mutable :class:`PhaseCounters`."""
        return PhaseCounters(
            name=self.name,
            instructions=self.instructions,
            branches=self.branches,
            branch_mispredicts=self.branch_mispredicts,
            irregular_service=self.irregular_service,
            streaming_service=self.streaming_service,
            streaming_bytes=self.streaming_bytes,
            traffic=self.traffic,
            cycles=self.cycles,
        )


@dataclass(frozen=True)
class RunResult:
    """Immutable result of one (workload, mode) execution.

    Drop-in superset of the legacy :class:`~repro.cpu.counters.RunCounters`
    surface (``phases``, ``phase()``, aggregate properties), plus
    ``provenance`` — one of :data:`PROVENANCE_SIMULATED`,
    :data:`PROVENANCE_DISK`, :data:`PROVENANCE_JOURNAL` — recording whether
    the counters were computed fresh or restored from a cache/journal.
    ``provenance`` is excluded from equality: a warm read must compare
    equal to the run that produced it (bit-identity is test-asserted).
    """

    workload: str
    mode: str
    phases: tuple = ()
    provenance: str = field(default=PROVENANCE_SIMULATED, compare=False)

    def phase(self, name):
        """Phase result by name (raises ``KeyError`` if absent)."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r} in {self.workload}/{self.mode}")

    def has_phase(self, name):
        """True when a phase with ``name`` was recorded."""
        return any(phase.name == name for phase in self.phases)

    @property
    def engine(self):
        """The trace engine that produced the phases.

        ``"batch"`` or ``"fast"`` when every traced phase agrees,
        ``"mixed"`` when they differ, ``None`` when no phase ran a trace.
        """
        engines = {p.engine for p in self.phases if p.engine is not None}
        if not engines:
            return None
        if len(engines) == 1:
            return next(iter(engines))
        return "mixed"

    @property
    def cycles(self):
        """Total cycles across phases."""
        return sum(phase.cycles for phase in self.phases)

    @property
    def instructions(self):
        """Total dynamic instructions across phases."""
        return sum(phase.instructions for phase in self.phases)

    @property
    def branch_mispredicts(self):
        """Total (possibly scaled) branch mispredictions."""
        return sum(phase.branch_mispredicts for phase in self.phases)

    @property
    def traffic(self):
        """Total DRAM traffic across phases."""
        total = MemoryTraffic()
        for phase in self.phases:
            total = total.merged(phase.traffic)
        return total

    @property
    def irregular_service(self):
        """Combined irregular service counts across phases."""
        total = ServiceCounts()
        for phase in self.phases:
            total = total.merged(phase.irregular_service)
        return total

    @property
    def demand_service(self):
        """Combined demand (irregular + streaming) counts across phases."""
        total = ServiceCounts()
        for phase in self.phases:
            total = total.merged(phase.demand_service)
        return total

    @property
    def mpki(self):
        """Branch MPKI over the whole run."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions

    @classmethod
    def from_counters(cls, counters, provenance=PROVENANCE_SIMULATED):
        """Freeze a legacy :class:`RunCounters` (or any field-compatible
        object) into a :class:`RunResult`."""
        return cls(
            workload=counters.workload,
            mode=str(counters.mode),
            phases=tuple(
                p if isinstance(p, PhaseResult) else PhaseResult.from_counters(p)
                for p in counters.phases
            ),
            provenance=provenance,
        )

    def as_counters(self):
        """Deprecation shim: the legacy mutable :class:`RunCounters`."""
        return RunCounters(
            workload=self.workload,
            mode=self.mode,
            phases=[phase.as_counters() for phase in self.phases],
        )

    def as_dict(self):
        """Deprecation shim: the result-cache JSON dict layout."""
        from repro.harness.resultcache import counters_to_dict

        return counters_to_dict(self)

    @classmethod
    def from_dict(cls, payload, provenance=PROVENANCE_DISK):
        """Rebuild from :meth:`as_dict` / result-cache JSON output."""
        from repro.harness.resultcache import counters_from_dict

        return counters_from_dict(payload, provenance=provenance)


def make_workload(name, input_name, scale=None):
    """Build one workload instance via the registry.

    Prefer :func:`resolve_workload` with a canonical
    ``workload/input@scale`` spec string for new code.
    """
    from repro.workloads.registry import resolve

    return resolve(name, input_name, scale)


def resolve_workload(spec):
    """Resolve a canonical ``workload/input[@scale]`` spec string.

    The registry-native entry point::

        from repro.api import resolve_workload

        workload = resolve_workload("degree-count/KRON@18")
        workload.cache_key  # "degree-count:KRON:18"

    Omitting ``@scale`` uses the input's fixed scale (ingested real
    graphs) or the suite default. See
    :mod:`repro.workloads.registry` for the full registry surface.
    """
    from repro.workloads.registry import resolve_spec

    return resolve_spec(spec)


def workload_instances(workloads=None, scale=None, include_extensions=False):
    """Iterate ``(workload_name, input_name, workload)`` triples."""
    from repro.workloads.registry import workload_instances as _instances

    return _instances(
        workloads=workloads, scale=scale, include_extensions=include_extensions
    )


def run_experiment(name, **kwargs):
    """Run one named experiment driver (``fig02`` ... ``table1``).

    Returns its :class:`~repro.harness.experiments.common.ExperimentResult`,
    whose ``runs`` carry the :class:`RunResult` of every point the figure
    consumed. Keyword arguments are forwarded to the driver (``runner``,
    ``scale``, ``jobs``, ...).
    """
    from repro.cli import EXPERIMENTS

    try:
        driver, _description = EXPERIMENTS[name]
    except KeyError:
        valid = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(
            f"unknown experiment {name!r}; valid experiments: {valid}"
        ) from None
    return driver(**kwargs)


def __getattr__(name):
    # resolved lazily: the harness import chain converts payloads into the
    # RunResult defined above, so importing it eagerly would be circular
    if name == "Runner":
        from repro.harness.runner import Runner

        return Runner
    if name == "ExecutionMode":
        from repro.harness.modes import ExecutionMode

        return ExecutionMode
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
