"""Perf-trajectory rendering over the accumulated ``BENCH_*.json`` history.

Every perf suite now *appends* its measurement (keyed by git SHA + ISO
date, :mod:`repro.harness.benchhistory`), so each BENCH file is a time
series. This module folds those series into the per-figure trajectory
table the ``repro trend`` subcommand prints: one section per bench, one
row per recorded entry, one column per tracked metric, plus a net-change
line (newest vs oldest) so a perf regression reads as a negative delta
instead of silently replacing the only number anyone ever recorded.

Metrics are the ``*speedup*`` leaves of each record — the repo's perf
claims are all expressed as speedups with CI floors (3x predictor, 3x
pipeline, 2x DES), so those are the values whose drift matters.
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.benchhistory import load_history
from repro.harness.report import format_table

__all__ = ["bench_trend", "format_trend", "trend_metrics"]


def trend_metrics(record, prefix=""):
    """``{dotted.path: value}`` of every numeric ``*speedup*`` leaf."""
    metrics = {}
    if isinstance(record, dict):
        for key in sorted(record):
            dotted = f"{prefix}.{key}" if prefix else str(key)
            value = record[key]
            if isinstance(value, dict):
                metrics.update(trend_metrics(value, dotted))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                if "speedup" in str(key):
                    metrics[dotted] = float(value)
    return metrics


def bench_trend(results_dir):
    """Structured trajectory of every ``BENCH_*.json`` under ``results_dir``.

    Returns ``{"benches": [...], "skipped": [...]}``; a corrupt history
    file lands in ``skipped`` with its error instead of aborting the
    report (the trend must keep rendering whatever survived).
    """
    results_dir = Path(results_dir)
    benches = []
    skipped = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            history = load_history(path)
        except ValueError as exc:
            skipped.append({"path": str(path), "error": str(exc)})
            continue
        entries = []
        for entry in history["entries"]:
            entries.append(
                {
                    "recorded": entry.get("recorded"),
                    "git_sha": entry.get("git_sha"),
                    "metrics": trend_metrics(entry.get("record", {})),
                }
            )
        benches.append(
            {
                "bench": history["bench"],
                "path": str(path),
                "entries": entries,
            }
        )
    return {"benches": benches, "skipped": skipped}


def _short_sha(sha):
    if not sha:
        return "(pre-history)"
    return str(sha)[:12]


def format_trend(data):
    """Render :func:`bench_trend` output as the ``repro trend`` text."""
    sections = []
    for bench in data["benches"]:
        entries = bench["entries"]
        if not entries:
            sections.append(f"{bench['bench']}: no recorded entries")
            continue
        metric_names = sorted({m for e in entries for m in e["metrics"]})
        rows = [
            [
                entry["recorded"] or "(pre-history)",
                _short_sha(entry["git_sha"]),
                *[
                    entry["metrics"].get(name, float("nan"))
                    for name in metric_names
                ],
            ]
            for entry in entries
        ]
        table = format_table(
            ["recorded", "git", *metric_names],
            rows,
            title=f"{bench['bench']} ({len(entries)} entries)",
        )
        lines = [table]
        if len(entries) >= 2:
            oldest, newest = entries[0]["metrics"], entries[-1]["metrics"]
            deltas = []
            for name in metric_names:
                if name in oldest and name in newest and oldest[name]:
                    change = (newest[name] - oldest[name]) / oldest[name]
                    deltas.append(f"{name} {change:+.1%}")
            if deltas:
                lines.append(f"  net change (newest vs oldest): {', '.join(deltas)}")
        sections.append("\n".join(lines))
    for skip in data["skipped"]:
        sections.append(f"SKIPPED {skip['path']}: {skip['error']}")
    if not sections:
        return "no BENCH_*.json history found"
    return "\n\n".join(sections)
