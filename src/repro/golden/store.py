"""Versioned, content-addressed golden-run store.

A *golden* is the durable record of one canary point's result: the full
counter snapshot (:meth:`~repro.api.RunResult.as_dict` — ints exact,
floats repr-round-tripped, so equality is bit-exact), the point's
result-cache digest, and the wall-clock the honest run took. Entries are
addressed the same way checkpointed sweeps derive their run ids
(:func:`repro.harness.checkpoint.content_id`): a content hash of the
machine/runner digest plus the point's ``cache_key`` and mode, so a
machine or knob change can never silently serve a stale golden — it maps
to a different address, and replay reports the old entry as ``stale``
rather than diffing against it.

Durability mirrors the checkpoint layer: entries are published with the
fsync-hardened atomic JSON writer, and unreadable or mismatched entries
are *skipped with telemetry* (``golden_corrupt``) exactly like torn
journal lines — a corrupt golden degrades to "needs recapture", never to
a crash or a false gate failure.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.harness import knobs
from repro.harness.checkpoint import _atomic_write_json, content_id
from repro.harness.resultcache import _is_repo_checkout
from repro.harness.telemetry import NULL_TELEMETRY

__all__ = ["FORMAT_VERSION", "GoldenStore", "default_golden_dir", "golden_id"]

#: Bumped when the golden entry layout changes incompatibly; entries with
#: a different version are treated as corrupt (recapture, never diff).
FORMAT_VERSION = 1

#: Keys every readable golden entry must carry.
_REQUIRED_KEYS = frozenset(
    {
        "version",
        "id",
        "machine_digest",
        "point",
        "mode",
        "digest",
        "counters",
        "timing",
    }
)


def default_golden_dir(package_file=None):
    """Golden-store root: ``$REPRO_GOLDEN_DIR``, the in-repo default
    (``benchmarks/results/.golden/``), or a per-user dir for installed
    copies. ``package_file`` is this module's path (overridable for tests).
    """
    env = knobs.read("REPRO_GOLDEN_DIR")
    if env:
        return Path(env)
    source = Path(package_file if package_file else __file__).resolve()
    try:
        repo_root = source.parents[3]
    except IndexError:
        repo_root = None
    if repo_root is not None and _is_repo_checkout(repo_root):
        return repo_root / "benchmarks" / "results" / ".golden"
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "golden"


def golden_id(machine_digest, point, mode):
    """Content address of one golden entry (machine + workload + mode)."""
    return content_id(
        {"machine": machine_digest, "point": point, "mode": str(mode)},
        length=16,
    )


class GoldenStore:
    """Directory of golden entries, one JSON file per addressed point."""

    STATUS_OK = "ok"
    STATUS_MISSING = "missing"
    STATUS_CORRUPT = "corrupt"

    def __init__(self, directory=None, telemetry=None):
        self.directory = Path(directory) if directory else default_golden_dir()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def path_for(self, entry_id):
        return self.directory / f"{entry_id}.json"

    def put(self, entry):
        """Publish one golden entry (atomic + fsync'd); returns its id."""
        missing = _REQUIRED_KEYS - set(entry)
        if missing:
            raise ValueError(
                f"golden entry is missing keys: {sorted(missing)}"
            )
        entry_id = entry["id"]
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.path_for(entry_id), entry)
        return entry_id

    def _read(self, path, expect_id=None):
        """Entry at ``path``, or ``None`` after a ``golden_corrupt`` event.

        Mirrors the checkpoint journal's torn-line handling: any parse
        failure, version drift, missing key, or identity mismatch makes
        the entry unusable — report it, skip it, let replay mark the
        point for recapture.
        """
        try:
            entry = json.loads(path.read_text("utf-8"))
            if not isinstance(entry, dict):
                raise ValueError("entry is not a JSON object")
            if entry.get("version") != FORMAT_VERSION:
                raise ValueError(
                    f"golden format {entry.get('version')!r} != "
                    f"{FORMAT_VERSION}"
                )
            missing = _REQUIRED_KEYS - set(entry)
            if missing:
                raise ValueError(f"missing keys: {sorted(missing)}")
            if expect_id is not None and entry["id"] != expect_id:
                raise ValueError(
                    f"entry id {entry['id']!r} does not match its "
                    f"address {expect_id!r}"
                )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.telemetry.emit(
                "golden_corrupt",
                path=str(path),
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        return entry

    def get(self, machine_digest, point, mode):
        """``(entry, status)`` for one addressed point.

        ``status`` is ``"ok"``, ``"missing"`` (never captured at this
        address), or ``"corrupt"`` (present but unreadable/mismatched;
        a ``golden_corrupt`` telemetry event was emitted).
        """
        entry_id = golden_id(machine_digest, point, mode)
        path = self.path_for(entry_id)
        if not path.is_file():
            return None, self.STATUS_MISSING
        entry = self._read(path, expect_id=entry_id)
        if entry is None:
            return None, self.STATUS_CORRUPT
        return entry, self.STATUS_OK

    def find_point(self, point, mode):
        """Any readable entry for ``(point, mode)``, machine regardless.

        Used by replay to tell ``stale`` from ``missing``: when the
        content address misses but an entry for the same point exists
        under a *different* machine/runner digest, the golden is stale —
        the configuration drifted — rather than never captured.
        """
        mode = str(mode)
        for entry in self.entries():
            if entry["point"] == point and entry["mode"] == mode:
                return entry
        return None

    def entries(self):
        """Every readable entry in the store (corrupt files skipped with
        telemetry), sorted by (point, mode) for stable listings."""
        found = []
        if not self.directory.is_dir():
            return found
        for path in sorted(self.directory.glob("*.json")):
            entry = self._read(path, expect_id=path.stem)
            if entry is not None:
                found.append(entry)
        found.sort(key=lambda e: (e["point"], e["mode"]))
        return found

    def __len__(self):
        count = 0
        try:
            for _ in self.directory.glob("*.json"):
                count += 1
        except OSError:
            pass
        return count
