"""Capture golden runs and replay the canary against them.

The tolerance policy is deliberately two-tier, following the paper's own
epistemology: simulated **counters are bit-exact** — the engines are
equivalence-tested, serialization round-trips ints and float reprs
exactly, so *any* counter drift is a regression (or an un-bumped format
version), never noise — while **wall-clock is banded**, because timing on
a shared CI runner legitimately wobbles. A replayed point therefore lands
in exactly one bucket:

``pass``
    Counters bit-identical, timing inside the relative band.
``fail``
    Counter drift (``failure="counters"``) or timing outside the band
    (``failure="timing"``); per-field drift magnitudes are reported.
``stale``
    The golden exists but its machine/point digest no longer matches the
    current configuration — the *comparison* is invalid, not the code;
    reported distinctly so a machine change reads as "recapture", never
    as a false regression.
``missing`` / ``corrupt``
    Never captured at this address / present but unreadable (skipped with
    ``golden_corrupt`` telemetry, mirroring torn journal lines).

``REPRO_REPLAY_PERTURB`` is the gate's fault-injection drill: it adds an
integer to the first phase's instruction count of every replayed result
*after* simulation, inside the differ only, so CI can prove end to end
that counter drift exits non-zero without ever corrupting caches or
goldens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.golden.store import FORMAT_VERSION, GoldenStore, golden_id
from repro.harness import knobs
from repro.harness.benchhistory import current_git_sha, iso_utc
from repro.harness.telemetry import NULL_TELEMETRY

__all__ = [
    "PointReport",
    "ReplayReport",
    "TolerancePolicy",
    "capture_goldens",
    "replay_goldens",
]

STATUS_PASS = "pass"
STATUS_FAIL = "fail"
STATUS_STALE = "stale"
STATUS_MISSING = "missing"
STATUS_CORRUPT = "corrupt"

#: Cap on reported per-field drifts per point (the first drift already
#: fails the gate; the cap keeps reports readable when everything moved).
_MAX_DRIFTS = 16


@dataclass(frozen=True)
class TolerancePolicy:
    """Explicit drift tolerances: counters exact, timing banded.

    ``time_rel_band`` is the allowed relative wall-clock drift in either
    direction (0.5 = ±50%). There is deliberately no counter tolerance
    field: bit-identity is the contract, and making it configurable would
    let a gate silently rot.
    """

    time_rel_band: float = 0.5

    def __post_init__(self):
        if self.time_rel_band < 0:
            raise ValueError(
                f"time_rel_band must be >= 0, got {self.time_rel_band}"
            )

    @classmethod
    def from_env(cls, time_rel_band=None):
        """Policy from ``REPRO_REPLAY_TIME_BAND`` (explicit arg wins)."""
        if time_rel_band is None:
            raw = knobs.read("REPRO_REPLAY_TIME_BAND")
            time_rel_band = float(raw) if raw else 0.5
        return cls(time_rel_band=float(time_rel_band))


@dataclass(frozen=True)
class PointReport:
    """Replay verdict for one canary point."""

    point: str
    mode: str
    status: str
    #: ``"counters"`` or ``"timing"`` when ``status == "fail"``.
    failure: str = None
    #: Per-field counter drifts: ``{"field", "golden", "replay"}`` dicts.
    counter_drift: tuple = ()
    golden_seconds: float = None
    replay_seconds: float = None
    #: Relative wall-clock drift ((replay - golden) / golden).
    time_drift: float = None

    def as_dict(self):
        return {
            "point": self.point,
            "mode": self.mode,
            "status": self.status,
            "failure": self.failure,
            "counter_drift": list(self.counter_drift),
            "golden_seconds": self.golden_seconds,
            "replay_seconds": self.replay_seconds,
            "time_drift": self.time_drift,
        }


@dataclass(frozen=True)
class ReplayReport:
    """Structured outcome of one ``repro replay`` invocation."""

    machine_digest: str
    policy: TolerancePolicy
    points: tuple = ()
    recorded: str = field(default=None, compare=False)
    git_sha: str = field(default=None, compare=False)

    @property
    def summary(self):
        """Verdict counts, every bucket always present."""
        counts = {
            STATUS_PASS: 0,
            STATUS_FAIL: 0,
            STATUS_STALE: 0,
            STATUS_MISSING: 0,
            STATUS_CORRUPT: 0,
        }
        for report in self.points:
            counts[report.status] += 1
        return counts

    def failures(self, gate="all"):
        """The failing points under ``gate`` (``"all"`` or ``"counters"``).

        The CI merge gate uses ``"counters"``: bit-identity is
        non-negotiable, while a timing excursion on a noisy runner is
        surfaced in the report without blocking the merge.
        """
        if gate not in ("all", "counters"):
            raise ValueError(f"unknown replay gate {gate!r}")
        failing = [p for p in self.points if p.status == STATUS_FAIL]
        if gate == "counters":
            failing = [p for p in failing if p.failure == "counters"]
        return failing

    def ok(self, gate="all"):
        """True when no point fails under ``gate`` (stale/missing/corrupt
        points need recapture but are not regressions)."""
        return not self.failures(gate)

    def as_dict(self):
        return {
            "version": FORMAT_VERSION,
            "machine_digest": self.machine_digest,
            "policy": {"time_rel_band": self.policy.time_rel_band},
            "recorded": self.recorded,
            "git_sha": self.git_sha,
            "summary": self.summary,
            "ok": self.ok(),
            "ok_counters": self.ok("counters"),
            "points": [p.as_dict() for p in self.points],
        }


def _timed_run(runner, workload, mode):
    """(RunResult, honest wall-clock seconds) for one fresh simulation.

    ``use_cache=False``: a golden's timing is only meaningful for a run
    that actually simulated, and a replay that served counters from the
    result cache would not exercise the code being gated.
    """
    start = time.perf_counter()
    result = runner.run(workload, mode, use_cache=False)
    return result, time.perf_counter() - start


def capture_goldens(runner, points, store=None, telemetry=None):
    """Record one golden entry per ``(workload, mode)`` point.

    Returns the stored entries in point order. Capture always overwrites
    the address: the golden is "the blessed result of this exact
    configuration", and the address already changes whenever the
    configuration does.
    """
    store = store if store is not None else GoldenStore()
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    machine_digest = runner.machine_digest()
    entries = []
    for workload, mode in points:
        result, seconds = _timed_run(runner, workload, mode)
        entry = {
            "version": FORMAT_VERSION,
            "id": golden_id(machine_digest, workload.cache_key, mode),
            "machine_digest": machine_digest,
            "point": workload.cache_key,
            "mode": str(mode),
            "digest": runner.point_digest(workload.cache_key, mode),
            "counters": result.as_dict(),
            "timing": {"seconds": seconds},
            "recorded": iso_utc(),
            "git_sha": current_git_sha(),
        }
        store.put(entry)
        telemetry.emit(
            "golden_captured",
            point=workload.cache_key,
            mode=str(mode),
            golden_id=entry["id"],
            duration_s=seconds,
        )
        entries.append(entry)
    return entries


def _diff_payload(golden, replay, path, out):
    """Exact structural diff of two counter payloads (bounded)."""
    if len(out) >= _MAX_DRIFTS:
        return
    if isinstance(golden, dict) and isinstance(replay, dict):
        for key in sorted(set(golden) | set(replay)):
            _diff_payload(
                golden.get(key), replay.get(key), f"{path}.{key}", out
            )
    elif (
        isinstance(golden, list)
        and isinstance(replay, list)
        and len(golden) == len(replay)
    ):
        for index, (a, b) in enumerate(zip(golden, replay)):
            _diff_payload(a, b, f"{path}[{index}]", out)
    elif golden != replay:
        # Exact comparison is the policy: ints are exact and float reprs
        # round-trip, so inequality here is drift, not representation.
        out.append({"field": path.lstrip("."), "golden": golden, "replay": replay})


def _perturb_for_drill(counters):
    """Apply the ``REPRO_REPLAY_PERTURB`` fault-injection drill.

    Mutates (a copy of) the replayed counter payload the differ sees —
    never the RunResult, the caches, or the golden — so the gate's
    failure path can be exercised deterministically.
    """
    raw = knobs.read("REPRO_REPLAY_PERTURB")
    if not raw:
        return counters
    try:
        delta = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_REPLAY_PERTURB must be an integer, got {raw!r}"
        ) from None
    import copy

    perturbed = copy.deepcopy(counters)
    if perturbed.get("phases"):
        perturbed["phases"][0]["instructions"] += delta
    return perturbed


def replay_goldens(runner, points, store=None, policy=None, telemetry=None):
    """Re-run ``points`` and diff each against its golden entry."""
    store = store if store is not None else GoldenStore()
    policy = policy if policy is not None else TolerancePolicy.from_env()
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    machine_digest = runner.machine_digest()
    reports = []
    for workload, mode in points:
        point = workload.cache_key
        entry, status = store.get(machine_digest, point, mode)
        if entry is None:
            if (
                status == STATUS_MISSING
                and store.find_point(point, mode) is not None
            ):
                # A golden for this point exists under a *different*
                # machine/runner digest: the configuration drifted since
                # capture. The comparison is invalid, the code is not
                # wrong — stale, never fail.
                status = STATUS_STALE
            # missing/corrupt/stale: no valid comparison target; report
            # and move on (capture refreshes the address).
            report = PointReport(point=point, mode=str(mode), status=status)
        elif (
            entry["machine_digest"] != machine_digest
            or entry["digest"] != runner.point_digest(point, mode)
        ):
            # The address matched but the recorded digests did not: the
            # runner configuration changed under the same content hash
            # inputs (e.g. a digest format bump). Invalid comparison —
            # stale, not a regression.
            report = PointReport(
                point=point, mode=str(mode), status=STATUS_STALE
            )
        else:
            result, seconds = _timed_run(runner, workload, mode)
            replayed = _perturb_for_drill(result.as_dict())
            drifts = []
            _diff_payload(entry["counters"], replayed, "", drifts)
            golden_seconds = float(entry["timing"]["seconds"])
            time_drift = (
                (seconds - golden_seconds) / golden_seconds
                if golden_seconds > 0
                else 0.0
            )
            if drifts:
                status, failure = STATUS_FAIL, "counters"
            elif abs(time_drift) > policy.time_rel_band:
                status, failure = STATUS_FAIL, "timing"
            else:
                status, failure = STATUS_PASS, None
            report = PointReport(
                point=point,
                mode=str(mode),
                status=status,
                failure=failure,
                counter_drift=tuple(drifts),
                golden_seconds=golden_seconds,
                replay_seconds=seconds,
                time_drift=time_drift,
            )
        telemetry.emit(
            "replay_point",
            point=report.point,
            mode=report.mode,
            status=report.status,
            failure=report.failure,
            time_drift=report.time_drift,
        )
        reports.append(report)
    return ReplayReport(
        machine_digest=machine_digest,
        policy=policy,
        points=tuple(reports),
        recorded=iso_utc(),
        git_sha=current_git_sha(),
    )
