"""Golden-run capture/replay: the continuous perf-regression gate.

The paper's claims are counter-level and bit-exact — fig02–fig15 LLC miss
rates, stall fractions, and the 7.4x/74x pipeline speedups — which makes
them exactly the kind of output a golden store can gate durably instead
of point-in-time. This package provides the four pieces:

:mod:`repro.golden.store`
    Versioned golden entries, content-addressed by machine digest +
    workload + mode (the checkpoint layer's run-id derivation).
:mod:`repro.golden.canary`
    The small figure-suite subset captured and replayed on every PR.
:mod:`repro.golden.replay`
    ``repro capture`` / ``repro replay``: re-run the canary and diff with
    an explicit two-tier tolerance policy — bit-exact counters,
    configurable relative bands for wall-clock — into a structured
    :class:`~repro.golden.replay.ReplayReport`.
:mod:`repro.golden.trend`
    ``repro trend``: the per-figure perf trajectory over the accumulated
    append-only ``BENCH_*.json`` history.
"""

from __future__ import annotations

from repro.golden.canary import CANARY_SCALE, CANARY_SPECS, canary_points
from repro.golden.replay import (
    PointReport,
    ReplayReport,
    TolerancePolicy,
    capture_goldens,
    replay_goldens,
)
from repro.golden.store import GoldenStore, default_golden_dir, golden_id
from repro.golden.trend import bench_trend, format_trend, trend_metrics

__all__ = [
    "CANARY_SCALE",
    "CANARY_SPECS",
    "GoldenStore",
    "PointReport",
    "ReplayReport",
    "TolerancePolicy",
    "bench_trend",
    "canary_points",
    "capture_goldens",
    "default_golden_dir",
    "format_trend",
    "golden_id",
    "replay_goldens",
    "trend_metrics",
]
