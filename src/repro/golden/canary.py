"""The canary subset of the figure suite gated by capture/replay.

The full figure campaign is hours of simulation; the perf-regression gate
needs a subset small enough to re-run on every PR yet broad enough to
cover the counter surfaces the paper's claims rest on. The canary spans
both workload families (graph-irregular and sort-irregular updates) and
the modes whose counters back the headline figures: ``baseline`` (fig02
LLC miss rates), ``pb-sw`` (fig05/fig10 software PB), and ``cobra``
(fig10/fig11 hardware PB with reserved ways + C-Buffers) — plus one
ingested real graph (``csr-build/KARATE``), pinning the dataset ingestion
path (sha256-verified bytes, fixed natural scale) under the same
bit-identity gate as the synthetic suite.

The default scale (13) matches the CI smoke scale: each point simulates
in seconds while still exercising every engine layer end to end. Ingested
inputs ignore the requested scale — a real graph arrives at one size, and
its registry identity pins that size.
"""

from __future__ import annotations

from repro.harness.modes import BASELINE, COBRA, PB_SW
from repro.workloads.registry import input_fixed_scale, resolve

__all__ = ["CANARY_SCALE", "CANARY_SPECS", "canary_points"]

#: Default log2 input scale for canary capture/replay.
CANARY_SCALE = 13

#: ``(workload, input, modes)`` triples of the canary subset.
CANARY_SPECS = (
    ("degree-count", "KRON", (BASELINE, COBRA)),
    ("integer-sort", "U16", (BASELINE, PB_SW)),
    ("csr-build", "KARATE", (BASELINE, COBRA)),
)

def canary_points(scale=None):
    """The canary ``(workload, mode)`` list at ``scale`` (default 13).

    Fixed-scale inputs (ingested datasets) resolve at their own natural
    scale regardless of ``scale``.
    """
    scale = CANARY_SCALE if scale is None else scale
    points = []
    for name, input_name, modes in CANARY_SPECS:
        point_scale = (
            None if input_fixed_scale(input_name) is not None else scale
        )
        workload = resolve(name, input_name, point_scale)
        for mode in modes:
            points.append((workload, mode))
    return points
