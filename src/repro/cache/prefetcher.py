"""L2 stream prefetcher.

Models the stream prefetcher the paper's Table II machine has at the L2 —
the reason COBRA reserves only a single L2 way for C-Buffers (prefetched
streaming data gainfully uses L2 capacity, Figure 13b).

The stream table is keyed by the *next expected line* of each tracked
stream, making ``observe`` O(1) per access: an access that extends a stream
pops its entry and re-inserts it at the following line; anything else
allocates a new stream, displacing the least-recently-extended one.
"""

from __future__ import annotations

from repro._util import check_positive

__all__ = ["StreamPrefetcher"]


class StreamPrefetcher:
    """Detects ascending line streams and prefetches ahead.

    Once a stream has been extended ``threshold`` times, every further
    extension issues the next ``degree`` lines.
    """

    def __init__(self, num_streams=16, degree=4, threshold=2):
        check_positive("num_streams", num_streams)
        check_positive("degree", degree)
        check_positive("threshold", threshold)
        self.num_streams = num_streams
        self.degree = degree
        self.threshold = threshold
        self._expect = {}  # next expected line -> confidence (insertion-ordered)
        self.issued = 0

    def observe(self, line):
        """Record a demand access; return the list of lines to prefetch."""
        expect = self._expect
        confidence = expect.pop(line, None)
        if confidence is not None:
            confidence += 1
            expect[line + 1] = confidence
            if confidence >= self.threshold:
                prefetches = list(range(line + 1, line + 1 + self.degree))
                self.issued += self.degree
                return prefetches
            return []
        expect[line + 1] = 0
        if len(expect) > self.num_streams:
            del expect[next(iter(expect))]  # drop least-recently-extended
        return []

    def reset(self):
        """Forget all streams and zero statistics."""
        self._expect.clear()
        self.issued = 0
