"""Directory-based MESI coherence model (Table II's protocol).

COBRA sidesteps coherence entirely during Binning — C-Buffers are
core-private, which is why the MESI state bits can be repurposed as offset
counters (Section V-C). The baseline's parallel irregular updates, by
contrast, write shared data from every core and pay invalidation and
ownership-transfer traffic. This directory model quantifies that
difference for the multicore extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive

__all__ = ["MESI_INVALID", "MESI_SHARED", "MESI_EXCLUSIVE", "MESI_MODIFIED",
           "AccessOutcome", "CoherenceStats", "DirectoryMESI"]

MESI_INVALID = "I"
MESI_SHARED = "S"
MESI_EXCLUSIVE = "E"
MESI_MODIFIED = "M"


@dataclass(frozen=True)
class AccessOutcome:
    """What one read/write did at the directory."""

    hit: bool
    invalidations: int = 0
    cache_transfer: bool = False  # line supplied by another cache
    memory_fetch: bool = False
    writeback: bool = False  # a dirty copy was flushed or transferred


@dataclass
class CoherenceStats:
    """Aggregate protocol activity."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    invalidations: int = 0
    cache_transfers: int = 0
    memory_fetches: int = 0
    writebacks: int = 0

    def record(self, outcome, is_write):
        """Fold one :class:`AccessOutcome` into the totals."""
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        if outcome.hit:
            self.hits += 1
        self.invalidations += outcome.invalidations
        self.cache_transfers += int(outcome.cache_transfer)
        self.memory_fetches += int(outcome.memory_fetch)
        self.writebacks += int(outcome.writeback)

    @property
    def accesses(self):
        """Total reads + writes."""
        return self.reads + self.writes

    @property
    def invalidations_per_access(self):
        """Coherence pressure: invalidations per demand access."""
        return self.invalidations / self.accesses if self.accesses else 0.0


class _LineState:
    __slots__ = ("owner", "owner_state", "sharers")

    def __init__(self):
        self.owner = None  # core holding M or E
        self.owner_state = MESI_INVALID
        self.sharers = set()


class DirectoryMESI:
    """A full-map directory tracking MESI state across ``num_cores`` caches.

    The model is capacity-free (no evictions unless requested): it isolates
    *sharing* behaviour from capacity behaviour, which the cache simulator
    already covers.
    """

    def __init__(self, num_cores):
        check_positive("num_cores", num_cores)
        self.num_cores = num_cores
        self._lines = {}
        self.stats = CoherenceStats()

    def _check_core(self, core):
        if not 0 <= core < self.num_cores:
            raise IndexError(f"core {core} outside [0, {self.num_cores})")

    def state_of(self, core, line):
        """MESI state of ``line`` in ``core``'s cache."""
        self._check_core(core)
        entry = self._lines.get(line)
        if entry is None or core not in entry.sharers:
            return MESI_INVALID
        if entry.owner == core:
            # Owner with sharers == itself only: E or M. We fold E/M
            # distinction into the dirty flag tracked via writes: owner
            # set by write => M, by read-exclusive => E.
            return entry.owner_state
        return MESI_SHARED

    def read(self, core, line):
        """Core ``core`` loads ``line``; returns the :class:`AccessOutcome`."""
        self._check_core(core)
        entry = self._lines.get(line)
        if entry is None:
            entry = _LineState()
            entry.owner = core
            entry.owner_state = MESI_EXCLUSIVE
            entry.sharers = {core}
            self._lines[line] = entry
            outcome = AccessOutcome(hit=False, memory_fetch=True)
        elif core in entry.sharers:
            outcome = AccessOutcome(hit=True)
        elif entry.owner is not None:
            # Owner downgrades to S; dirty data flows to the requester
            # (and memory) if it was Modified.
            writeback = entry.owner_state == MESI_MODIFIED
            entry.owner = None
            entry.sharers.add(core)
            outcome = AccessOutcome(
                hit=False, cache_transfer=True, writeback=writeback
            )
        else:
            entry.sharers.add(core)
            outcome = AccessOutcome(hit=False, cache_transfer=True)
        self.stats.record(outcome, is_write=False)
        return outcome

    def write(self, core, line):
        """Core ``core`` stores to ``line``; invalidates other copies."""
        self._check_core(core)
        entry = self._lines.get(line)
        if entry is None:
            entry = _LineState()
            entry.owner = core
            entry.owner_state = MESI_MODIFIED
            entry.sharers = {core}
            self._lines[line] = entry
            outcome = AccessOutcome(hit=False, memory_fetch=True)
        elif entry.owner == core:
            entry.owner_state = MESI_MODIFIED  # silent E->M upgrade
            outcome = AccessOutcome(hit=True)
        else:
            others = entry.sharers - {core}
            transfer = bool(others)
            writeback = entry.owner is not None and entry.owner_state == MESI_MODIFIED
            hit = core in entry.sharers  # upgrade from S
            entry.owner = core
            entry.owner_state = MESI_MODIFIED
            entry.sharers = {core}
            outcome = AccessOutcome(
                hit=hit,
                invalidations=len(others),
                cache_transfer=transfer and not hit,
                memory_fetch=not transfer and not hit,
                writeback=writeback,
            )
        self.stats.record(outcome, is_write=True)
        return outcome

    def evict(self, core, line):
        """Drop ``core``'s copy; returns True when dirty data wrote back."""
        self._check_core(core)
        entry = self._lines.get(line)
        if entry is None or core not in entry.sharers:
            return False
        dirty = entry.owner == core and entry.owner_state == MESI_MODIFIED
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if not entry.sharers:
            del self._lines[line]
        if dirty:
            self.stats.writebacks += 1
        return dirty

    # ------------------------------------------------------------------ #
    # Invariant checking (used by property tests)
    # ------------------------------------------------------------------ #

    def check_invariants(self):
        """Raise ``AssertionError`` if any protocol invariant is violated."""
        for line, entry in self._lines.items():
            assert entry.sharers, f"line {line}: empty sharer set retained"
            if entry.owner is not None:
                assert entry.sharers == {entry.owner}, (
                    f"line {line}: owner coexists with sharers"
                )
            assert all(0 <= c < self.num_cores for c in entry.sharers)
        return True

    @property
    def tracked_lines(self):
        """Lines with at least one cached copy."""
        return len(self._lines)
