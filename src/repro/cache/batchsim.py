"""Batched trace simulation engine.

:class:`FastHierarchy` replays a trace one access at a time, walking all
three levels per access. This module instead simulates a whole line-trace
as NumPy arrays with a *level-decomposed, set-partitioned* sweep, in the
spirit of propagation blocking itself (and of the cache-aware restructuring
in GraphIt/Cagra and PCPM): process one cache level at a time over the whole
trace, and within a level partition the event stream by set so each
partition runs a tight specialized kernel over contiguous state.

The decomposition is exact because level state only flows *downward*:

* The L1 outcome of every access depends only on the access stream, so the
  L1 is simulated first over the full trace.
* The L2 sees the L1 demand misses plus the L1's dirty evictions; both are
  emitted with a global sequence key while the L1 runs, merged with one
  ``argsort``, and replayed.
* The LLC likewise consumes the L2 misses and dirty evictions; its own
  dirty victims are DRAM writebacks.

Within one level, distinct sets share no replacement state, so the event
stream is partitioned per set (NumPy group-by) and each set replays through
a specialized LRU or PLRU kernel that mirrors :class:`FastHierarchy`'s
policy logic exactly — equivalence on identical ``ServiceCounts`` is
asserted by the test suite against both ``FastHierarchy`` and the reference
``CacheHierarchy``.

Configurations the decomposition cannot express fall back to the scalar
engine (the runner checks :meth:`BatchHierarchy.supports`):

* DRRIP: set-dueling couples sets through the global PSEL counter, so
  per-set replay would reorder leader updates;
* an enabled prefetcher: prefetch fills into the L2 are gated on LLC
  residency *at the time of the access*, creating an upward dependency;
* reserved ways: way partitioning is phase-scoped and rare (COBRA binning
  phases carry no cache-visible trace), so it stays on the scalar path.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.config import HierarchyConfig
from repro.cache.stats import ServiceCounts

__all__ = ["BatchHierarchy"]

_LRU, _PLRU = 0, 1
_POLICY_CODES = {"lru": _LRU, "plru": _PLRU}

#: Sub-event slots per access in the global sequence key: the demand event
#: takes slot 0 and every eviction fires one slot after its cause, so an
#: L1 victim lands at slot 1 and the victim of *that* fill at slot 2.
_SEQ_STRIDE = 4


def _lru_replay(state, cap, ev_line, ev_dirty, evict_pos, evict_line):
    """Replay one set's events under LRU; returns miss positions.

    ``state`` is an :class:`OrderedDict` mapping resident lines (LRU first)
    to their dirty flag; every operation is a C-level dict primitive.
    Victim choice by least-recent touch matches FastHierarchy's stamp-based
    LRU exactly (every hit and fill touches). Hits are the common case, so
    the kernel returns only the *positions* that missed; dirty evictions
    record the event position too (the caller maps positions back to
    sequence keys).
    """
    resident = state
    miss_pos = []
    miss = miss_pos.append
    move_to_end = resident.move_to_end
    popitem = resident.popitem
    for pos, line in enumerate(ev_line):
        if line in resident:
            move_to_end(line)
            if ev_dirty[pos]:
                resident[line] = True
        else:
            miss(pos)
            resident[line] = ev_dirty[pos]
            if len(resident) > cap:
                victim, victim_dirty = popitem(last=False)
                if victim_dirty:
                    evict_pos.append(pos)
                    evict_line.append(victim)
    return miss_pos


def _plru_replay(state, cap, ev_line, ev_dirty, evict_pos, evict_line):
    """Replay one set's events under bit-PLRU; returns miss positions.

    ``state`` is ``[table, way_line, mru, count, occupied, dirty]`` — a
    line→way-bit dict, its way→line inverse, and the MRU/dirty bits packed
    into ints: the same scheme FastHierarchy keeps in its flat arrays,
    replicated bit for bit (reset-on-saturation, first clear-MRU-bit
    victim, first free way on cold fills). The table stores ``1 << way``
    rather than the way index so the hot hit path never shifts. Hits are
    the common case, so only miss *positions* are returned; dirty
    evictions record the event position too (the caller maps positions
    back to sequence keys).
    """
    table, way_line = state[0], state[1]
    mru, count, occupied, dirty = state[2], state[3], state[4], state[5]
    full_mask = (1 << cap) - 1
    miss_pos = []
    miss = miss_pos.append
    lookup = table.get
    for pos, line in enumerate(ev_line):
        bit = lookup(line)
        if bit is not None:
            if not mru & bit:
                count += 1
                if count >= cap:
                    mru, count = bit, 1
                else:
                    mru |= bit
            if ev_dirty[pos]:
                dirty |= bit
            continue
        miss(pos)
        if occupied < cap:
            way = way_line.index(None)
            bit = 1 << way
            occupied += 1
        else:
            inverted = ~mru & full_mask
            bit = inverted & -inverted if inverted else 1
            way = bit.bit_length() - 1
            old = way_line[way]
            del table[old]
            if dirty & bit:
                evict_pos.append(pos)
                evict_line.append(old)
        table[line] = bit
        way_line[way] = line
        if ev_dirty[pos]:
            dirty |= bit
        else:
            dirty &= ~bit
        if not mru & bit:
            count += 1
            if count >= cap:
                mru, count = bit, 1
            else:
                mru |= bit
    state[2], state[3], state[4], state[5] = mru, count, occupied, dirty
    return miss_pos


class BatchHierarchy:
    """Batched three-level simulator, equivalent to :class:`FastHierarchy`.

    Only constructible for configurations :meth:`supports` accepts. State
    persists across :meth:`simulate` calls exactly as FastHierarchy's does
    across :meth:`~FastHierarchy.access` calls.
    """

    def __init__(self, config: HierarchyConfig):
        if not self.supports(config):
            raise ValueError(
                "BatchHierarchy cannot express this configuration "
                "(DRRIP, prefetching, or reserved ways); use FastHierarchy"
            )
        self.config = config
        self._sets = []
        self._caps = []
        self._pol = []
        self._state = [{}, {}, {}]  # per level: set index -> kernel state
        for name in ("l1", "l2", "llc"):
            self._sets.append(config.sets(name))
            self._caps.append(getattr(config, f"{name}_ways"))
            self._pol.append(_POLICY_CODES[getattr(config, f"{name}_policy")])
        self.hits = [0, 0, 0]
        self.misses = [0, 0, 0]
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0  # no prefetcher on the batched path
        self.prefetcher = None

    @staticmethod
    def supports(config: HierarchyConfig) -> bool:
        """True when the batched decomposition is exact for ``config``."""
        return (
            not config.prefetch
            and config.l1_policy in _POLICY_CODES
            and config.l2_policy in _POLICY_CODES
            and config.llc_policy in _POLICY_CODES
            and config.l1_reserved_ways == 0
            and config.l2_reserved_ways == 0
            and config.llc_reserved_ways == 0
        )

    # ------------------------------------------------------------------ #
    # Level replay
    # ------------------------------------------------------------------ #

    def _replay_level(self, level, seq, line, dirty):
        """Replay one level's merged event stream, partitioned per set.

        ``dirty`` flags events that dirty the touched line (demand writes at
        the L1; dirty-victim fills at deeper levels). Returns ``(hit,
        evict_seq, evict_line)``: per-event hit flags and the level's dirty
        evictions tagged with their sequence keys.
        """
        count = line.size
        hit = np.empty(count, dtype=bool)
        empty_seq = np.empty(0, dtype=np.int64)
        if not count:
            return hit, empty_seq, []
        sets = self._sets[level]
        cap = self._caps[level]
        policy = self._pol[level]
        kernel = _lru_replay if policy == _LRU else _plru_replay
        states = self._state[level]
        if sets & (sets - 1) == 0:  # power-of-two set count: bitmask index
            set_idx = line & (sets - 1)
        else:
            set_idx = line % sets
        # stable per-set grouping: set counts are small, so a narrow-dtype
        # stable argsort hits numpy's radix path — ~3x faster than a
        # comparison sort of packed (set, position) keys
        if sets <= 1 << 16:
            narrow = np.uint8 if sets <= 1 << 8 else np.uint16
            set_idx = set_idx.astype(narrow)
            order = np.argsort(set_idx, kind="stable")
        else:  # huge set counts: generic value sort on packed keys
            shift = int(count).bit_length()
            key = (set_idx.astype(np.int64) << shift) | np.arange(
                count, dtype=np.int64
            )
            key.sort()
            order = key & ((1 << shift) - 1)
        counts = np.bincount(set_idx, minlength=sets)
        starts = np.cumsum(counts[:-1])
        evict_seq_parts, evict_line = [], []
        for set_id, group in enumerate(np.split(order, starts)):
            if not group.size:
                continue
            state = states.get(set_id)
            if state is None:
                if policy == _LRU:
                    state = OrderedDict()
                else:
                    state = [{}, [None] * cap, 0, 0, 0, 0]
                states[set_id] = state
            evict_pos = []
            miss_pos = kernel(
                state,
                cap,
                line[group].tolist(),
                dirty[group].tolist(),
                evict_pos,
                evict_line,
            )
            group_hit = np.ones(group.size, dtype=bool)
            if miss_pos:
                group_hit[miss_pos] = False
            hit[group] = group_hit
            if evict_pos:
                # an eviction fires one sequence slot after its cause
                evict_seq_parts.append(seq[group[evict_pos]] + 1)
        evict_seq = (
            np.concatenate(evict_seq_parts) if evict_seq_parts else empty_seq
        )
        return hit, evict_seq, evict_line

    @staticmethod
    def _merge(demand_seq, demand_line, evict_seq, evict_line):
        """Merge demand and eviction streams into one seq-ordered stream.

        The demand stream is already seq-sorted, so only the (much smaller)
        eviction stream is sorted and the two are interleaved with
        ``searchsorted`` — no ties are possible across streams because
        demand events occupy slot 0 of each access's ``_SEQ_STRIDE`` window
        and evictions the following slots.
        """
        ev_seq = np.asarray(evict_seq, dtype=np.int64)
        ev_line = np.asarray(evict_line, dtype=np.int64)
        if ev_seq.size:
            # eviction seq keys are unique (each cause is a distinct
            # event), so pack (seq, index) into one int64 and value-sort —
            # cheaper than argsort's indirection
            shift = int(ev_seq.size).bit_length()
            if int(ev_seq.max()) < 1 << (62 - shift):
                key = (ev_seq << shift) | np.arange(
                    ev_seq.size, dtype=np.int64
                )
                key.sort()
                ev_order = key & ((1 << shift) - 1)
                ev_seq = key >> shift
            else:  # pathological seq range: keep the exact slow path
                ev_order = np.argsort(ev_seq, kind="stable")
                ev_seq = ev_seq[ev_order]
            ev_line = ev_line[ev_order]
        nd, ne = demand_seq.size, ev_seq.size
        seq = np.empty(nd + ne, dtype=np.int64)
        line = np.empty(nd + ne, dtype=np.int64)
        kind = np.empty(nd + ne, dtype=np.uint8)
        dpos = np.searchsorted(ev_seq, demand_seq) + np.arange(
            nd, dtype=np.int64
        )
        epos = np.searchsorted(demand_seq, ev_seq) + np.arange(
            ne, dtype=np.int64
        )
        seq[dpos] = demand_seq
        line[dpos] = demand_line
        kind[dpos] = 0
        seq[epos] = ev_seq
        line[epos] = ev_line
        kind[epos] = 1
        return seq, line, kind

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #

    def simulate(self, lines, writes=None):
        """Simulate a whole trace; returns the per-access servicing levels.

        ``lines`` is an int array of line numbers; ``writes`` a parallel
        boolean array (or a single bool / None applied to every access).
        The returned int8 array holds 1 (L1) .. 4 (DRAM) per access, and
        the hit/miss/DRAM counters are updated, mirroring what repeated
        :meth:`FastHierarchy.access` calls would produce.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = lines.size
        if writes is None or isinstance(writes, bool):
            writes = np.full(n, bool(writes))
        else:
            writes = np.ascontiguousarray(writes, dtype=bool)
        served = np.full(n, 1, dtype=np.int8)
        if not n:
            return served

        # L1: every access, in order; a demand write dirties the line.
        seq = np.arange(n, dtype=np.int64) * _SEQ_STRIDE
        l1_hit, ev_seq, ev_line = self._replay_level(0, seq, lines, writes)
        l1_miss = np.flatnonzero(~l1_hit)
        self.hits[0] += int(l1_hit.sum())
        self.misses[0] += int(l1_miss.size)
        served[l1_miss] = 2

        # L2: demand lookups for L1 misses, merged with L1 dirty evictions.
        # A dirty victim cascading down fills dirty; demand fills are clean.
        seq2, line2, kind2 = self._merge(
            seq[l1_miss], lines[l1_miss], ev_seq, ev_line
        )
        l2_hit, ev_seq, ev_line = self._replay_level(
            1, seq2, line2, kind2 != 0
        )
        demand2 = kind2 == 0
        l2_miss = demand2 & ~l2_hit
        self.hits[1] += int((demand2 & l2_hit).sum())
        self.misses[1] += int(l2_miss.sum())
        served[seq2[l2_miss] // _SEQ_STRIDE] = 3

        # LLC: demand lookups for L2 misses, merged with L2 dirty evictions.
        seq3, line3, kind3 = self._merge(
            seq2[l2_miss], line2[l2_miss], ev_seq, ev_line
        )
        llc_hit, _dram_seq, dram_line = self._replay_level(
            2, seq3, line3, kind3 != 0
        )
        demand3 = kind3 == 0
        llc_miss = demand3 & ~llc_hit
        self.hits[2] += int((demand3 & llc_hit).sum())
        misses3 = int(llc_miss.sum())
        self.misses[2] += misses3
        self.dram_reads += misses3
        self.dram_writes += len(dram_line)
        served[seq3[llc_miss] // _SEQ_STRIDE] = 4
        return served

    def run_trace(self, lines, writes=None):
        """Simulate a whole trace; returns :class:`ServiceCounts`."""
        counts = np.bincount(self.simulate(lines, writes), minlength=5)
        return ServiceCounts(
            int(counts[1]), int(counts[2]), int(counts[3]), int(counts[4])
        )

    def simulate_stream(self, chunks):
        """Replay an iterable of ``(lines, writes)`` chunks lazily.

        Yields the per-chunk served-level array from :meth:`simulate`.
        Replacement state persists across calls, so consuming the generator
        is bit-identical to one :meth:`simulate` over the concatenated
        trace while holding only a chunk in memory at a time.
        """
        for lines, writes in chunks:
            yield self.simulate(lines, writes)

    # ------------------------------------------------------------------ #
    # Maintenance (FastHierarchy API parity)
    # ------------------------------------------------------------------ #

    def contains(self, level, line):
        """True when ``line`` is resident at ``level`` (0-indexed)."""
        state = self._state[level].get(int(line) % self._sets[level])
        if state is None:
            return False
        resident = state if self._pol[level] == _LRU else state[0]
        return line in resident

    def reset_stats(self):
        """Zero hit/miss and DRAM counters (contents unchanged)."""
        self.hits = [0, 0, 0]
        self.misses = [0, 0, 0]
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0

    def write_through_dram(self, num_lines):
        """Account non-temporal full-line writes (bypass the caches)."""
        self.dram_writes += num_lines

    def read_through_dram(self, num_lines):
        """Account streaming reads served straight from DRAM."""
        self.dram_reads += num_lines
