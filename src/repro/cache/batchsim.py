"""Batched trace simulation engine.

:class:`FastHierarchy` replays a trace one access at a time, walking all
three levels per access. This module instead simulates a whole line-trace
as NumPy arrays with a *level-decomposed, set-partitioned* sweep, in the
spirit of propagation blocking itself (and of the cache-aware restructuring
in GraphIt/Cagra and PCPM): process one cache level at a time over the whole
trace, and within a level partition the event stream by set so each
partition runs a tight specialized kernel over contiguous state.

The decomposition is exact because level state only flows *downward*:

* The L1 outcome of every access depends only on the access stream, so the
  L1 is simulated first over the full trace.
* The L2 sees the L1 demand misses plus the L1's dirty evictions; both are
  emitted with a global sequence key while the L1 runs, merged with
  ``searchsorted``, and replayed.
* The LLC likewise consumes the L2 misses and dirty evictions; its own
  dirty victims are DRAM writebacks.

Three couplings used to force a scalar fallback; each now has a dedicated
kernel treatment (see :mod:`repro.cache.kernels`):

* **DRRIP set dueling** couples sets through the global PSEL counter, so
  DRRIP levels skip the per-set partition and run one PSEL-threaded scan
  over the level's seq-ordered event stream instead.
* **Stream prefetching** is upward-dependent: prefetch fills into the L2
  are gated on L2 residency, and their DRAM accounting on LLC residency,
  both *at the time of the access*. But the prefetcher observes only the
  L1-miss stream and its own state depends on nothing else, so issuance is
  computed in one pre-pass and the fills/probes are interleaved into the
  L2/LLC event streams as dedicated event kinds (``KIND_PREFETCH`` /
  ``KIND_PROBE``) at the right sequence slots.
* **Reserved ways** (COBRA way partitioning) shrink each set's usable
  capacity; the kernels simply replay with ``ways - reserved`` capacity,
  exactly like the scalar engine's ``usable`` range.

Within one level, events interleave on a fixed per-access slot budget: the
demand event takes slot 0, every eviction fires one slot after its cause
(an L1 victim lands at slot 1, the victim of *that* fill at slot 2), and
prefetch ``j`` occupies slots ``3 + 2j`` (fill and LLC probe) and
``4 + 2j`` (the fill's own victim). Equivalence on identical counters is
asserted by the test suite against both ``FastHierarchy`` and the
reference ``CacheHierarchy`` for every policy/prefetch/reservation
combination (``tests/cache/test_kernel_backends.py``).

Kernels come in two interchangeable tiers selected by the
``REPRO_KERNEL_BACKEND`` knob: pure-Python dict kernels (``numpy``) and
flat-array kernels compiled with numba when it is installed (``numba``).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache import kernels as kernel_backends
from repro.cache.config import HierarchyConfig
from repro.cache.kernels import cnative
from repro.cache.kernels.njit_kernels import (
    drrip_level_replay_flat,
    lru_level_replay,
    plru_level_replay,
)
from repro.cache.kernels.prefetch import prefetch_scan
from repro.cache.kernels.setreplay import (
    KIND_PROBE,
    KIND_WRITE,
    DrripLevelState,
    drrip_level_replay,
    drrip_roles,
    lru_set_replay,
    plru_set_replay,
)
from repro.cache.prefetcher import StreamPrefetcher
from repro.cache.stats import ServiceCounts

__all__ = ["BatchHierarchy"]

_LRU, _PLRU, _DRRIP = 0, 1, 2
_POLICY_CODES = {"lru": _LRU, "plru": _PLRU, "drrip": _DRRIP}

#: Sub-event slots per access when no prefetcher is configured (slots 0-2;
#: prefetching widens the window, see :meth:`BatchHierarchy._stride`).
_SEQ_STRIDE = 4


class _FlatLevelState:
    """Per-level flat arrays backing the ``numba`` kernel tier."""

    __slots__ = (
        "way_line",
        "dirty",
        "occ",
        "stamp",
        "clock",
        "mru",
        "mru_cnt",
        "rrpv",
        "role",
        "duel",
    )

    def __init__(self, sets, ways, policy):
        total = sets * ways
        self.way_line = np.full(total, -1, dtype=np.int64)
        self.dirty = np.zeros(total, dtype=np.uint8)
        self.occ = np.zeros(sets, dtype=np.int64)
        if policy == _LRU:
            self.stamp = np.zeros(total, dtype=np.int64)
            self.clock = np.zeros(1, dtype=np.int64)
        elif policy == _PLRU:
            self.mru = np.zeros(total, dtype=np.uint8)
            self.mru_cnt = np.zeros(sets, dtype=np.int64)
        else:
            self.rrpv = np.full(total, 3, dtype=np.uint8)
            self.role = np.asarray(drrip_roles(sets), dtype=np.uint8)
            self.duel = np.array([512, 0], dtype=np.int64)


class BatchHierarchy:
    """Batched three-level simulator, equivalent to :class:`FastHierarchy`.

    Only constructible for configurations :meth:`supports` accepts (today:
    every configuration whose policies are LRU/PLRU/DRRIP — including
    prefetching and reserved ways). State persists across :meth:`simulate`
    calls exactly as FastHierarchy's does across
    :meth:`~FastHierarchy.access` calls.

    ``backend`` selects the kernel tier (``None``/``"auto"`` resolves via
    the ``REPRO_KERNEL_BACKEND`` knob; see :mod:`repro.cache.kernels`).
    """

    def __init__(self, config: HierarchyConfig, backend=None):
        reason = self.reject_reason(config)
        if reason is not None:
            raise ValueError(
                f"BatchHierarchy cannot express this configuration "
                f"({reason}); use FastHierarchy"
            )
        self.config = config
        self.backend = kernel_backends.select_backend(backend)
        self._flat = self.backend != "numpy"
        self._native = self.backend == "cnative"
        self._sets = []
        self._ways = []
        self._caps = []  # usable ways (full ways minus reservation)
        self._pol = []
        self._state = []
        flat = self.backend != "numpy"
        for name in ("l1", "l2", "llc"):
            sets = config.sets(name)
            ways = getattr(config, f"{name}_ways")
            usable = ways - getattr(config, f"{name}_reserved_ways")
            policy = _POLICY_CODES[getattr(config, f"{name}_policy")]
            self._sets.append(sets)
            self._ways.append(ways)
            self._caps.append(usable)
            self._pol.append(policy)
            if flat:
                self._state.append(_FlatLevelState(sets, ways, policy))
            elif policy == _DRRIP:
                self._state.append(DrripLevelState(sets, ways, usable))
            else:
                self._state.append({})  # set index -> kernel state
        self.prefetcher = (
            StreamPrefetcher(
                config.prefetch_streams,
                config.prefetch_degree,
                config.prefetch_threshold,
            )
            if config.prefetch
            else None
        )
        # Slot window per access: demand + two victim slots, plus a fill
        # and victim slot per potential prefetch.
        self._stride = (
            _SEQ_STRIDE
            if self.prefetcher is None
            else _SEQ_STRIDE + 2 * config.prefetch_degree
        )
        self.hits = [0, 0, 0]
        self.misses = [0, 0, 0]
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0

    @staticmethod
    def reject_reason(config: HierarchyConfig):
        """Why the batched decomposition cannot express ``config``, or
        ``None`` when it can. The runner forwards this reason in its
        ``scalar_fallback`` telemetry event."""
        for name in ("l1", "l2", "llc"):
            policy = getattr(config, f"{name}_policy")
            if policy not in _POLICY_CODES:
                return f"unknown {name} replacement policy {policy!r}"
        return None

    @classmethod
    def supports(cls, config: HierarchyConfig) -> bool:
        """True when the batched decomposition is exact for ``config``."""
        return cls.reject_reason(config) is None

    # ------------------------------------------------------------------ #
    # Level replay
    # ------------------------------------------------------------------ #

    def _set_index(self, level, line):
        sets = self._sets[level]
        if sets & (sets - 1) == 0:  # power-of-two set count: bitmask index
            return line & (sets - 1)
        return line % sets

    def _replay_level(self, level, seq, line, kind):
        """Replay one level's merged event stream.

        ``kind`` holds the per-event kind codes (see
        :mod:`repro.cache.kernels.setreplay`). Returns ``(hit, evict_seq,
        evict_line)``: per-event hit flags and the level's dirty evictions
        tagged with their sequence keys (an eviction fires one sequence
        slot after its cause).
        """
        count = line.size
        empty_seq = np.empty(0, dtype=np.int64)
        if not count:
            return np.empty(0, dtype=bool), empty_seq, []
        if self._flat:
            return self._replay_level_flat(level, seq, line, kind)
        policy = self._pol[level]
        if policy == _DRRIP:
            return self._replay_level_drrip(level, seq, line, kind)
        return self._replay_level_sets(level, seq, line, kind)

    def _replay_level_flat(self, level, seq, line, kind):
        """One flat-kernel call over the whole level (``numba`` tier)."""
        count = line.size
        state = self._state[level]
        set_idx = np.ascontiguousarray(
            self._set_index(level, line), dtype=np.int64
        )
        kind = np.ascontiguousarray(kind, dtype=np.uint8)
        hit = np.zeros(count, dtype=np.uint8)
        evict_mask = np.zeros(count, dtype=np.uint8)
        evict_line = np.zeros(count, dtype=np.int64)
        ways = self._ways[level]
        usable = self._caps[level]
        policy = self._pol[level]
        if policy == _LRU:
            kernel = (
                cnative.lru_level_replay if self._native else lru_level_replay
            )
            kernel(
                line, kind, set_idx, ways, usable,
                state.way_line, state.dirty, state.stamp, state.occ,
                state.clock, hit, evict_mask, evict_line,
            )
        elif policy == _PLRU:
            kernel = (
                cnative.plru_level_replay
                if self._native
                else plru_level_replay
            )
            kernel(
                line, kind, set_idx, ways, usable,
                state.way_line, state.dirty, state.mru, state.mru_cnt,
                state.occ, hit, evict_mask, evict_line,
            )
        else:
            kernel = (
                cnative.drrip_level_replay_flat
                if self._native
                else drrip_level_replay_flat
            )
            kernel(
                line, kind, set_idx, ways, usable,
                state.way_line, state.dirty, state.rrpv, state.role,
                state.occ, state.duel, hit, evict_mask, evict_line,
            )
        fired = evict_mask.view(bool)
        return hit.view(bool), seq[fired] + 1, evict_line[fired]

    def _replay_level_drrip(self, level, seq, line, kind):
        """PSEL-threaded whole-level scan (``numpy`` tier, DRRIP levels)."""
        count = line.size
        set_idx = self._set_index(level, line)
        evict_pos, evict_line = [], []
        miss_pos = drrip_level_replay(
            self._state[level],
            np.ascontiguousarray(set_idx).tolist(),
            line.tolist(),
            np.ascontiguousarray(kind, dtype=np.uint8).tolist(),
            evict_pos,
            evict_line,
        )
        hit = np.ones(count, dtype=bool)
        if miss_pos:
            hit[miss_pos] = False
        evict_seq = (
            seq[evict_pos] + 1
            if evict_pos
            else np.empty(0, dtype=np.int64)
        )
        return hit, evict_seq, evict_line

    def _replay_level_sets(self, level, seq, line, kind):
        """Per-set partitioned replay (``numpy`` tier, LRU/PLRU levels)."""
        count = line.size
        hit = np.empty(count, dtype=bool)
        empty_seq = np.empty(0, dtype=np.int64)
        sets = self._sets[level]
        cap = self._caps[level]
        policy = self._pol[level]
        kernel = lru_set_replay if policy == _LRU else plru_set_replay
        states = self._state[level]
        set_idx = self._set_index(level, line)
        # stable per-set grouping: set counts are small, so a narrow-dtype
        # stable argsort hits numpy's radix path — ~3x faster than a
        # comparison sort of packed (set, position) keys
        if sets <= 1 << 16:
            narrow = np.uint8 if sets <= 1 << 8 else np.uint16
            set_idx = set_idx.astype(narrow)
            order = np.argsort(set_idx, kind="stable")
        else:  # huge set counts: generic value sort on packed keys
            shift = int(count).bit_length()
            key = (set_idx.astype(np.int64) << shift) | np.arange(
                count, dtype=np.int64
            )
            key.sort()
            order = key & ((1 << shift) - 1)
        counts = np.bincount(set_idx, minlength=sets)
        starts = np.cumsum(counts[:-1])
        kind = np.ascontiguousarray(kind, dtype=np.uint8)
        evict_seq_parts, evict_line = [], []
        for set_id, group in enumerate(np.split(order, starts)):
            if not group.size:
                continue
            state = states.get(set_id)
            if state is None:
                if policy == _LRU:
                    state = OrderedDict()
                else:
                    state = [{}, [None] * cap, 0, 0, 0, 0]
                states[set_id] = state
            evict_pos = []
            miss_pos = kernel(
                state,
                cap,
                line[group].tolist(),
                kind[group].tolist(),
                evict_pos,
                evict_line,
            )
            group_hit = np.ones(group.size, dtype=bool)
            if miss_pos:
                group_hit[miss_pos] = False
            hit[group] = group_hit
            if evict_pos:
                # an eviction fires one sequence slot after its cause
                evict_seq_parts.append(seq[group[evict_pos]] + 1)
        evict_seq = (
            np.concatenate(evict_seq_parts) if evict_seq_parts else empty_seq
        )
        return hit, evict_seq, evict_line

    # ------------------------------------------------------------------ #
    # Stream merging
    # ------------------------------------------------------------------ #

    @staticmethod
    def _sorted_evictions(evict_seq, evict_line):
        """Sort an eviction stream by sequence key.

        Eviction seq keys are unique (each cause is a distinct event), so
        pack (seq, index) into one int64 and value-sort — cheaper than
        argsort's indirection. Flat-tier streams arrive already sorted and
        pass through the cheap ``key.sort()`` unchanged.
        """
        ev_seq = np.asarray(evict_seq, dtype=np.int64)
        ev_line = np.asarray(evict_line, dtype=np.int64)
        if not ev_seq.size:
            return ev_seq, ev_line
        shift = int(ev_seq.size).bit_length()
        if int(ev_seq.max()) < 1 << (62 - shift):
            key = (ev_seq << shift) | np.arange(ev_seq.size, dtype=np.int64)
            key.sort()
            ev_order = key & ((1 << shift) - 1)
            ev_seq = key >> shift
        else:  # pathological seq range: keep the exact slow path
            ev_order = np.argsort(ev_seq, kind="stable")
            ev_seq = ev_seq[ev_order]
        return ev_seq, ev_line[ev_order]

    @staticmethod
    def _merge_sorted(seq_a, line_a, kind_a, seq_b, line_b, kind_b):
        """Merge two seq-sorted event streams into one.

        Sequence keys are unique across streams (the per-access slot
        discipline guarantees it), so two ``searchsorted`` calls place
        both sides without tie-breaking. ``kind_a``/``kind_b`` may be
        scalars or per-event arrays.
        """
        na, nb = seq_a.size, seq_b.size
        if not nb:
            kind = np.broadcast_to(
                np.asarray(kind_a, dtype=np.uint8), (na,)
            ).copy() if np.isscalar(kind_a) else kind_a
            return seq_a, line_a, kind
        seq = np.empty(na + nb, dtype=np.int64)
        line = np.empty(na + nb, dtype=np.int64)
        kind = np.empty(na + nb, dtype=np.uint8)
        apos = np.searchsorted(seq_b, seq_a) + np.arange(na, dtype=np.int64)
        bpos = np.searchsorted(seq_a, seq_b) + np.arange(nb, dtype=np.int64)
        seq[apos] = seq_a
        line[apos] = line_a
        kind[apos] = kind_a
        seq[bpos] = seq_b
        line[bpos] = line_b
        kind[bpos] = kind_b
        return seq, line, kind

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #

    def simulate(self, lines, writes=None):
        """Simulate a whole trace; returns the per-access servicing levels.

        ``lines`` is an int array of line numbers; ``writes`` a parallel
        boolean array (or a single bool / None applied to every access).
        The returned int8 array holds 1 (L1) .. 4 (DRAM) per access, and
        the hit/miss/DRAM counters are updated, mirroring what repeated
        :meth:`FastHierarchy.access` calls would produce.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = lines.size
        if writes is None or isinstance(writes, bool):
            writes = np.full(n, bool(writes))
        else:
            writes = np.ascontiguousarray(writes, dtype=bool)
        served = np.full(n, 1, dtype=np.int8)
        if not n:
            return served
        stride = self._stride

        # L1: every access, in order; a demand write dirties the line.
        seq = np.arange(n, dtype=np.int64) * stride
        l1_hit, ev_seq, ev_line = self._replay_level(
            0, seq, lines, writes.view(np.uint8)
        )
        l1_miss = np.flatnonzero(~l1_hit)
        self.hits[0] += int(l1_hit.sum())
        self.misses[0] += int(l1_miss.size)
        served[l1_miss] = 2
        miss_seq = seq[l1_miss]
        miss_lines = lines[l1_miss]

        # L2: demand lookups for L1 misses, merged with L1 dirty evictions
        # (a dirty victim cascading down fills dirty; demand fills are
        # clean) and with the prefetcher's issued fills.
        seq2, line2, kind2 = self._merge_sorted(
            miss_seq, miss_lines, 0,
            *self._sorted_evictions(ev_seq, ev_line), KIND_WRITE,
        )
        if self.prefetcher is not None and miss_seq.size:
            scan = cnative.prefetch_scan_native if self._native else prefetch_scan
            pf_seq, pf_line = scan(self.prefetcher, miss_seq, miss_lines)
            if pf_seq.size:
                seq2, line2, kind2 = self._merge_sorted(
                    seq2, line2, kind2, pf_seq, pf_line, 2
                )
        l2_hit, ev_seq, ev_line = self._replay_level(1, seq2, line2, kind2)
        demand2 = kind2 == 0
        l2_miss = demand2 & ~l2_hit
        self.hits[1] += int((demand2 & l2_hit).sum())
        self.misses[1] += int(l2_miss.sum())
        served[seq2[l2_miss] // stride] = 3
        pf_fired = (kind2 == 2) & ~l2_hit

        # LLC: demand lookups for L2 misses, merged with L2 dirty
        # evictions and residency probes for the prefetch fills that fired
        # (a probe shares its fill's sequence slot; the fill's own victim
        # lands one slot later, preserving the scalar engine's ordering).
        seq3, line3, kind3 = self._merge_sorted(
            seq2[l2_miss], line2[l2_miss], 0,
            *self._sorted_evictions(ev_seq, ev_line), KIND_WRITE,
        )
        if pf_fired.any():
            seq3, line3, kind3 = self._merge_sorted(
                seq3, line3, kind3,
                seq2[pf_fired], line2[pf_fired], KIND_PROBE,
            )
        llc_hit, _dram_seq, dram_line = self._replay_level(
            2, seq3, line3, kind3
        )
        demand3 = kind3 == 0
        llc_miss = demand3 & ~llc_hit
        self.hits[2] += int((demand3 & llc_hit).sum())
        misses3 = int(llc_miss.sum())
        self.misses[2] += misses3
        self.dram_reads += misses3
        probes = kind3 == KIND_PROBE
        if probes.any():
            self.dram_prefetch_reads += int((probes & ~llc_hit).sum())
        self.dram_writes += len(dram_line)
        served[seq3[llc_miss] // stride] = 4
        return served

    def run_trace(self, lines, writes=None):
        """Simulate a whole trace; returns :class:`ServiceCounts`."""
        counts = np.bincount(self.simulate(lines, writes), minlength=5)
        return ServiceCounts(
            int(counts[1]), int(counts[2]), int(counts[3]), int(counts[4])
        )

    def simulate_stream(self, chunks):
        """Replay an iterable of ``(lines, writes)`` chunks lazily.

        Yields the per-chunk served-level array from :meth:`simulate`.
        Replacement state persists across calls, so consuming the generator
        is bit-identical to one :meth:`simulate` over the concatenated
        trace while holding only a chunk in memory at a time.
        """
        for lines, writes in chunks:
            yield self.simulate(lines, writes)

    # ------------------------------------------------------------------ #
    # Maintenance (FastHierarchy API parity)
    # ------------------------------------------------------------------ #

    def contains(self, level, line):
        """True when ``line`` is resident at ``level`` (0-indexed)."""
        line = int(line)
        state = self._state[level]
        if self._flat:
            base = self._set_index(level, line) * self._ways[level]
            way_line = state.way_line
            return any(
                way_line[base + w] == line
                for w in range(self._caps[level])
            )
        if self._pol[level] == _DRRIP:
            return line in state.table
        set_state = state.get(self._set_index(level, line))
        if set_state is None:
            return False
        resident = set_state if self._pol[level] == _LRU else set_state[0]
        return line in resident

    def reset_stats(self):
        """Zero hit/miss and DRAM counters (contents unchanged)."""
        self.hits = [0, 0, 0]
        self.misses = [0, 0, 0]
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0
        if self.prefetcher is not None:
            self.prefetcher.reset()

    def write_through_dram(self, num_lines):
        """Account non-temporal full-line writes (bypass the caches)."""
        self.dram_writes += num_lines

    def read_through_dram(self, num_lines):
        """Account streaming reads served straight from DRAM."""
        self.dram_reads += num_lines
