"""Cache hierarchy simulator (the Pin-based simulator analog)."""

from repro.cache.address import AddressSpace, Region
from repro.cache.batchsim import BatchHierarchy
from repro.cache.cache import Cache, Eviction
from repro.cache.coherence import (
    AccessOutcome,
    CoherenceStats,
    DirectoryMESI,
)
from repro.cache.config import HierarchyConfig
from repro.cache.fastsim import FastHierarchy
from repro.cache.hierarchy import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    LEVEL_NAMES,
    CacheHierarchy,
)
from repro.cache.mrc import miss_ratio_curve, working_set_lines
from repro.cache.prefetcher import StreamPrefetcher
from repro.cache.replacement import DRRIP, LRU, BitPLRU, make_policy
from repro.cache.stats import MemoryTraffic, ServiceCounts

__all__ = [
    "AccessOutcome",
    "AddressSpace",
    "BatchHierarchy",
    "BitPLRU",
    "Cache",
    "CoherenceStats",
    "CacheHierarchy",
    "DRRIP",
    "DirectoryMESI",
    "Eviction",
    "FastHierarchy",
    "HierarchyConfig",
    "LEVEL_DRAM",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_LLC",
    "LEVEL_NAMES",
    "LRU",
    "MemoryTraffic",
    "Region",
    "ServiceCounts",
    "StreamPrefetcher",
    "make_policy",
    "miss_ratio_curve",
    "working_set_lines",
]
