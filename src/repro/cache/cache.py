"""A single set-associative, write-back cache level.

The unit of storage is the *line number* (byte address / line size); tags
are full line numbers for simplicity. Way-based partitioning ("reserved
ways") models Intel-CAT-style static partitioning used by COBRA to pin
C-Buffers: regular data is confined to the unreserved ways.
"""

from __future__ import annotations

from repro._util import check_positive
from repro.cache.replacement import BitPLRU, make_policy

__all__ = ["Cache", "Eviction"]


class Eviction:
    """A line displaced by a fill. ``dirty`` lines must be written back."""

    __slots__ = ("line", "dirty")

    def __init__(self, line, dirty):
        self.line = line
        self.dirty = dirty

    def __repr__(self):
        return f"Eviction(line={self.line}, dirty={self.dirty})"


class Cache:
    """One level of a cache hierarchy.

    Parameters
    ----------
    name:
        Label used in statistics ("L1", "L2", "LLC").
    size_bytes, num_ways, line_bytes:
        Geometry; ``size_bytes`` must be divisible by ``num_ways *
        line_bytes``.
    policy:
        Replacement policy name: ``"plru"`` (Bit-PLRU), ``"drrip"``, or
        ``"lru"``.
    """

    def __init__(self, name, size_bytes, num_ways, line_bytes=64, policy="plru"):
        check_positive("size_bytes", size_bytes)
        check_positive("num_ways", num_ways)
        check_positive("line_bytes", line_bytes)
        if size_bytes % (num_ways * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"ways*line ({num_ways} * {line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.num_ways = num_ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (num_ways * line_bytes)
        self.policy_name = policy
        self.policy = make_policy(policy, self.num_sets, num_ways)
        self._usable_ways = num_ways
        self._tag_to_way = [dict() for _ in range(self.num_sets)]
        self._way_line = [None] * (self.num_sets * num_ways)
        self._dirty = bytearray(self.num_sets * num_ways)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Partitioning
    # ------------------------------------------------------------------ #

    @property
    def usable_ways(self):
        """Ways available to regular data (ways beyond this are reserved)."""
        return self._usable_ways

    @property
    def reserved_ways(self):
        """Ways reserved (pinned) and unavailable to regular data."""
        return self.num_ways - self._usable_ways

    def reserve_ways(self, count):
        """Reserve the top ``count`` ways, evicting any lines living there.

        Returns the list of :class:`Eviction` for displaced lines so the
        caller can account for writebacks. Passing ``count=0`` releases all
        reservations.
        """
        if count < 0 or count >= self.num_ways:
            raise ValueError(
                f"can reserve between 0 and {self.num_ways - 1} ways, "
                f"got {count}"
            )
        evictions = []
        new_usable = self.num_ways - count
        if new_usable < self._usable_ways:
            for set_idx in range(self.num_sets):
                base = set_idx * self.num_ways
                mapping = self._tag_to_way[set_idx]
                for way in range(new_usable, self._usable_ways):
                    line = self._way_line[base + way]
                    if line is not None:
                        evictions.append(
                            Eviction(line, bool(self._dirty[base + way]))
                        )
                        del mapping[line]
                        self._way_line[base + way] = None
                        self._dirty[base + way] = 0
        self._usable_ways = new_usable
        return evictions

    # ------------------------------------------------------------------ #
    # Accesses
    # ------------------------------------------------------------------ #

    def set_index(self, line):
        """Set that ``line`` maps to."""
        return line % self.num_sets

    def probe(self, line, is_write=False):
        """Look up ``line``; on a hit, update replacement state and dirtiness.

        Returns True on hit. Statistics are updated.
        """
        set_idx = line % self.num_sets
        way = self._tag_to_way[set_idx].get(line)
        if way is None:
            self.misses += 1
            return False
        self.hits += 1
        policy = self.policy
        if isinstance(policy, BitPLRU):
            policy.on_hit_range(set_idx, way, 0, self._usable_ways)
        else:
            policy.on_hit(set_idx, way)
        if is_write:
            self._dirty[set_idx * self.num_ways + way] = 1
        return True

    def contains(self, line):
        """True when ``line`` is resident (no state/statistics change)."""
        return line in self._tag_to_way[line % self.num_sets]

    def fill(self, line, dirty=False):
        """Insert ``line``; return the displaced :class:`Eviction` or None.

        Filling a resident line refreshes its replacement state and ORs in
        ``dirty`` (this is the writeback-hit case).
        """
        set_idx = line % self.num_sets
        mapping = self._tag_to_way[set_idx]
        num_ways = self.num_ways
        base = set_idx * num_ways
        existing = mapping.get(line)
        policy = self.policy
        if existing is not None:
            if dirty:
                self._dirty[base + existing] = 1
            if isinstance(policy, BitPLRU):
                policy.on_hit_range(set_idx, existing, 0, self._usable_ways)
            else:
                policy.on_hit(set_idx, existing)
            return None
        evicted = None
        way = None
        way_line = self._way_line
        for w in range(self._usable_ways):  # prefer an empty way
            if way_line[base + w] is None:
                way = w
                break
        if way is None:
            way = policy.victim(set_idx, 0, self._usable_ways)
            old_line = way_line[base + way]
            evicted = Eviction(old_line, bool(self._dirty[base + way]))
            del mapping[old_line]
        mapping[line] = way
        way_line[base + way] = line
        self._dirty[base + way] = 1 if dirty else 0
        if isinstance(policy, BitPLRU):
            policy.on_fill_range(set_idx, way, 0, self._usable_ways)
        else:
            policy.on_fill(set_idx, way)
        return evicted

    def invalidate(self, line):
        """Drop ``line`` if resident; return its :class:`Eviction` or None."""
        set_idx = line % self.num_sets
        mapping = self._tag_to_way[set_idx]
        way = mapping.pop(line, None)
        if way is None:
            return None
        base = set_idx * self.num_ways
        evicted = Eviction(line, bool(self._dirty[base + way]))
        self._way_line[base + way] = None
        self._dirty[base + way] = 0
        return evicted

    def flush(self):
        """Drop every resident line, returning evictions for dirty ones."""
        evictions = []
        for set_idx in range(self.num_sets):
            base = set_idx * self.num_ways
            for line, way in list(self._tag_to_way[set_idx].items()):
                if self._dirty[base + way]:
                    evictions.append(Eviction(line, True))
                self._way_line[base + way] = None
                self._dirty[base + way] = 0
            self._tag_to_way[set_idx].clear()
        return evictions

    def resident_lines(self):
        """All resident line numbers (tests/diagnostics)."""
        lines = []
        for mapping in self._tag_to_way:
            lines.extend(mapping.keys())
        return sorted(lines)

    def reset_stats(self):
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self):
        """Total probes since the last stats reset."""
        return self.hits + self.misses

    def __repr__(self):
        return (
            f"Cache({self.name}, {self.size_bytes}B, {self.num_ways}-way, "
            f"{self.num_sets} sets, policy={self.policy_name})"
        )
