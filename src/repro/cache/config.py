"""Hierarchy configuration shared by the reference and fast simulators."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._util import check_positive

__all__ = ["HierarchyConfig"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and policies of the simulated three-level hierarchy.

    Defaults are the scaled Table II machine (DESIGN.md Section 5): sizes
    are 16x smaller than the paper's so that scaled-down inputs preserve
    the paper's working-set-to-cache ratios.
    """

    l1_bytes: int = 2 * 1024
    l1_ways: int = 8
    l1_policy: str = "plru"
    l2_bytes: int = 16 * 1024
    l2_ways: int = 8
    l2_policy: str = "plru"
    llc_bytes: int = 128 * 1024
    llc_ways: int = 16
    llc_policy: str = "drrip"
    line_bytes: int = 64
    prefetch: bool = True
    prefetch_streams: int = 16
    prefetch_degree: int = 4
    prefetch_threshold: int = 2
    l1_reserved_ways: int = 0
    l2_reserved_ways: int = 0
    llc_reserved_ways: int = 0

    def __post_init__(self):
        for name in ("l1_bytes", "l1_ways", "l2_bytes", "l2_ways",
                     "llc_bytes", "llc_ways", "line_bytes"):
            check_positive(name, getattr(self, name))
        for level, size, ways, reserved in [
            ("l1", self.l1_bytes, self.l1_ways, self.l1_reserved_ways),
            ("l2", self.l2_bytes, self.l2_ways, self.l2_reserved_ways),
            ("llc", self.llc_bytes, self.llc_ways, self.llc_reserved_ways),
        ]:
            if size % (ways * self.line_bytes):
                raise ValueError(f"{level} size not divisible by ways*line")
            if not 0 <= reserved < ways:
                raise ValueError(
                    f"{level} reserved ways must lie in [0, {ways})"
                )

    def sets(self, level):
        """Number of sets at ``level`` ('l1', 'l2', or 'llc')."""
        size = getattr(self, f"{level}_bytes")
        ways = getattr(self, f"{level}_ways")
        return size // (ways * self.line_bytes)

    def lines(self, level):
        """Line capacity of ``level``."""
        return getattr(self, f"{level}_bytes") // self.line_bytes

    def with_reserved(self, l1=None, l2=None, llc=None):
        """Copy with the given reserved-way counts."""
        return replace(
            self,
            l1_reserved_ways=self.l1_reserved_ways if l1 is None else l1,
            l2_reserved_ways=self.l2_reserved_ways if l2 is None else l2,
            llc_reserved_ways=self.llc_reserved_ways if llc is None else llc,
        )

    def build_reference(self):
        """Construct the reference :class:`~repro.cache.CacheHierarchy`."""
        from repro.cache.cache import Cache
        from repro.cache.hierarchy import CacheHierarchy
        from repro.cache.prefetcher import StreamPrefetcher

        l1 = Cache("L1", self.l1_bytes, self.l1_ways, self.line_bytes, self.l1_policy)
        l2 = Cache("L2", self.l2_bytes, self.l2_ways, self.line_bytes, self.l2_policy)
        llc = Cache(
            "LLC", self.llc_bytes, self.llc_ways, self.line_bytes, self.llc_policy
        )
        prefetcher = (
            StreamPrefetcher(
                self.prefetch_streams, self.prefetch_degree, self.prefetch_threshold
            )
            if self.prefetch
            else None
        )
        hierarchy = CacheHierarchy(l1, l2, llc, prefetcher=prefetcher)
        hierarchy.reserve_ways(
            self.l1_reserved_ways, self.l2_reserved_ways, self.llc_reserved_ways
        )
        return hierarchy
