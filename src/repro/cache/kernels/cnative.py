"""Native C replay kernels built with the system compiler (``cnative``).

Environments without numba usually still have a C toolchain, so the flat
kernels of :mod:`repro.cache.kernels.njit_kernels` are mirrored here as a
single C translation unit, compiled once with ``cc -O2 -shared`` into a
content-addressed shared object (keyed by the SHA-256 of the source, so a
kernel change rebuilds and an unchanged source reuses the cached build),
and bound through :mod:`ctypes`. No third-party packages, no setuptools —
just the compiler.

Semantics are line-for-line the flat Python/numba kernels' (same state
layout, same scan order); the equivalence suite replays identical traces
through all tiers and asserts bit-identical counters
(``tests/cache/test_kernel_backends.py``). :func:`available` gates the
tier: no compiler, a failed build, or an unloadable object all report
``False`` and selection falls back to the ``numpy`` tier.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "available",
    "build_error",
    "load",
    "lru_level_replay",
    "plru_level_replay",
    "drrip_level_replay_flat",
    "prefetch_scan_native",
    "eviction_pipeline_native",
]

#: Scalar twin the C kernels are equivalence-tested against (the
#: ``backend-pairing`` lint rule cross-checks that such a test exists).
SCALAR_ORACLE = "FastHierarchy"

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Event kinds (mirror repro.cache.kernels.setreplay):
   0 demand read, 1 demand write / dirty-victim fill,
   2 prefetch fill (no-op when resident), 3 LLC residency probe. */

void lru_level_replay(
    int64_t n, const int64_t *ev_line, const uint8_t *ev_kind,
    const int64_t *ev_set, int64_t ways, int64_t usable,
    int64_t *way_line, uint8_t *dirty, int64_t *stamp, int64_t *occ,
    int64_t *clock, uint8_t *hit_out, uint8_t *evict_mask,
    int64_t *evict_line_out)
{
    int64_t tick = clock[0];
    for (int64_t pos = 0; pos < n; pos++) {
        int64_t line = ev_line[pos];
        uint8_t kind = ev_kind[pos];
        int64_t sidx = ev_set[pos];
        int64_t base = sidx * ways;
        int64_t way = -1;
        for (int64_t w = 0; w < usable; w++) {
            if (way_line[base + w] == line) { way = w; break; }
        }
        if (way >= 0) {
            hit_out[pos] = 1;
            if (kind < 2) {
                stamp[base + way] = ++tick;
                if (kind == 1) dirty[base + way] = 1;
            }
            continue;
        }
        hit_out[pos] = 0;
        if (kind == 3) continue;
        if (occ[sidx] < usable) {
            way = 0;
            for (int64_t w = 0; w < usable; w++) {
                if (way_line[base + w] == -1) { way = w; break; }
            }
            occ[sidx] += 1;
        } else {
            way = 0;
            int64_t best = stamp[base];
            for (int64_t w = 1; w < usable; w++) {
                if (stamp[base + w] < best) { way = w; best = stamp[base + w]; }
            }
            if (dirty[base + way]) {
                evict_mask[pos] = 1;
                evict_line_out[pos] = way_line[base + way];
            }
        }
        way_line[base + way] = line;
        dirty[base + way] = (kind == 1) ? 1 : 0;
        stamp[base + way] = ++tick;
    }
    clock[0] = tick;
}

static inline void plru_touch(
    uint8_t *mru, int64_t *mru_cnt, int64_t base, int64_t sidx,
    int64_t way, int64_t usable)
{
    if (mru[base + way] == 0) {
        int64_t count = mru_cnt[sidx] + 1;
        if (count >= usable) {
            for (int64_t w = 0; w < usable; w++) mru[base + w] = 0;
            mru[base + way] = 1;
            mru_cnt[sidx] = 1;
        } else {
            mru[base + way] = 1;
            mru_cnt[sidx] = count;
        }
    }
}

void plru_level_replay(
    int64_t n, const int64_t *ev_line, const uint8_t *ev_kind,
    const int64_t *ev_set, int64_t ways, int64_t usable,
    int64_t *way_line, uint8_t *dirty, uint8_t *mru, int64_t *mru_cnt,
    int64_t *occ, uint8_t *hit_out, uint8_t *evict_mask,
    int64_t *evict_line_out)
{
    for (int64_t pos = 0; pos < n; pos++) {
        int64_t line = ev_line[pos];
        uint8_t kind = ev_kind[pos];
        int64_t sidx = ev_set[pos];
        int64_t base = sidx * ways;
        int64_t way = -1;
        for (int64_t w = 0; w < usable; w++) {
            if (way_line[base + w] == line) { way = w; break; }
        }
        if (way >= 0) {
            hit_out[pos] = 1;
            if (kind < 2) {
                plru_touch(mru, mru_cnt, base, sidx, way, usable);
                if (kind == 1) dirty[base + way] = 1;
            }
            continue;
        }
        hit_out[pos] = 0;
        if (kind == 3) continue;
        if (occ[sidx] < usable) {
            way = 0;
            for (int64_t w = 0; w < usable; w++) {
                if (way_line[base + w] == -1) { way = w; break; }
            }
            occ[sidx] += 1;
        } else {
            way = 0;
            for (int64_t w = 0; w < usable; w++) {
                if (mru[base + w] == 0) { way = w; break; }
            }
            if (dirty[base + way]) {
                evict_mask[pos] = 1;
                evict_line_out[pos] = way_line[base + way];
            }
        }
        way_line[base + way] = line;
        dirty[base + way] = (kind == 1) ? 1 : 0;
        plru_touch(mru, mru_cnt, base, sidx, way, usable);
    }
}

void drrip_level_replay_flat(
    int64_t n, const int64_t *ev_line, const uint8_t *ev_kind,
    const int64_t *ev_set, int64_t ways, int64_t usable,
    int64_t *way_line, uint8_t *dirty, uint8_t *rrpv, const uint8_t *role,
    int64_t *occ, int64_t *duel, uint8_t *hit_out, uint8_t *evict_mask,
    int64_t *evict_line_out)
{
    int64_t psel = duel[0];
    int64_t brrip_tick = duel[1];
    for (int64_t pos = 0; pos < n; pos++) {
        int64_t line = ev_line[pos];
        uint8_t kind = ev_kind[pos];
        int64_t sidx = ev_set[pos];
        int64_t base = sidx * ways;
        int64_t way = -1;
        for (int64_t w = 0; w < usable; w++) {
            if (way_line[base + w] == line) { way = w; break; }
        }
        if (way >= 0) {
            hit_out[pos] = 1;
            if (kind < 2) {
                rrpv[base + way] = 0;
                if (kind == 1) dirty[base + way] = 1;
            }
            continue;
        }
        hit_out[pos] = 0;
        if (kind == 3) continue;
        if (occ[sidx] < usable) {
            way = 0;
            for (int64_t w = 0; w < usable; w++) {
                if (way_line[base + w] == -1) { way = w; break; }
            }
            occ[sidx] += 1;
        } else {
            way = -1;
            while (way < 0) {
                for (int64_t w = 0; w < usable; w++) {
                    if (rrpv[base + w] >= 3) { way = w; break; }
                }
                if (way < 0) {
                    for (int64_t w = 0; w < usable; w++) rrpv[base + w] += 1;
                }
            }
            if (dirty[base + way]) {
                evict_mask[pos] = 1;
                evict_line_out[pos] = way_line[base + way];
            }
        }
        way_line[base + way] = line;
        dirty[base + way] = (kind == 1) ? 1 : 0;
        uint8_t set_role = role[sidx];
        if (set_role == 1) {            /* SRRIP leader */
            if (psel < 1023) psel += 1;
        } else if (set_role == 2) {     /* BRRIP leader */
            if (psel > 0) psel -= 1;
        }
        if (set_role == 2 || (set_role == 0 && psel < 512)) {
            brrip_tick += 1;
            rrpv[base + way] = (brrip_tick % 32 == 0) ? 2 : 3;
        } else {
            rrpv[base + way] = 2;
        }
    }
    duel[0] = psel;
    duel[1] = brrip_tick;
}

/* Stream-prefetcher scan over the L1-miss stream. The stream table is the
   dict of repro.cache.prefetcher.StreamPrefetcher flattened to parallel
   arrays: keys (next expected line, -1 = free slot), confidence, and an
   insertion stamp replicating dict order (upserts keep the stamp, new
   streams take ++tick, eviction drops the minimum = dict-first).
   meta = [active_count, tick]. Returns the number of issued events. */
int64_t prefetch_scan_native(
    int64_t n, const int64_t *miss_seq, const int64_t *miss_line,
    int64_t num_streams, int64_t degree, int64_t threshold,
    int64_t *keys, int64_t *conf, int64_t *stamps, int64_t *meta,
    int64_t *pf_seq_out, int64_t *pf_line_out)
{
    int64_t capacity = num_streams + 1;  /* one overflow slot pre-evict */
    int64_t active = meta[0];
    int64_t tick = meta[1];
    int64_t out = 0;
    for (int64_t pos = 0; pos < n; pos++) {
        int64_t line = miss_line[pos];
        int64_t found = -1;
        for (int64_t s = 0; s < capacity; s++) {
            if (keys[s] == line) { found = s; break; }
        }
        if (found >= 0) {
            /* extend: pop, then upsert line+1 (keep an existing slot's
               stamp; otherwise reuse the popped slot with a fresh one) */
            int64_t confidence = conf[found] + 1;
            keys[found] = -1;
            active -= 1;
            int64_t dest = -1;
            for (int64_t s = 0; s < capacity; s++) {
                if (keys[s] == line + 1) { dest = s; break; }
            }
            if (dest >= 0) {
                conf[dest] = confidence;
            } else {
                keys[found] = line + 1;
                conf[found] = confidence;
                stamps[found] = ++tick;
                active += 1;
            }
            if (confidence >= threshold) {
                int64_t slot = miss_seq[pos] + 3;
                for (int64_t offset = 1; offset <= degree; offset++) {
                    pf_seq_out[out] = slot;
                    pf_line_out[out] = line + offset;
                    out += 1;
                    slot += 2;
                }
            }
            continue;
        }
        /* allocate: upsert line+1 at confidence 0, then evict the oldest
           stream if over capacity */
        int64_t dest = -1;
        for (int64_t s = 0; s < capacity; s++) {
            if (keys[s] == line + 1) { dest = s; break; }
        }
        if (dest >= 0) {
            conf[dest] = 0;
        } else {
            for (int64_t s = 0; s < capacity; s++) {
                if (keys[s] == -1) { dest = s; break; }
            }
            keys[dest] = line + 1;
            conf[dest] = 0;
            stamps[dest] = ++tick;
            active += 1;
            if (active > num_streams) {
                int64_t victim = -1;
                int64_t best = 0;
                for (int64_t s = 0; s < capacity; s++) {
                    if (keys[s] != -1 && (victim < 0 || stamps[s] < best)) {
                        victim = s;
                        best = stamps[s];
                    }
                }
                keys[victim] = -1;
                active -= 1;
            }
        }
    }
    meta[0] = active;
    meta[1] = tick;
    return out;
}

/* Eviction-pipeline DES (repro.des.fastloop) as one C call. Replays the
   exact schedule of repro.des.engine.Simulator: four processes (core,
   two binning engines, memory writer), three SPSC FIFOs, events ordered
   by (time, seq) with one global sequence number per schedule call, a
   completed put scheduling the waiting getter before the putter, and
   queue max-occupancy growing only on append. Cache lines are fixed
   per_line-int64 rows copied by value between buffer stores, FIFO rings,
   and per-process incoming-value slots. */

enum { P_START = 0, P_AFTER_TIMEOUT = 1, P_AFTER_PUT = 2, P_AFTER_GET = 3 };

typedef struct {
    /* four-slot scheduler */
    double run_time[4];
    int64_t run_seq[4];
    int runnable[4];
    int state[4];
    int64_t seq;
    double now;
    /* three FIFOs (ring of lines + one optional waiting putter/getter) */
    int64_t caps[3];
    int64_t *ring[3];
    int64_t head[3];
    int64_t count[3];
    int64_t occ_max[3];
    int waiter_flag[3];
    int waiter_pid[3];
    int64_t *waiter_line[3];
    int get_waiter[3];
    int64_t *val[4];          /* incoming line per process */
    /* model state */
    const int64_t *trace;
    int64_t n, pos;
    int64_t r1, r2, r3, per_line;
    double core_dt, engine_dt, mem_dt;
    int64_t *counts1, *store1;
    int64_t *counts2, *store2;
    int64_t *counts3, *store3;
    int64_t ev[3];
    double stall;
    double core_put_start;
    int64_t eng_pos[2];
} Pipe;

static void pipe_schedule(Pipe *p, int pid, double delay)
{
    p->seq += 1;
    p->run_time[pid] = p->now + delay;
    p->run_seq[pid] = p->seq;
    p->runnable[pid] = 1;
}

static void pipe_complete_put(Pipe *p, int q, int pid, const int64_t *line)
{
    int getter = p->get_waiter[q];
    if (getter >= 0) {
        p->get_waiter[q] = -1;
        memcpy(p->val[getter], line, p->per_line * sizeof(int64_t));
        pipe_schedule(p, getter, 0.0);
    } else {
        int64_t slot = (p->head[q] + p->count[q]) % p->caps[q];
        memcpy(p->ring[q] + slot * p->per_line, line,
               p->per_line * sizeof(int64_t));
        p->count[q] += 1;
        if (p->count[q] > p->occ_max[q]) p->occ_max[q] = p->count[q];
    }
    pipe_schedule(p, pid, 0.0);
}

static void pipe_put(Pipe *p, int q, int pid, const int64_t *line)
{
    if (p->count[q] >= p->caps[q]) {
        memcpy(p->waiter_line[q], line, p->per_line * sizeof(int64_t));
        p->waiter_pid[q] = pid;
        p->waiter_flag[q] = 1;
    } else {
        pipe_complete_put(p, q, pid, line);
    }
}

static void pipe_get(Pipe *p, int q, int pid)
{
    if (p->count[q] > 0) {
        memcpy(p->val[pid], p->ring[q] + p->head[q] * p->per_line,
               p->per_line * sizeof(int64_t));
        p->head[q] = (p->head[q] + 1) % p->caps[q];
        p->count[q] -= 1;
        if (p->waiter_flag[q] && p->count[q] < p->caps[q]) {
            p->waiter_flag[q] = 0;
            pipe_complete_put(p, q, p->waiter_pid[q], p->waiter_line[q]);
        }
        pipe_schedule(p, pid, 0.0);
    } else {
        p->get_waiter[q] = pid;
    }
}

static void pipe_core_advance(Pipe *p)
{
    if (p->pos < p->n) {
        pipe_schedule(p, 0, p->core_dt);
        p->state[0] = P_AFTER_TIMEOUT;
    }
}

static void pipe_resume_core(Pipe *p)
{
    int st = p->state[0];
    if (st == P_AFTER_TIMEOUT) {
        int64_t idx = p->trace[p->pos++];
        int64_t b = idx / p->r1;
        int64_t c = p->counts1[b];
        p->store1[b * p->per_line + c] = idx;
        c += 1;
        if (c == p->per_line) {
            p->ev[0] += 1;
            p->counts1[b] = 0;
            p->core_put_start = p->now;
            p->state[0] = P_AFTER_PUT;
            pipe_put(p, 0, 0, p->store1 + b * p->per_line);
        } else {
            p->counts1[b] = c;
            pipe_core_advance(p);
        }
    } else if (st == P_AFTER_PUT) {
        p->stall += p->now - p->core_put_start;
        pipe_core_advance(p);
    } else {
        pipe_core_advance(p);
    }
}

static void pipe_resume_engine(Pipe *p, int pid)
{
    int eng = pid - 1;
    int st = p->state[pid];
    if (st == P_AFTER_GET) {
        p->eng_pos[eng] = 0;
        pipe_schedule(p, pid, p->engine_dt);
        p->state[pid] = P_AFTER_TIMEOUT;
        return;
    }
    if (st == P_AFTER_TIMEOUT) {
        int64_t idx = p->val[pid][p->eng_pos[eng]];
        p->eng_pos[eng] += 1;
        int64_t range = eng ? p->r3 : p->r2;
        int64_t *counts = eng ? p->counts3 : p->counts2;
        int64_t *store = eng ? p->store3 : p->store2;
        int64_t b = idx / range;
        int64_t c = counts[b];
        store[b * p->per_line + c] = idx;
        c += 1;
        if (c == p->per_line) {
            p->ev[1 + eng] += 1;
            counts[b] = 0;
            p->state[pid] = P_AFTER_PUT;
            pipe_put(p, eng + 1, pid, store + b * p->per_line);
            return;
        }
        counts[b] = c;
    }
    if (st != P_START && p->eng_pos[eng] < p->per_line) {
        pipe_schedule(p, pid, p->engine_dt);
        p->state[pid] = P_AFTER_TIMEOUT;
    } else {
        p->state[pid] = P_AFTER_GET;
        pipe_get(p, eng, pid);
    }
}

static void pipe_resume_mem(Pipe *p)
{
    if (p->state[3] == P_AFTER_GET) {
        pipe_schedule(p, 3, p->mem_dt);
        p->state[3] = P_AFTER_TIMEOUT;
    } else {
        p->state[3] = P_AFTER_GET;
        pipe_get(p, 2, 3);
    }
}

int64_t eviction_pipeline_replay(
    const int64_t *trace, int64_t n,
    int64_t r1, int64_t r2, int64_t r3, int64_t per_line,
    double core_dt, double engine_dt, double mem_dt,
    int64_t cap0, int64_t cap1, int64_t cap2,
    int64_t nb1, int64_t nb2, int64_t nb3,
    double *out_f, int64_t *out_i)
{
    Pipe pipe;
    Pipe *p = &pipe;
    memset(p, 0, sizeof(Pipe));
    int64_t buffers = nb1 + nb2 + nb3;
    int64_t rings = cap0 + cap1 + cap2;
    int64_t words = buffers * (1 + per_line) + (rings + 3 + 4) * per_line;
    int64_t *arena = (int64_t *)calloc((size_t)words, sizeof(int64_t));
    if (arena == NULL) return 1;
    int64_t *cursor = arena;
    p->counts1 = cursor; cursor += nb1;
    p->counts2 = cursor; cursor += nb2;
    p->counts3 = cursor; cursor += nb3;
    p->store1 = cursor; cursor += nb1 * per_line;
    p->store2 = cursor; cursor += nb2 * per_line;
    p->store3 = cursor; cursor += nb3 * per_line;
    p->caps[0] = cap0; p->caps[1] = cap1; p->caps[2] = cap2;
    for (int q = 0; q < 3; q++) {
        p->ring[q] = cursor; cursor += p->caps[q] * per_line;
        p->waiter_line[q] = cursor; cursor += per_line;
        p->get_waiter[q] = -1;
    }
    for (int pid = 0; pid < 4; pid++) {
        p->val[pid] = cursor; cursor += per_line;
        p->run_seq[pid] = pid + 1;   /* initial wakeups, registration order */
        p->runnable[pid] = 1;
        p->state[pid] = P_START;
    }
    p->seq = 4;
    p->trace = trace;
    p->n = n;
    p->r1 = r1; p->r2 = r2; p->r3 = r3;
    p->per_line = per_line;
    p->core_dt = core_dt; p->engine_dt = engine_dt; p->mem_dt = mem_dt;

    while (1) {
        int pid = -1;
        double best_time = 0.0;
        int64_t best_seq = 0;
        for (int c = 0; c < 4; c++) {
            if (p->runnable[c]) {
                double t = p->run_time[c];
                if (pid < 0 || t < best_time ||
                    (t == best_time && p->run_seq[c] < best_seq)) {
                    pid = c;
                    best_time = t;
                    best_seq = p->run_seq[c];
                }
            }
        }
        if (pid < 0) break;
        p->runnable[pid] = 0;
        p->now = best_time;
        if (pid == 0) pipe_resume_core(p);
        else if (pid == 3) pipe_resume_mem(p);
        else pipe_resume_engine(p, pid);
    }

    out_f[0] = p->now;
    out_f[1] = p->stall;
    for (int i = 0; i < 3; i++) {
        out_i[i] = p->ev[i];
        out_i[3 + i] = p->occ_max[i];
    }
    free(arena);
    return 0;
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_U8 = ctypes.POINTER(ctypes.c_uint8)
_F64 = ctypes.POINTER(ctypes.c_double)

#: argtypes per exported symbol (int64 scalars everywhere else).
_SIGNATURES = {
    "lru_level_replay": (
        ctypes.c_int64, _I64, _U8, _I64, ctypes.c_int64, ctypes.c_int64,
        _I64, _U8, _I64, _I64, _I64, _U8, _U8, _I64,
    ),
    "plru_level_replay": (
        ctypes.c_int64, _I64, _U8, _I64, ctypes.c_int64, ctypes.c_int64,
        _I64, _U8, _U8, _I64, _I64, _U8, _U8, _I64,
    ),
    "drrip_level_replay_flat": (
        ctypes.c_int64, _I64, _U8, _I64, ctypes.c_int64, ctypes.c_int64,
        _I64, _U8, _U8, _U8, _I64, _I64, _U8, _U8, _I64,
    ),
    "prefetch_scan_native": (
        ctypes.c_int64, _I64, _I64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64, _I64, _I64, _I64, _I64, _I64, _I64,
    ),
    "eviction_pipeline_replay": (
        _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _F64, _I64,
    ),
}

_lib = None
_build_error: Optional[str] = None
_attempted = False


def _cache_dir() -> Path:
    """Build cache for the shared object (XDG cache, tmp as fallback)."""
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    try:
        path = base / "repro-kernels"
        path.mkdir(parents=True, exist_ok=True)
        return path
    except OSError:
        return Path(tempfile.gettempdir())


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        for directory in os.environ.get("PATH", "").split(os.pathsep):
            candidate = Path(directory) / name
            if candidate.is_file() and os.access(candidate, os.X_OK):
                return str(candidate)
    return None


def _build() -> Optional[ctypes.CDLL]:
    """Compile (or reuse) the kernel library; None with a recorded reason
    on any failure — selection then falls back to the numpy tier."""
    global _build_error
    compiler = _compiler()
    if compiler is None:
        _build_error = "no C compiler (cc/gcc/clang) on PATH"
        return None
    digest = hashlib.sha256(_SOURCE.encode("utf-8")).hexdigest()[:16]
    library = _cache_dir() / f"repro_cache_kernels_{digest}.so"
    if not library.exists():
        with tempfile.TemporaryDirectory() as workdir:
            source = Path(workdir) / "kernels.c"
            source.write_text(_SOURCE, encoding="utf-8")
            built = Path(workdir) / "kernels.so"
            try:
                subprocess.run(
                    [compiler, "-O2", "-shared", "-fPIC",
                     str(source), "-o", str(built)],
                    check=True, capture_output=True, timeout=120,
                )
            except (subprocess.SubprocessError, OSError) as error:
                detail = getattr(error, "stderr", b"") or b""
                _build_error = (
                    f"kernel build failed: {error} "
                    f"{detail.decode('utf-8', 'replace')[:200]}"
                )
                return None
            try:
                os.replace(built, library)  # atomic vs concurrent builders
            except OSError as error:
                _build_error = f"kernel install failed: {error}"
                return None
    try:
        lib = ctypes.CDLL(str(library))
    except OSError as error:
        _build_error = f"kernel load failed: {error}"
        return None
    for symbol, argtypes in _SIGNATURES.items():
        func = getattr(lib, symbol)
        func.argtypes = argtypes
        func.restype = ctypes.c_int64
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The kernel library, building it on first use (None if unbuildable)."""
    global _lib, _attempted
    if not _attempted:
        _attempted = True
        _lib = _build()
    return _lib


def available() -> bool:
    """True when the native tier compiled and loaded successfully."""
    return load() is not None


def build_error() -> Optional[str]:
    """Why the native tier is unavailable (None when it is, or untried)."""
    load()
    return _build_error


def _ptr(array, ctype):
    return array.ctypes.data_as(ctype)


def lru_level_replay(ev_line, ev_kind, ev_set, ways, usable, way_line,
                     dirty, stamp, occ, clock, hit_out, evict_mask,
                     evict_line_out):
    """ctypes shim matching the flat-kernel signature (LRU)."""
    load().lru_level_replay(
        ev_line.shape[0], _ptr(ev_line, _I64), _ptr(ev_kind, _U8),
        _ptr(ev_set, _I64), ways, usable, _ptr(way_line, _I64),
        _ptr(dirty, _U8), _ptr(stamp, _I64), _ptr(occ, _I64),
        _ptr(clock, _I64), _ptr(hit_out, _U8), _ptr(evict_mask, _U8),
        _ptr(evict_line_out, _I64),
    )


def plru_level_replay(ev_line, ev_kind, ev_set, ways, usable, way_line,
                      dirty, mru, mru_cnt, occ, hit_out, evict_mask,
                      evict_line_out):
    """ctypes shim matching the flat-kernel signature (bit-PLRU)."""
    load().plru_level_replay(
        ev_line.shape[0], _ptr(ev_line, _I64), _ptr(ev_kind, _U8),
        _ptr(ev_set, _I64), ways, usable, _ptr(way_line, _I64),
        _ptr(dirty, _U8), _ptr(mru, _U8), _ptr(mru_cnt, _I64),
        _ptr(occ, _I64), _ptr(hit_out, _U8), _ptr(evict_mask, _U8),
        _ptr(evict_line_out, _I64),
    )


def drrip_level_replay_flat(ev_line, ev_kind, ev_set, ways, usable,
                            way_line, dirty, rrpv, role, occ, duel,
                            hit_out, evict_mask, evict_line_out):
    """ctypes shim matching the flat-kernel signature (DRRIP)."""
    load().drrip_level_replay_flat(
        ev_line.shape[0], _ptr(ev_line, _I64), _ptr(ev_kind, _U8),
        _ptr(ev_set, _I64), ways, usable, _ptr(way_line, _I64),
        _ptr(dirty, _U8), _ptr(rrpv, _U8), _ptr(role, _U8),
        _ptr(occ, _I64), _ptr(duel, _I64), _ptr(hit_out, _U8),
        _ptr(evict_mask, _U8), _ptr(evict_line_out, _I64),
    )


def prefetch_scan_native(prefetcher, miss_seq, miss_lines):
    """Native :func:`~repro.cache.kernels.prefetch.prefetch_scan` twin.

    Flattens the prefetcher's insertion-ordered stream table to parallel
    arrays (key/confidence/stamp; upserts keep their slot's stamp, so
    stamp order reproduces dict order), runs the C scan, and writes the
    surviving streams back in stamp order.
    """
    capacity = prefetcher.num_streams + 1
    keys = np.full(capacity, -1, dtype=np.int64)
    conf = np.zeros(capacity, dtype=np.int64)
    stamps = np.zeros(capacity, dtype=np.int64)
    for slot, (key, confidence) in enumerate(prefetcher._expect.items()):
        keys[slot] = key
        conf[slot] = confidence
        stamps[slot] = slot + 1
    meta = np.array([len(prefetcher._expect), capacity], dtype=np.int64)
    count = miss_seq.shape[0]
    pf_seq = np.empty(count * prefetcher.degree, dtype=np.int64)
    pf_line = np.empty(count * prefetcher.degree, dtype=np.int64)
    issued = load().prefetch_scan_native(
        count, _ptr(miss_seq, _I64), _ptr(miss_lines, _I64),
        prefetcher.num_streams, prefetcher.degree, prefetcher.threshold,
        _ptr(keys, _I64), _ptr(conf, _I64), _ptr(stamps, _I64),
        _ptr(meta, _I64), _ptr(pf_seq, _I64), _ptr(pf_line, _I64),
    )
    prefetcher.issued += int(issued)
    live = np.flatnonzero(keys != -1)
    order = live[np.argsort(stamps[live], kind="stable")]
    prefetcher._expect = {
        int(keys[slot]): int(conf[slot]) for slot in order
    }
    return pf_seq[:issued].copy(), pf_line[:issued].copy()


def eviction_pipeline_native(trace, cfg):
    """Native twin of :func:`repro.des.fastloop.simulate_eviction_pipeline`.

    Runs the whole DES in one C call. Returns the same
    ``(total, stall, evictions, max_occ)`` tuple, or ``None`` when the C
    run could not allocate its arena — the caller then falls back to the
    Python loop.
    """
    trace = np.ascontiguousarray(trace, dtype=np.int64)
    out_f = np.zeros(2, dtype=np.float64)
    out_i = np.zeros(6, dtype=np.int64)
    status = load().eviction_pipeline_replay(
        _ptr(trace, _I64), trace.shape[0],
        cfg.bin_range(cfg.l1_buffers), cfg.bin_range(cfg.l2_buffers),
        cfg.bin_range(cfg.llc_buffers), cfg.tuples_per_line,
        cfg.core_cycles_per_tuple, cfg.engine_cycles_per_tuple,
        cfg.mem_cycles_per_line,
        cfg.l1_evict_queue, cfg.l2_evict_queue, cfg.mem_queue,
        cfg.l1_buffers, cfg.l2_buffers, cfg.llc_buffers,
        _ptr(out_f, _F64), _ptr(out_i, _I64),
    )
    if status != 0:
        return None
    return (
        float(out_f[0]),
        float(out_f[1]),
        [int(out_i[0]), int(out_i[1]), int(out_i[2])],
        [int(out_i[3]), int(out_i[4]), int(out_i[5])],
    )
