"""Flat-array level-replay kernels (the ``numba`` backend tier).

Each function replays one cache level's whole seq-ordered event stream
against flat per-(set, way) state arrays, using linear way scans for
residency (ways are <= 16, so a machine-code scan beats any hash). They
are decorated with :func:`~repro.cache.kernels.maybe_jit`: compiled by
``numba.njit`` when numba is importable, plain Python otherwise — the
logic is identical either way, which is how numba-free environments still
test it (``tests/cache/test_kernel_backends.py`` replays traces through
these kernels and asserts bit-identical counters against the dict kernels,
:class:`~repro.cache.fastsim.FastHierarchy`, and the reference hierarchy).

Event kinds match :mod:`repro.cache.kernels.setreplay`: 0 demand read,
1 demand write / dirty-victim fill, 2 prefetch fill (no-op when resident),
3 LLC residency probe (never mutates state).

Outputs are written in place: ``hit_out[pos]`` is 1 when the event found
its line resident, and ``evict_mask[pos]`` / ``evict_line_out[pos]``
record the (at most one) dirty eviction the event caused — already in
sequence order, so the caller needs no eviction sort on this tier.
"""

from __future__ import annotations

from repro.cache.kernels import maybe_jit

__all__ = [
    "SCALAR_ORACLE",
    "lru_level_replay",
    "plru_level_replay",
    "drrip_level_replay_flat",
]

#: Scalar twin these kernels are equivalence-tested against (the
#: ``backend-pairing`` lint rule cross-checks that such a test exists).
SCALAR_ORACLE = "FastHierarchy"


@maybe_jit
def lru_level_replay(
    ev_line,
    ev_kind,
    ev_set,
    ways,
    usable,
    way_line,
    dirty,
    stamp,
    occ,
    clock,
    hit_out,
    evict_mask,
    evict_line_out,
):
    """Stamp-based LRU over one level's event stream (FastHierarchy twin).

    ``way_line`` is int64[sets*ways] with -1 marking empty ways; ``stamp``
    int64 touch clocks; ``occ`` int64[sets]; ``clock`` a 1-element int64
    array threading the level's touch counter across calls.
    """
    tick = clock[0]
    for pos in range(ev_line.shape[0]):
        line = ev_line[pos]
        kind = ev_kind[pos]
        base = ev_set[pos] * ways
        way = -1
        for w in range(usable):
            if way_line[base + w] == line:
                way = w
                break
        if way >= 0:
            hit_out[pos] = 1
            if kind < 2:
                tick += 1
                stamp[base + way] = tick
                if kind == 1:
                    dirty[base + way] = 1
            continue
        hit_out[pos] = 0
        if kind == 3:
            continue
        sidx = ev_set[pos]
        if occ[sidx] < usable:
            way = 0
            for w in range(usable):
                if way_line[base + w] == -1:
                    way = w
                    break
            occ[sidx] += 1
        else:
            way = 0
            best = stamp[base]
            for w in range(1, usable):
                if stamp[base + w] < best:
                    way = w
                    best = stamp[base + w]
            if dirty[base + way] == 1:
                evict_mask[pos] = 1
                evict_line_out[pos] = way_line[base + way]
        way_line[base + way] = line
        dirty[base + way] = 1 if kind == 1 else 0
        tick += 1
        stamp[base + way] = tick
    clock[0] = tick


@maybe_jit
def plru_level_replay(
    ev_line,
    ev_kind,
    ev_set,
    ways,
    usable,
    way_line,
    dirty,
    mru,
    mru_cnt,
    occ,
    hit_out,
    evict_mask,
    evict_line_out,
):
    """Bit-PLRU over one level's event stream (FastHierarchy twin).

    ``mru`` is uint8[sets*ways] MRU bits with reset-on-saturation over the
    usable ways; victims are the first clear-MRU way, cold fills the first
    empty way — bit for bit the scalar engine's policy.
    """
    for pos in range(ev_line.shape[0]):
        line = ev_line[pos]
        kind = ev_kind[pos]
        sidx = ev_set[pos]
        base = sidx * ways
        way = -1
        for w in range(usable):
            if way_line[base + w] == line:
                way = w
                break
        if way >= 0:
            hit_out[pos] = 1
            if kind < 2:
                if mru[base + way] == 0:
                    count = mru_cnt[sidx] + 1
                    if count >= usable:
                        for w in range(usable):
                            mru[base + w] = 0
                        mru[base + way] = 1
                        mru_cnt[sidx] = 1
                    else:
                        mru[base + way] = 1
                        mru_cnt[sidx] = count
                if kind == 1:
                    dirty[base + way] = 1
            continue
        hit_out[pos] = 0
        if kind == 3:
            continue
        if occ[sidx] < usable:
            way = 0
            for w in range(usable):
                if way_line[base + w] == -1:
                    way = w
                    break
            occ[sidx] += 1
        else:
            way = 0
            for w in range(usable):
                if mru[base + w] == 0:
                    way = w
                    break
            if dirty[base + way] == 1:
                evict_mask[pos] = 1
                evict_line_out[pos] = way_line[base + way]
        way_line[base + way] = line
        dirty[base + way] = 1 if kind == 1 else 0
        if mru[base + way] == 0:
            count = mru_cnt[sidx] + 1
            if count >= usable:
                for w in range(usable):
                    mru[base + w] = 0
                mru[base + way] = 1
                mru_cnt[sidx] = 1
            else:
                mru[base + way] = 1
                mru_cnt[sidx] = count


@maybe_jit
def drrip_level_replay_flat(
    ev_line,
    ev_kind,
    ev_set,
    ways,
    usable,
    way_line,
    dirty,
    rrpv,
    role,
    occ,
    duel,
    hit_out,
    evict_mask,
    evict_line_out,
):
    """DRRIP with set dueling over one level's event stream.

    ``duel`` is a 2-element int64 array ``[psel, brrip_tick]`` threading
    the global dueling state across calls in event order — the coupling
    that rules out per-set replay for this policy.
    """
    psel = duel[0]
    brrip_tick = duel[1]
    for pos in range(ev_line.shape[0]):
        line = ev_line[pos]
        kind = ev_kind[pos]
        sidx = ev_set[pos]
        base = sidx * ways
        way = -1
        for w in range(usable):
            if way_line[base + w] == line:
                way = w
                break
        if way >= 0:
            hit_out[pos] = 1
            if kind < 2:
                rrpv[base + way] = 0
                if kind == 1:
                    dirty[base + way] = 1
            continue
        hit_out[pos] = 0
        if kind == 3:
            continue
        if occ[sidx] < usable:
            way = 0
            for w in range(usable):
                if way_line[base + w] == -1:
                    way = w
                    break
            occ[sidx] += 1
        else:
            way = -1
            while way < 0:
                for w in range(usable):
                    if rrpv[base + w] >= 3:
                        way = w
                        break
                if way < 0:
                    for w in range(usable):
                        rrpv[base + w] += 1
            if dirty[base + way] == 1:
                evict_mask[pos] = 1
                evict_line_out[pos] = way_line[base + way]
        way_line[base + way] = line
        dirty[base + way] = 1 if kind == 1 else 0
        set_role = role[sidx]
        if set_role == 1:  # SRRIP leader
            if psel < 1023:
                psel += 1
        elif set_role == 2:  # BRRIP leader
            if psel > 0:
                psel -= 1
        if set_role == 2 or (set_role == 0 and psel < 512):
            brrip_tick += 1
            if brrip_tick % 32 == 0:
                rrpv[base + way] = 2
            else:
                rrpv[base + way] = 3
        else:
            rrpv[base + way] = 2
    duel[0] = psel
    duel[1] = brrip_tick
