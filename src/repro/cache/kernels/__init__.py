"""Pluggable compiled-kernel backends for the batched cache engine.

The batched simulators (:class:`~repro.cache.batchsim.BatchHierarchy`, the
DES fast loop in :mod:`repro.des.fastloop`) run their hot loops through one
of three interchangeable kernel tiers:

``numpy``
    Pure-Python/NumPy kernels: per-set dict replay loops
    (:mod:`repro.cache.kernels.setreplay`) plus vectorized stream merging.
    Always available; this is the reference-compatible default.
``numba``
    The same kernels written against flat arrays and compiled with
    ``numba.njit`` (:mod:`repro.cache.kernels.njit_kernels`). Selected
    automatically when numba is importable; produces bit-identical
    counters (the equivalence suite runs the flat kernels as plain Python
    when numba is absent, so the logic is tested either way).
``cnative``
    The flat kernels as one C translation unit, compiled on first use
    with the system C compiler and bound through ``ctypes``
    (:mod:`repro.cache.kernels.cnative`). Selected automatically when
    numba is absent but a compiler is present — the common CI/container
    case — and produces bit-identical counters.

Selection goes through the registered ``REPRO_KERNEL_BACKEND`` knob
(``auto`` | ``numpy`` | ``numba`` | ``cnative``); ``auto`` resolves to the
fastest available tier (numba, then cnative, then numpy). The backends are
equivalence-tested to identical counters, so the knob stays out of
result-cache digests.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "BACKENDS",
    "KERNEL_BACKEND_KNOB",
    "available_backends",
    "cnative_available",
    "numba_available",
    "maybe_jit",
    "select_backend",
]

KERNEL_BACKEND_KNOB = "REPRO_KERNEL_BACKEND"

#: Recognized backend names (``auto`` resolves to a concrete tier).
BACKENDS = ("auto", "numpy", "numba", "cnative")

#: Internal testing tier: the flat ``numba`` kernels run as plain Python.
#: Not accepted from the knob — the equivalence suite uses it to exercise
#: the flat-kernel logic on numba-free environments.
FLAT_PYTHON = "flat-python"

_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """True when ``numba`` is importable (checked once, then cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def cnative_available() -> bool:
    """True when the C kernel tier compiled and loaded (see ``cnative``)."""
    from repro.cache.kernels import cnative

    return cnative.available()


def available_backends() -> tuple[str, ...]:
    """The concrete backends usable in this environment."""
    tiers = ["numpy"]
    if numba_available():
        tiers.append("numba")
    if cnative_available():
        tiers.append("cnative")
    return tuple(tiers)


def select_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete tier name.

    ``None`` or ``"auto"`` reads the ``REPRO_KERNEL_BACKEND`` knob (itself
    defaulting to ``auto``) and picks the fastest available tier:
    ``numba`` when importable, else ``cnative`` when a C compiler is
    present, else ``numpy``. An explicit ``"numba"``/``"cnative"`` whose
    prerequisite is missing is an error rather than a silent downgrade —
    the caller asked for a specific tier and should know it is missing.
    """
    from_knob = False
    if name is None or name == "auto":
        from repro.harness import knobs

        env = knobs.read(KERNEL_BACKEND_KNOB)
        name = env if env else "auto"
        from_knob = env is not None
    if name == FLAT_PYTHON and not from_knob:
        return name  # testing tier, accepted only as an explicit argument
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
        )
    if name == "auto":
        if numba_available():
            return "numba"
        if cnative_available():
            return "cnative"
        return "numpy"
    if name == "numba" and not numba_available():
        raise RuntimeError(
            "REPRO_KERNEL_BACKEND=numba requested but numba is not "
            "installed; use 'auto' (falls back to the best available "
            "tier) or install numba"
        )
    if name == "cnative" and not cnative_available():
        from repro.cache.kernels import cnative

        raise RuntimeError(
            "REPRO_KERNEL_BACKEND=cnative requested but the C kernel "
            f"tier is unavailable ({cnative.build_error()}); use 'auto' "
            "(falls back to the best available tier)"
        )
    return name


def maybe_jit(func):
    """``numba.njit(cache=True)`` when numba is present, else identity.

    Applied at import time by the flat-kernel modules: with numba the
    functions compile to machine code; without it they stay plain Python
    (slow but semantically identical), which is what lets the equivalence
    suite exercise the flat-kernel logic on numba-free environments.
    """
    if numba_available():
        import numba

        return numba.njit(cache=True)(func)
    return func
