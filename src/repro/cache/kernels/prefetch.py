"""Batched stream-prefetcher scan for the batched cache engine.

Both engines invoke the L2 stream prefetcher only on L1 misses
(:meth:`FastHierarchy.access` returns before reaching it on an L1 hit), and
prefetcher state depends on nothing but that miss stream — so issuance can
be computed in one pass, *before* the L2 replays. The scan operates
directly on a :class:`~repro.cache.prefetcher.StreamPrefetcher` instance —
its insertion-ordered ``_expect`` table and ``issued`` counter — so state
carries across chunked ``simulate`` calls and the engine's ``prefetcher``
attribute reports the same statistics as the scalar engine's.

The returned events are tagged with sequence keys that interleave them into
the L2 event stream after the access's demand/eviction slots: prefetch
``j`` of an access at sequence key ``s`` lands at ``s + 3 + 2j``, leaving
``s + 4 + 2j`` for the dirty victim its fill may evict (see the slot
discipline in :mod:`repro.cache.batchsim`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SCALAR_ORACLE", "prefetch_scan", "PF_SLOT_BASE", "PF_SLOT_STRIDE"]

#: Scalar engine this scan is equivalence-tested against (the
#: ``backend-pairing`` lint rule keys off this marker).
SCALAR_ORACLE = "FastHierarchy"

#: First sub-event slot used by prefetch fills (0 = demand, 1-2 = victims).
PF_SLOT_BASE = 3
#: Slots consumed per prefetch fill (the fill plus its potential victim).
PF_SLOT_STRIDE = 2


def prefetch_scan(prefetcher, miss_seq, miss_lines):
    """Run ``prefetcher`` over the L1-miss stream; returns issued events.

    ``miss_seq`` / ``miss_lines`` are the sequence keys and line numbers of
    the L1 misses, in access order. Returns ``(pf_seq, pf_line)`` int64
    arrays, already sequence-sorted, covering every line the prefetcher
    issued (the L2 replay decides which of them actually fill).
    """
    expect = prefetcher._expect
    threshold = prefetcher.threshold
    degree = prefetcher.degree
    num_streams = prefetcher.num_streams
    pf_seq = []
    pf_line = []
    issued = 0
    pop = expect.pop
    for seq, line in zip(miss_seq.tolist(), miss_lines.tolist()):
        confidence = pop(line, None)
        if confidence is not None:
            confidence += 1
            expect[line + 1] = confidence
            if confidence >= threshold:
                slot = seq + PF_SLOT_BASE
                for offset in range(1, degree + 1):
                    pf_seq.append(slot)
                    pf_line.append(line + offset)
                    slot += PF_SLOT_STRIDE
                issued += degree
            continue
        expect[line + 1] = 0
        if len(expect) > num_streams:
            del expect[next(iter(expect))]  # drop least-recently-extended
    prefetcher.issued += issued
    return (
        np.asarray(pf_seq, dtype=np.int64),
        np.asarray(pf_line, dtype=np.int64),
    )
