"""Pure-Python per-set replay kernels (the ``numpy`` backend tier).

These are the scalar hearts of :class:`~repro.cache.batchsim.BatchHierarchy`:
one tight dict-based loop per replacement policy, replaying one cache set's
(or, for DRRIP, one whole level's) event stream. Every operation on the hot
path is a C-level dict/int primitive; the surrounding vectorized machinery
(set partitioning, stream merging) lives in :mod:`repro.cache.batchsim`.

Events carry a *kind* code instead of a plain dirty flag so the kernels can
express the full configuration space, including the modes that previously
forced the scalar engine:

``KIND_READ`` (0)
    Demand read: hit touches replacement state, miss fills clean.
``KIND_WRITE`` (1)
    Demand write or dirty-victim fill: hit touches and dirties, miss fills
    dirty.
``KIND_PREFETCH`` (2)
    Prefetch fill into the L2: resident lines are left untouched (no
    replacement-state update — mirroring ``FastHierarchy``'s
    ``pf_line not in map`` guard), misses fill clean. A prefetch miss is
    how the caller learns the fill actually happened (and therefore that
    the LLC must be probed).
``KIND_PROBE`` (3)
    LLC residency probe for a prefetch fill: reports hit/miss without
    touching any state, so ``dram_prefetch_reads`` can be gated on LLC
    residency *at the probe's position in the stream* — the upward
    dependency that used to break the level decomposition.

Each kernel returns the positions that *missed* (for probes: that were not
resident); dirty evictions are appended to the caller's ``evict_pos`` /
``evict_line`` lists as they fire.

The flat-array twins compiled by the ``numba`` tier live in
:mod:`repro.cache.kernels.njit_kernels`; equivalence between the tiers (and
against :class:`~repro.cache.fastsim.FastHierarchy` and the reference
hierarchy) is asserted by ``tests/cache/test_kernel_backends.py``.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = [
    "SCALAR_ORACLE",
    "KIND_READ",
    "KIND_WRITE",
    "KIND_PREFETCH",
    "KIND_PROBE",
    "lru_set_replay",
    "plru_set_replay",
    "drrip_level_replay",
    "DrripLevelState",
]

#: Scalar engine these kernels are equivalence-tested against (the
#: ``backend-pairing`` lint rule keys off this marker).
SCALAR_ORACLE = "FastHierarchy"

KIND_READ = 0
KIND_WRITE = 1
KIND_PREFETCH = 2
KIND_PROBE = 3


def lru_set_replay(state, cap, ev_line, ev_kind, evict_pos, evict_line):
    """Replay one set's events under LRU; returns miss positions.

    ``state`` is an :class:`OrderedDict` mapping resident lines (LRU first)
    to their dirty flag. Victim choice by least-recent touch matches
    FastHierarchy's stamp-based LRU exactly (every hit and fill touches;
    prefetch no-ops and probes never touch).
    """
    resident = state
    miss_pos = []
    miss = miss_pos.append
    move_to_end = resident.move_to_end
    popitem = resident.popitem
    for pos, line in enumerate(ev_line):
        kind = ev_kind[pos]
        if line in resident:
            if kind < KIND_PREFETCH:
                move_to_end(line)
                if kind == KIND_WRITE:
                    resident[line] = True
            continue
        miss(pos)
        if kind == KIND_PROBE:
            continue
        resident[line] = kind == KIND_WRITE
        if len(resident) > cap:
            victim, victim_dirty = popitem(last=False)
            if victim_dirty:
                evict_pos.append(pos)
                evict_line.append(victim)
    return miss_pos


def plru_set_replay(state, cap, ev_line, ev_kind, evict_pos, evict_line):
    """Replay one set's events under bit-PLRU; returns miss positions.

    ``state`` is ``[table, way_line, mru, count, occupied, dirty]`` — a
    line→way-bit dict, its way→line inverse, and the MRU/dirty bits packed
    into ints: the same scheme FastHierarchy keeps in its flat arrays,
    replicated bit for bit (reset-on-saturation, first clear-MRU-bit
    victim, first free way on cold fills). The table stores ``1 << way``
    rather than the way index so the hot hit path never shifts.
    """
    table, way_line = state[0], state[1]
    mru, count, occupied, dirty = state[2], state[3], state[4], state[5]
    full_mask = (1 << cap) - 1
    miss_pos = []
    miss = miss_pos.append
    lookup = table.get
    for pos, line in enumerate(ev_line):
        kind = ev_kind[pos]
        bit = lookup(line)
        if bit is not None:
            if kind >= KIND_PREFETCH:
                continue
            if not mru & bit:
                count += 1
                if count >= cap:
                    mru, count = bit, 1
                else:
                    mru |= bit
            if kind == KIND_WRITE:
                dirty |= bit
            continue
        miss(pos)
        if kind == KIND_PROBE:
            continue
        if occupied < cap:
            way = way_line.index(None)
            bit = 1 << way
            occupied += 1
        else:
            inverted = ~mru & full_mask
            bit = inverted & -inverted if inverted else 1
            way = bit.bit_length() - 1
            old = way_line[way]
            del table[old]
            if dirty & bit:
                evict_pos.append(pos)
                evict_line.append(old)
        table[line] = bit
        way_line[way] = line
        if kind == KIND_WRITE:
            dirty |= bit
        else:
            dirty &= ~bit
        if not mru & bit:
            count += 1
            if count >= cap:
                mru, count = bit, 1
            else:
                mru |= bit
    state[2], state[3], state[4], state[5] = mru, count, occupied, dirty
    return miss_pos


class DrripLevelState:
    """Whole-level DRRIP state: set dueling couples sets through PSEL.

    Per-set replay would reorder leader updates, so DRRIP levels run one
    PSEL-threaded scan over the level's full seq-ordered event stream
    instead. Layout mirrors :class:`~repro.cache.fastsim.FastHierarchy`:
    positions are ``set_idx * ways + way``; ``role`` marks the SRRIP/BRRIP
    leader sets with the same stride pattern.
    """

    __slots__ = (
        "sets",
        "ways",
        "usable",
        "table",
        "way_line",
        "rrpv",
        "dirty",
        "occ",
        "role",
        "psel",
        "brrip_tick",
    )

    FOLLOWER, SRRIP_LEADER, BRRIP_LEADER = 0, 1, 2

    def __init__(self, sets, ways, usable):
        self.sets = sets
        self.ways = ways
        self.usable = usable
        self.table = {}  # line -> set_idx * ways + way
        self.way_line = [-1] * (sets * ways)
        self.rrpv = bytearray([3] * (sets * ways))
        self.dirty = bytearray(sets * ways)
        self.occ = [0] * sets
        self.role = drrip_roles(sets)
        self.psel = 512
        self.brrip_tick = 0


def drrip_roles(sets):
    """Per-set dueling roles, identical to FastHierarchy's assignment."""
    role = [DrripLevelState.FOLLOWER] * sets
    leaders = min(32, max(2, sets // 2) & ~1)
    stride = max(1, sets // max(1, leaders))
    for s in range(0, sets, stride * 2):
        role[s] = DrripLevelState.SRRIP_LEADER
    for s in range(stride, sets, stride * 2):
        role[s] = DrripLevelState.BRRIP_LEADER
    return role


def drrip_level_replay(state, set_idx, ev_line, ev_kind, evict_pos, evict_line):
    """Replay a whole level's events (seq order) under DRRIP set dueling.

    ``set_idx`` is the per-event set index (parallel to ``ev_line``).
    Returns miss positions; PSEL and the BRRIP throttle tick thread through
    the scan in event order, exactly as FastHierarchy's per-access updates
    would.
    """
    ways = state.ways
    usable = state.usable
    table = state.table
    way_line = state.way_line
    rrpv = state.rrpv
    dirty = state.dirty
    occ = state.occ
    role = state.role
    psel = state.psel
    brrip_tick = state.brrip_tick
    lookup = table.get
    miss_pos = []
    miss = miss_pos.append
    for pos, line in enumerate(ev_line):
        kind = ev_kind[pos]
        slot = lookup(line)
        if slot is not None:
            if kind >= KIND_PREFETCH:
                continue
            rrpv[slot] = 0
            if kind == KIND_WRITE:
                dirty[slot] = 1
            continue
        miss(pos)
        if kind == KIND_PROBE:
            continue
        sidx = set_idx[pos]
        base = sidx * ways
        if occ[sidx] < usable:
            way = 0
            for w in range(usable):
                if way_line[base + w] == -1:
                    way = w
                    break
            occ[sidx] += 1
        else:
            while True:
                way = -1
                for w in range(usable):
                    if rrpv[base + w] >= 3:
                        way = w
                        break
                if way >= 0:
                    break
                for w in range(usable):
                    rrpv[base + w] += 1
            old = way_line[base + way]
            del table[old]
            if dirty[base + way]:
                evict_pos.append(pos)
                evict_line.append(old)
        slot = base + way
        table[line] = slot
        way_line[slot] = line
        dirty[slot] = 1 if kind == KIND_WRITE else 0
        set_role = role[sidx]
        if set_role == DrripLevelState.SRRIP_LEADER:
            if psel < 1023:
                psel += 1
        elif set_role == DrripLevelState.BRRIP_LEADER:
            if psel > 0:
                psel -= 1
        if set_role == DrripLevelState.BRRIP_LEADER or (
            set_role == DrripLevelState.FOLLOWER and psel < 512
        ):
            brrip_tick += 1
            rrpv[slot] = 2 if brrip_tick % 32 == 0 else 3
        else:
            rrpv[slot] = 2
    state.psel = psel
    state.brrip_tick = brrip_tick
    return miss_pos
