"""Three-level cache hierarchy (private L1/L2, LLC NUCA bank, DRAM).

Write-back, write-allocate, non-inclusive. The LLC models the *local NUCA
bank* of one core: PB and COBRA duplicate bins and C-Buffers per thread
(Section III/V-E of the paper), so a single representative core with its
slice of the LLC captures all locality behaviour (DESIGN.md Section 4).
"""

from __future__ import annotations

from repro.cache.cache import Cache
from repro.cache.prefetcher import StreamPrefetcher

__all__ = [
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_LLC",
    "LEVEL_DRAM",
    "LEVEL_NAMES",
    "CacheHierarchy",
]

LEVEL_L1 = 1
LEVEL_L2 = 2
LEVEL_LLC = 3
LEVEL_DRAM = 4

LEVEL_NAMES = {LEVEL_L1: "L1", LEVEL_L2: "L2", LEVEL_LLC: "LLC", LEVEL_DRAM: "DRAM"}


class CacheHierarchy:
    """L1 → L2 → LLC → DRAM with per-level statistics and DRAM traffic.

    ``access`` returns the level that served the request (one of the
    ``LEVEL_*`` constants), which the timing model converts to latency.
    """

    def __init__(self, l1: Cache, l2: Cache, llc: Cache, prefetcher=None):
        for cache, expected in [(l1, "L1"), (l2, "L2"), (llc, "LLC")]:
            if cache.line_bytes != l1.line_bytes:
                raise ValueError("all levels must share a line size")
        self.l1 = l1
        self.l2 = l2
        self.llc = llc
        self.prefetcher = prefetcher
        self.line_bytes = l1.line_bytes
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0

    @classmethod
    def default(cls, l1_kb=2, l2_kb=16, llc_kb=128, line_bytes=64, prefetch=True):
        """Build the scaled Table II machine (see DESIGN.md Section 5)."""
        l1 = Cache("L1", l1_kb * 1024, 8, line_bytes, policy="plru")
        l2 = Cache("L2", l2_kb * 1024, 8, line_bytes, policy="plru")
        llc = Cache("LLC", llc_kb * 1024, 16, line_bytes, policy="drrip")
        pf = StreamPrefetcher() if prefetch else None
        return cls(l1, l2, llc, prefetcher=pf)

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #

    def access(self, line, is_write=False):
        """Demand access to ``line``; returns the servicing level."""
        if self.l1.probe(line, is_write):
            return LEVEL_L1
        if self.l2.probe(line):
            served = LEVEL_L2
        elif self.llc.probe(line):
            served = LEVEL_LLC
        else:
            served = LEVEL_DRAM
            self.dram_reads += 1
        if served == LEVEL_DRAM:
            self._handle_llc_eviction(self.llc.fill(line))
        if served >= LEVEL_LLC:
            self._handle_l2_eviction(self.l2.fill(line))
        self._handle_l1_eviction(self.l1.fill(line, dirty=is_write))
        if self.prefetcher is not None and served != LEVEL_L1:
            for pf_line in self.prefetcher.observe(line):
                self._prefetch_into_l2(pf_line)
        return served

    def _prefetch_into_l2(self, line):
        if self.l2.contains(line):
            return
        if not self.llc.contains(line):
            self.dram_prefetch_reads += 1
        self._handle_l2_eviction(self.l2.fill(line))

    # ------------------------------------------------------------------ #
    # Writeback / eviction cascade
    # ------------------------------------------------------------------ #

    def _handle_l1_eviction(self, eviction):
        if eviction is not None and eviction.dirty:
            self._handle_l2_eviction(self.l2.fill(eviction.line, dirty=True))

    def _handle_l2_eviction(self, eviction):
        if eviction is not None and eviction.dirty:
            self._handle_llc_eviction(self.llc.fill(eviction.line, dirty=True))

    def _handle_llc_eviction(self, eviction):
        if eviction is not None and eviction.dirty:
            self.dram_writes += 1

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def write_through_dram(self, num_lines):
        """Account ``num_lines`` of non-temporal (cache-bypassing) writes.

        Software PB transfers full coalescing buffers to in-memory bins with
        non-temporal stores; the traffic hits DRAM without disturbing the
        caches.
        """
        self.dram_writes += num_lines

    def read_through_dram(self, num_lines):
        """Account ``num_lines`` of streaming reads served by DRAM only."""
        self.dram_reads += num_lines

    def flush_all(self):
        """Flush every level, counting dirty-line writebacks to DRAM."""
        for eviction in self.l1.flush():
            self._handle_l2_eviction(self.l2.fill(eviction.line, dirty=True))
        for eviction in self.l2.flush():
            self._handle_llc_eviction(self.llc.fill(eviction.line, dirty=True))
        for eviction in self.llc.flush():
            if eviction.dirty:
                self.dram_writes += 1

    def reserve_ways(self, l1_ways=0, l2_ways=0, llc_ways=0):
        """Apply COBRA-style static way partitioning at every level.

        Displaced dirty lines are written back (and counted as DRAM writes
        if they fall out of the LLC).
        """
        for eviction in self.l1.reserve_ways(l1_ways):
            self._handle_l2_eviction(self.l2.fill(eviction.line, dirty=eviction.dirty))
        for eviction in self.l2.reserve_ways(l2_ways):
            self._handle_llc_eviction(
                self.llc.fill(eviction.line, dirty=eviction.dirty)
            )
        for eviction in self.llc.reserve_ways(llc_ways):
            if eviction.dirty:
                self.dram_writes += 1

    def reset_stats(self):
        """Zero hit/miss and DRAM counters (cache contents unchanged)."""
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.llc.reset_stats()
        if self.prefetcher is not None:
            self.prefetcher.reset()
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0

    @property
    def levels(self):
        """(L1, L2, LLC) tuple."""
        return (self.l1, self.l2, self.llc)

    def __repr__(self):
        return f"CacheHierarchy(l1={self.l1!r}, l2={self.l2!r}, llc={self.llc!r})"
