"""Flat-state fast cache hierarchy simulator.

Semantically identical to the reference object model
(:class:`repro.cache.CacheHierarchy` built from the same
:class:`~repro.cache.config.HierarchyConfig` — equivalence is asserted by
tests), but implemented with one line→way dict per level, flat policy-state
arrays, and inlined policy logic so full experiment sweeps are feasible in
pure Python.
"""

from __future__ import annotations

from repro.cache.config import HierarchyConfig
from repro.cache.prefetcher import StreamPrefetcher
from repro.cache.stats import ServiceCounts

__all__ = ["FastHierarchy"]

_PLRU, _DRRIP, _LRU = 0, 1, 2
_POLICY_CODES = {"plru": _PLRU, "drrip": _DRRIP, "lru": _LRU}

# DRRIP per-set roles.
_FOLLOWER, _SRRIP_LEADER, _BRRIP_LEADER = 0, 1, 2


class FastHierarchy:
    """Three-level hierarchy with the same semantics as the reference.

    Levels are indexed 0 (L1), 1 (L2), 2 (LLC); :meth:`access` returns the
    servicing level as 1..4 (DRAM = 4) to match
    :mod:`repro.cache.hierarchy`'s constants.
    """

    def __init__(self, config: HierarchyConfig):
        self.config = config
        self._sets = []
        self._ways = []
        self._usable = []
        self._pol = []
        self._map = []  # line -> way, one dict per level
        self._way_line = []
        self._dirty = []
        self._occ = []  # per-set occupied-way count (within usable range)
        self._mru = []
        self._mru_cnt = []
        self._rrpv = []
        self._role = []
        self._stamp = []
        self._clock = [0, 0, 0]
        self._psel = [512, 512, 512]
        self._brrip_tick = [0, 0, 0]
        self.hits = [0, 0, 0]
        self.misses = [0, 0, 0]
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0
        for level, name in enumerate(("l1", "l2", "llc")):
            sets = config.sets(name)
            ways = getattr(config, f"{name}_ways")
            reserved = getattr(config, f"{name}_reserved_ways")
            policy = _POLICY_CODES[getattr(config, f"{name}_policy")]
            self._sets.append(sets)
            self._ways.append(ways)
            self._usable.append(ways - reserved)
            self._pol.append(policy)
            self._map.append({})
            self._way_line.append([-1] * (sets * ways))
            self._dirty.append(bytearray(sets * ways))
            self._occ.append([0] * sets)
            self._mru.append(bytearray(sets * ways))
            self._mru_cnt.append([0] * sets)
            self._rrpv.append(bytearray([3] * (sets * ways)))
            self._stamp.append([0] * (sets * ways))
            role = [_FOLLOWER] * sets
            leaders = min(32, max(2, sets // 2) & ~1)
            stride = max(1, sets // max(1, leaders))
            for s in range(0, sets, stride * 2):
                role[s] = _SRRIP_LEADER
            for s in range(stride, sets, stride * 2):
                role[s] = _BRRIP_LEADER
            self._role.append(role)
        self.prefetcher = (
            StreamPrefetcher(
                config.prefetch_streams,
                config.prefetch_degree,
                config.prefetch_threshold,
            )
            if config.prefetch
            else None
        )

    # ------------------------------------------------------------------ #
    # Policy helpers
    # ------------------------------------------------------------------ #

    def _touch(self, level, set_idx, way):
        """Replacement-state update on hit or fill."""
        policy = self._pol[level]
        ways = self._ways[level]
        pos = set_idx * ways + way
        if policy == _PLRU:
            mru = self._mru[level]
            if not mru[pos]:
                counts = self._mru_cnt[level]
                count = counts[set_idx] + 1
                usable = self._usable[level]
                if count >= usable:
                    base = set_idx * ways
                    mru[base : base + usable] = bytes(usable)
                    mru[pos] = 1
                    counts[set_idx] = 1
                else:
                    mru[pos] = 1
                    counts[set_idx] = count
        elif policy == _DRRIP:
            self._rrpv[level][pos] = 0
        else:  # LRU
            self._clock[level] += 1
            self._stamp[level][pos] = self._clock[level]

    def _fill_policy(self, level, set_idx, way):
        """Replacement-state update specific to a new fill."""
        policy = self._pol[level]
        if policy != _DRRIP:
            self._touch(level, set_idx, way)
            return
        role = self._role[level][set_idx]
        if role == _SRRIP_LEADER:
            if self._psel[level] < 1023:
                self._psel[level] += 1
        elif role == _BRRIP_LEADER:
            if self._psel[level] > 0:
                self._psel[level] -= 1
        use_brrip = role == _BRRIP_LEADER or (
            role == _FOLLOWER and self._psel[level] < 512
        )
        if use_brrip:
            self._brrip_tick[level] += 1
            rrpv = 2 if self._brrip_tick[level] % 32 == 0 else 3
        else:
            rrpv = 2
        self._rrpv[level][set_idx * self._ways[level] + way] = rrpv

    def _victim(self, level, set_idx):
        """Pick the replacement way in ``[0, usable)`` of ``set_idx``."""
        policy = self._pol[level]
        ways = self._ways[level]
        usable = self._usable[level]
        base = set_idx * ways
        if policy == _PLRU:
            mru = self._mru[level]
            for w in range(usable):
                if not mru[base + w]:
                    return w
            return 0
        if policy == _DRRIP:
            rrpv = self._rrpv[level]
            while True:
                for w in range(usable):
                    if rrpv[base + w] >= 3:
                        return w
                for w in range(usable):
                    rrpv[base + w] += 1
        stamp = self._stamp[level]
        best_way, best = 0, stamp[base]
        for w in range(1, usable):
            if stamp[base + w] < best:
                best_way, best = w, stamp[base + w]
        return best_way

    # ------------------------------------------------------------------ #
    # Fill / eviction cascade
    # ------------------------------------------------------------------ #

    def _fill(self, level, line, dirty):
        """Insert ``line`` at ``level``; cascade dirty evictions downward."""
        mapping = self._map[level]
        ways = self._ways[level]
        set_idx = line % self._sets[level]
        existing = mapping.get(line)
        if existing is not None:
            if dirty:
                self._dirty[level][set_idx * ways + existing] = 1
            self._touch(level, set_idx, existing)
            return
        base = set_idx * ways
        way_line = self._way_line[level]
        occ = self._occ[level]
        usable = self._usable[level]
        if occ[set_idx] < usable:
            way = 0
            for w in range(usable):
                if way_line[base + w] == -1:
                    way = w
                    break
            occ[set_idx] += 1
        else:
            way = self._victim(level, set_idx)
            old_line = way_line[base + way]
            del mapping[old_line]
            if self._dirty[level][base + way]:
                if level < 2:
                    self._fill(level + 1, old_line, True)
                else:
                    self.dram_writes += 1
        mapping[line] = way
        way_line[base + way] = line
        self._dirty[level][base + way] = 1 if dirty else 0
        self._fill_policy(level, set_idx, way)

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #

    def access(self, line, is_write=False):
        """Demand access; returns the servicing level (1=L1 .. 4=DRAM)."""
        way = self._map[0].get(line)
        if way is not None:
            self.hits[0] += 1
            set_idx = line % self._sets[0]
            self._touch(0, set_idx, way)
            if is_write:
                self._dirty[0][set_idx * self._ways[0] + way] = 1
            return 1
        self.misses[0] += 1
        way = self._map[1].get(line)
        if way is not None:
            self.hits[1] += 1
            self._touch(1, line % self._sets[1], way)
            served = 2
        else:
            self.misses[1] += 1
            way = self._map[2].get(line)
            if way is not None:
                self.hits[2] += 1
                self._touch(2, line % self._sets[2], way)
                served = 3
            else:
                self.misses[2] += 1
                self.dram_reads += 1
                served = 4
        if served == 4:
            self._fill(2, line, False)
        if served >= 3:
            self._fill(1, line, False)
        self._fill(0, line, is_write)
        if self.prefetcher is not None:
            for pf_line in self.prefetcher.observe(line):
                if pf_line not in self._map[1]:
                    if pf_line not in self._map[2]:
                        self.dram_prefetch_reads += 1
                    self._fill(1, pf_line, False)
        return served

    def run_trace(self, lines, writes=None):
        """Simulate a whole trace; returns :class:`ServiceCounts`.

        ``lines`` is any iterable of line numbers; ``writes`` is a parallel
        boolean iterable (or a single bool applied to every access).
        """
        counts = [0, 0, 0, 0, 0]
        access = self.access
        if writes is None or isinstance(writes, bool):
            flag = bool(writes)
            for line in lines:
                counts[access(line, flag)] += 1
        else:
            for line, is_write in zip(lines, writes):
                counts[access(line, is_write)] += 1
        return ServiceCounts(counts[1], counts[2], counts[3], counts[4])

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def contains(self, level, line):
        """True when ``line`` is resident at ``level`` (0-indexed)."""
        return line in self._map[level]

    def reset_stats(self):
        """Zero hit/miss and DRAM counters (contents unchanged)."""
        self.hits = [0, 0, 0]
        self.misses = [0, 0, 0]
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_prefetch_reads = 0
        if self.prefetcher is not None:
            self.prefetcher.reset()

    def write_through_dram(self, num_lines):
        """Account non-temporal full-line writes (bypass the caches)."""
        self.dram_writes += num_lines

    def read_through_dram(self, num_lines):
        """Account streaming reads served straight from DRAM."""
        self.dram_reads += num_lines
