"""Miss-ratio curves: locality characterization across cache sizes.

A standard cache-analysis tool built on the fast simulator: replay one
access stream against a family of LLC sizes and report the miss ratio at
each. Used to visualize *why* the paper's irregular updates defeat any
realistic cache (the curve stays high until the cache approaches the full
working set) while PB's accumulate-phase ranges drop it to near zero.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro._util import check_positive
from repro.cache.config import HierarchyConfig
from repro.cache.fastsim import FastHierarchy

__all__ = ["miss_ratio_curve", "working_set_lines"]

DEFAULT_SIZES_KB = (16, 32, 64, 128, 256, 512, 1024)


def miss_ratio_curve(
    lines,
    sizes_kb=DEFAULT_SIZES_KB,
    config: HierarchyConfig = None,
    is_write=True,
    max_events=200_000,
):
    """LLC miss ratio of an access stream at each LLC size.

    Parameters
    ----------
    lines:
        Line-number access stream (iterable of ints).
    sizes_kb:
        LLC capacities to sweep; each must keep the geometry valid
        (divisible by ways * line size).
    config:
        Base hierarchy (defaults to the scaled Table II machine); only the
        LLC size varies.
    is_write:
        Access type for the whole stream.
    max_events:
        Simulate at most this many accesses (streams are stationary).

    Returns a list of ``{"size_kb", "miss_ratio", "dram_accesses"}`` rows.
    """
    config = config or HierarchyConfig()
    check_positive("max_events", max_events)
    trace = list(lines)[:max_events]
    rows = []
    for size_kb in sizes_kb:
        check_positive("size_kb", size_kb)
        sized = replace(config, llc_bytes=size_kb * 1024)
        hierarchy = FastHierarchy(sized)
        counts = hierarchy.run_trace(trace, is_write)
        llc_lookups = counts.llc + counts.dram
        rows.append(
            {
                "size_kb": size_kb,
                "miss_ratio": (
                    counts.dram / llc_lookups if llc_lookups else 0.0
                ),
                "dram_accesses": counts.dram,
            }
        )
    return rows


def working_set_lines(lines):
    """Distinct lines in a stream (the knee every miss-ratio curve has)."""
    return len(np.unique(np.asarray(list(lines), dtype=np.int64)))
