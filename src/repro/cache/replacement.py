"""Cache replacement policies.

Implements the policies of the paper's simulated machine (Table II):
Bit-PLRU for L1/L2, DRRIP for the LLC, plus true LRU as a reference policy
for tests. Policies keep per-(set, way) state in flat arrays and support
victim selection restricted to a way range so way-based partitioning
(Intel-CAT-style, used by COBRA to pin C-Buffers) composes with any policy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReplacementPolicy", "LRU", "BitPLRU", "DRRIP", "make_policy"]


class ReplacementPolicy:
    """Interface: per-set victim selection plus hit/fill notifications.

    ``lo``/``hi`` bound the ways eligible for replacement (``hi`` exclusive),
    letting a partitioned cache restrict regular data to a subset of ways.
    """

    def __init__(self, num_sets, num_ways):
        self.num_sets = num_sets
        self.num_ways = num_ways

    def on_hit(self, set_idx, way):
        """Record a hit on ``way`` of ``set_idx``."""
        raise NotImplementedError

    def on_fill(self, set_idx, way):
        """Record a fill into ``way`` of ``set_idx``."""
        raise NotImplementedError

    def victim(self, set_idx, lo, hi):
        """Pick the way in ``[lo, hi)`` of ``set_idx`` to replace."""
        raise NotImplementedError


class LRU(ReplacementPolicy):
    """True least-recently-used, tracked with monotonically growing stamps."""

    def __init__(self, num_sets, num_ways):
        super().__init__(num_sets, num_ways)
        self._stamp = np.zeros(num_sets * num_ways, dtype=np.int64)
        self._clock = 0

    def _touch(self, set_idx, way):
        self._clock += 1
        self._stamp[set_idx * self.num_ways + way] = self._clock

    def on_hit(self, set_idx, way):
        self._touch(set_idx, way)

    def on_fill(self, set_idx, way):
        self._touch(set_idx, way)

    def victim(self, set_idx, lo, hi):
        base = set_idx * self.num_ways
        stamps = self._stamp[base + lo : base + hi]
        return lo + int(np.argmin(stamps))


class BitPLRU(ReplacementPolicy):
    """Bit-pseudo-LRU (MRU bits), as in the paper's L1/L2.

    Each way has an MRU bit, set on every touch. When setting a bit would
    make all bits in the managed range 1, the other bits reset first. The
    victim is the lowest-index way whose bit is 0.
    """

    def __init__(self, num_sets, num_ways):
        super().__init__(num_sets, num_ways)
        self._mru = bytearray(num_sets * num_ways)

    def _touch(self, set_idx, way, lo, hi):
        mru = self._mru
        base = set_idx * self.num_ways
        mru[base + way] = 1
        for w in range(lo, hi):
            if not mru[base + w]:
                return
        for w in range(lo, hi):  # all bits set: reset everyone else
            mru[base + w] = 0
        mru[base + way] = 1

    def on_hit(self, set_idx, way):
        # The managed range is unknown on a plain hit; treat the whole set
        # as the range (correct when unpartitioned; partitioned caches call
        # on_hit_range instead).
        self._touch(set_idx, way, 0, self.num_ways)

    def on_hit_range(self, set_idx, way, lo, hi):
        """Hit notification with an explicit managed way range."""
        self._touch(set_idx, way, lo, hi)

    def on_fill(self, set_idx, way):
        self._touch(set_idx, way, 0, self.num_ways)

    def on_fill_range(self, set_idx, way, lo, hi):
        """Fill notification with an explicit managed way range."""
        self._touch(set_idx, way, lo, hi)

    def victim(self, set_idx, lo, hi):
        mru = self._mru
        base = set_idx * self.num_ways
        for w in range(lo, hi):
            if not mru[base + w]:
                return w
        return lo  # unreachable in steady state; safe fallback


class DRRIP(ReplacementPolicy):
    """Dynamic Re-Reference Interval Prediction (Jaleel et al.), 2-bit RRPVs.

    Set-dueling between SRRIP (fill at RRPV=2) and BRRIP (fill at RRPV=3,
    occasionally 2) with a PSEL counter steering follower sets, matching the
    LLC policy in Table II.
    """

    RRPV_MAX = 3
    BRRIP_EPSILON = 32  # 1-in-32 BRRIP fills insert at long (not distant)

    def __init__(self, num_sets, num_ways, num_leader_sets=32):
        super().__init__(num_sets, num_ways)
        self._rrpv = np.full(num_sets * num_ways, self.RRPV_MAX, dtype=np.int8)
        self._psel = 512  # 10-bit counter, midpoint
        self._brrip_tick = 0
        leaders = min(num_leader_sets, max(2, num_sets // 2) & ~1)
        stride = max(1, num_sets // max(1, leaders))
        self._srrip_leaders = set(range(0, num_sets, stride * 2))
        self._brrip_leaders = set(range(stride, num_sets, stride * 2))

    def on_hit(self, set_idx, way):
        self._rrpv[set_idx * self.num_ways + way] = 0

    def _use_brrip(self, set_idx):
        if set_idx in self._srrip_leaders:
            return False
        if set_idx in self._brrip_leaders:
            return True
        return self._psel < 512

    def on_fill(self, set_idx, way):
        if set_idx in self._srrip_leaders:
            self._psel = min(1023, self._psel + 1)
        elif set_idx in self._brrip_leaders:
            self._psel = max(0, self._psel - 1)
        if self._use_brrip(set_idx):
            self._brrip_tick += 1
            rrpv = (
                self.RRPV_MAX - 1
                if self._brrip_tick % self.BRRIP_EPSILON == 0
                else self.RRPV_MAX
            )
        else:
            rrpv = self.RRPV_MAX - 1
        self._rrpv[set_idx * self.num_ways + way] = rrpv

    def victim(self, set_idx, lo, hi):
        base = set_idx * self.num_ways
        rrpv = self._rrpv
        while True:
            for w in range(lo, hi):
                if rrpv[base + w] >= self.RRPV_MAX:
                    return w
            for w in range(lo, hi):  # age everyone and retry
                rrpv[base + w] += 1


_POLICIES = {"lru": LRU, "plru": BitPLRU, "drrip": DRRIP}


def make_policy(name, num_sets, num_ways):
    """Instantiate a replacement policy by name ('lru', 'plru', 'drrip')."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of "
            f"{sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, num_ways)
