"""Address-space layout helpers.

Workload phases describe accesses as (region, element index) pairs; a
:class:`AddressSpace` assigns each region a disjoint, line-aligned span of
the simulated physical address space so streams from different arrays never
alias. (The paper likewise assumes matching virtual/physical addresses for
the important data structures, Section V-E.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive

__all__ = ["Region", "AddressSpace"]


@dataclass(frozen=True)
class Region:
    """A named array in the simulated address space.

    ``element_bytes`` and ``num_elements`` define its footprint;
    ``base_line`` is filled in by :class:`AddressSpace`.
    """

    name: str
    element_bytes: int
    num_elements: int
    base_line: int = 0
    line_bytes: int = 64

    def __post_init__(self):
        check_positive("element_bytes", self.element_bytes)
        check_positive("num_elements", self.num_elements)
        if self.line_bytes % self.element_bytes and self.element_bytes % self.line_bytes:
            raise ValueError(
                "element size must divide or be a multiple of the line size"
            )

    @property
    def num_lines(self):
        """Number of cache lines the region spans."""
        total = self.element_bytes * self.num_elements
        return (total + self.line_bytes - 1) // self.line_bytes

    @property
    def footprint_bytes(self):
        """Total bytes occupied."""
        return self.element_bytes * self.num_elements

    def line_of(self, index):
        """Global line number holding element ``index``."""
        if index < 0 or index >= self.num_elements:
            raise IndexError(
                f"element {index} out of range for region {self.name!r} "
                f"({self.num_elements} elements)"
            )
        return self.base_line + (index * self.element_bytes) // self.line_bytes

    def lines_of(self, indices):
        """Vectorized :meth:`line_of` for an int array (no bounds check)."""
        return self.base_line + (indices * self.element_bytes) // self.line_bytes


class AddressSpace:
    """Allocates disjoint line spans to regions.

    Regions are padded to the next line boundary plus one guard line so
    distinct arrays never share a cache line.
    """

    def __init__(self, line_bytes=64):
        check_positive("line_bytes", line_bytes)
        self.line_bytes = line_bytes
        self._next_line = 0
        self._regions = {}

    def allocate(self, name, element_bytes, num_elements):
        """Create and place a region; names must be unique."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        region = Region(
            name,
            element_bytes,
            num_elements,
            base_line=self._next_line,
            line_bytes=self.line_bytes,
        )
        self._next_line += region.num_lines + 1  # guard line between regions
        self._regions[name] = region
        return region

    def __getitem__(self, name):
        return self._regions[name]

    def __contains__(self, name):
        return name in self._regions

    @property
    def regions(self):
        """Mapping of region name to :class:`Region`."""
        return dict(self._regions)

    @property
    def total_lines(self):
        """Lines allocated so far (including guard lines)."""
        return self._next_line
