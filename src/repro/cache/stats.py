"""Access statistics containers shared by the runner and experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import LEVEL_DRAM, LEVEL_L1, LEVEL_L2, LEVEL_LLC

__all__ = ["ServiceCounts", "MemoryTraffic"]


@dataclass
class ServiceCounts:
    """How many demand accesses each level served."""

    l1: int = 0
    l2: int = 0
    llc: int = 0
    dram: int = 0

    def record(self, level):
        """Tally one access served at ``level`` (a ``LEVEL_*`` constant)."""
        if level == LEVEL_L1:
            self.l1 += 1
        elif level == LEVEL_L2:
            self.l2 += 1
        elif level == LEVEL_LLC:
            self.llc += 1
        elif level == LEVEL_DRAM:
            self.dram += 1
        else:
            raise ValueError(f"unknown level {level}")

    @property
    def total(self):
        """Total demand accesses."""
        return self.l1 + self.l2 + self.llc + self.dram

    @property
    def llc_miss_rate(self):
        """Fraction of LLC lookups that missed (the paper's Figure 2 metric)."""
        lookups = self.llc + self.dram
        return self.dram / lookups if lookups else 0.0

    @property
    def l1_miss_rate(self):
        """Fraction of L1 lookups that missed."""
        return (self.total - self.l1) / self.total if self.total else 0.0

    def merged(self, other):
        """Element-wise sum with ``other``."""
        return ServiceCounts(
            self.l1 + other.l1,
            self.l2 + other.l2,
            self.llc + other.llc,
            self.dram + other.dram,
        )

    def as_dict(self):
        """Plain-dict view for reports."""
        return {"l1": self.l1, "l2": self.l2, "llc": self.llc, "dram": self.dram}


@dataclass
class MemoryTraffic:
    """DRAM line traffic (64 B lines unless configured otherwise)."""

    reads: int = 0
    writes: int = 0
    prefetch_reads: int = 0
    line_bytes: int = 64

    @property
    def total_lines(self):
        """All DRAM line transfers."""
        return self.reads + self.writes + self.prefetch_reads

    @property
    def total_bytes(self):
        """All DRAM traffic in bytes."""
        return self.total_lines * self.line_bytes

    def merged(self, other):
        """Element-wise sum with ``other`` (line sizes must match)."""
        if self.line_bytes != other.line_bytes:
            raise ValueError("cannot merge traffic with differing line sizes")
        return MemoryTraffic(
            self.reads + other.reads,
            self.writes + other.writes,
            self.prefetch_reads + other.prefetch_reads,
            self.line_bytes,
        )
