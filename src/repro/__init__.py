"""repro: a Python reproduction of COBRA (HPCA 2022).

"Improving Locality of Irregular Updates with Hardware Assisted
Propagation Blocking" — software Propagation Blocking, the COBRA
architecture model, every substrate they run on (cache simulator, core
model, DES eviction model, graph/sparse inputs, nine kernels), and a
harness that regenerates every figure and table of the paper's evaluation.

Quick tour::

    from repro.pb import PropagationBlocker          # software PB
    from repro.core import CobraConfig, CobraMachine  # the contribution
    from repro.harness import Runner                  # experiments

See README.md and DESIGN.md for the full map.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
