"""A minimal generator-based discrete-event simulation kernel.

Processes are Python generators that yield *effects*; the kernel resumes
them when the effect completes:

* ``Timeout(dt)`` — resume after ``dt`` simulated time units,
* ``queue.put(item)`` — enqueue, blocking while the queue is full,
* ``queue.get()`` — dequeue, blocking while the queue is empty (the
  dequeued item is sent back into the generator).

This is the substrate for the COBRA eviction-buffer model (Figure 13a),
kept deliberately small and fully deterministic: ties in event time resolve
in scheduling order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["Timeout", "Queue", "Simulator"]


@dataclass(frozen=True)
class Timeout:
    """Effect: suspend the yielding process for ``duration`` time units."""

    duration: float

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError("timeout duration must be non-negative")


class _Put:
    __slots__ = ("queue", "item")

    def __init__(self, queue, item):
        self.queue = queue
        self.item = item


class _Get:
    __slots__ = ("queue",)

    def __init__(self, queue):
        self.queue = queue


class Queue:
    """A bounded FIFO connecting processes.

    ``capacity=None`` means unbounded. Use via ``yield queue.put(item)`` and
    ``item = yield queue.get()``.
    """

    def __init__(self, capacity=None, name="queue"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 (or None)")
        self.capacity = capacity
        self.name = name
        self.items = []
        self.put_waiters = []  # (process, item)
        self.get_waiters = []  # process
        self.max_occupancy = 0

    def put(self, item):
        """Effect object for enqueuing ``item``."""
        return _Put(self, item)

    def get(self):
        """Effect object for dequeuing the oldest item."""
        return _Get(self)

    @property
    def is_full(self):
        """True when at capacity."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def __len__(self):
        return len(self.items)


class Simulator:
    """Event loop: owns simulated time and process scheduling."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0
        self._active = 0

    def process(self, generator):
        """Register ``generator`` as a process starting at the current time."""
        self._active += 1
        self._schedule(0.0, generator, None)
        return generator

    def _schedule(self, delay, process, value):
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, process, value))

    def _resume(self, process, value):
        try:
            effect = process.send(value)
        except StopIteration:
            self._active -= 1
            return
        self._dispatch(process, effect)

    def _dispatch(self, process, effect):
        if isinstance(effect, Timeout):
            self._schedule(effect.duration, process, None)
        elif isinstance(effect, _Put):
            queue = effect.queue
            if queue.is_full:
                queue.put_waiters.append((process, effect.item))
            else:
                self._complete_put(queue, process, effect.item)
        elif isinstance(effect, _Get):
            queue = effect.queue
            if queue.items:
                item = queue.items.pop(0)
                self._release_put_waiter(queue)
                self._schedule(0.0, process, item)
            else:
                queue.get_waiters.append(process)
        else:
            raise TypeError(f"process yielded unknown effect {effect!r}")

    def _complete_put(self, queue, process, item):
        if queue.get_waiters:
            getter = queue.get_waiters.pop(0)
            self._schedule(0.0, getter, item)
        else:
            queue.items.append(item)
            queue.max_occupancy = max(queue.max_occupancy, len(queue.items))
        self._schedule(0.0, process, None)

    def _release_put_waiter(self, queue):
        if queue.put_waiters and not queue.is_full:
            putter, item = queue.put_waiters.pop(0)
            self._complete_put(queue, putter, item)

    def run(self, until=None):
        """Run until no events remain (or simulated time passes ``until``)."""
        heap = self._heap
        while heap:
            time, _seq, process, value = heapq.heappop(heap)
            if until is not None and time > until:
                heapq.heappush(heap, (time, _seq, process, value))
                break
            self.now = time
            self._resume(process, value)
        return self.now

    @property
    def active_processes(self):
        """Processes registered and not yet finished."""
        return self._active
