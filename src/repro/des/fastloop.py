"""Flattened event loop for the eviction-buffer DES (Figure 13a).

The generator engine (:mod:`repro.des.engine`) spends most of its time in
scheduling machinery: ``generator.send`` frames, frozen-dataclass
``Timeout`` construction, ``isinstance`` effect dispatch, and heap pushes
of comparison-heavy tuples. The eviction pipeline, however, has exactly
four processes (core, two binning engines, memory writer) connected by
three single-producer/single-consumer FIFOs — so this module replays the
same model as explicit state machines driven by a four-slot scheduler
(linear argmin over at most four runnable processes replaces the heap).

Bit identity with the generator engine is by construction, not accident:
every scheduling decision replicates :class:`~repro.des.engine.Simulator`
exactly — one global sequence number incremented per schedule call, events
ordered by ``(time, seq)``, a completed put scheduling the waiting getter
before the putter, queue ``max_occupancy`` growing only when an item is
appended (not when handed directly to a waiting getter), and stall time
accumulated as ``now - put_start`` with the identical float-add chains.
``tests/des/test_fastloop.py`` asserts bit-identical results — including
final counter bytes — against :meth:`EvictionBufferModel.run_reference`
(the retained generator-engine oracle) over random, bursty, and
hypothesis-generated traces.

The loop is array-flat where it pays: per-buffer fill state lives in flat
integer lists indexed by buffer id rather than the reference model's
dicts, and the trace is consumed from a plain int list. The payload lines
that travel through the FIFOs stay small Python lists, mirroring the
object flow of the reference model.

Like the batched cache engine, the loop dispatches through the
``REPRO_KERNEL_BACKEND`` tiers: when a compiled tier is selected and the
``cnative`` library is available, the whole schedule runs as one C call
(``eviction_pipeline_replay`` in :mod:`repro.cache.kernels.cnative`,
fixed-size line rows copied by value between buffer stores and FIFO
rings); otherwise the Python state machines below run. Both are
bit-identical to the generator oracle.
"""

from __future__ import annotations

__all__ = ["SCALAR_ORACLE", "simulate_eviction_pipeline"]

#: Scalar twin this loop is equivalence-tested against (the
#: ``backend-pairing`` lint rule cross-checks that such a test exists).
SCALAR_ORACLE = "Simulator"

# Process ids, in the reference model's registration order (their initial
# wakeups take sequence numbers 1..4 exactly as Simulator.process does).
_CORE, _ENG1, _ENG2, _MEM = 0, 1, 2, 3

# Per-process resume states.
_START, _AFTER_TIMEOUT, _AFTER_PUT, _AFTER_GET = 0, 1, 2, 3


def simulate_eviction_pipeline(indices, cfg, backend=None):
    """Run the eviction-pipeline DES over ``indices`` (int list/array).

    Returns ``(total_cycles, stall_cycles, evictions, max_occupancy)``
    where ``evictions`` is ``[l1, l2, llc]`` and ``max_occupancy`` is
    ``[l1_evict, l2_evict, mem]`` — bit-identical to driving
    :class:`~repro.des.engine.Simulator` with the reference processes.

    ``backend`` follows :func:`repro.cache.kernels.select_backend`
    semantics (``None``/``"auto"`` reads the ``REPRO_KERNEL_BACKEND``
    knob). Any compiled tier runs the C loop when available; ``"numpy"``
    forces the Python state machines.
    """
    from repro.cache import kernels as kernel_backends

    resolved = kernel_backends.select_backend(backend)
    if resolved != "numpy" and kernel_backends.cnative_available():
        from repro.cache.kernels import cnative

        native = cnative.eviction_pipeline_native(indices, cfg)
        if native is not None:
            return native
    trace = indices.tolist() if hasattr(indices, "tolist") else list(indices)
    n = len(trace)
    r1 = cfg.bin_range(cfg.l1_buffers)
    r2 = cfg.bin_range(cfg.l2_buffers)
    r3 = cfg.bin_range(cfg.llc_buffers)
    per_line = cfg.tuples_per_line
    core_dt = cfg.core_cycles_per_tuple
    engine_dt = cfg.engine_cycles_per_tuple
    mem_dt = cfg.mem_cycles_per_line

    # Three FIFOs: 0 = L1->L2, 1 = L2->LLC, 2 = LLC->MEM. Single producer
    # and single consumer each, so the waiter lists of the reference model
    # collapse to one optional waiting putter / getter per queue.
    capacity = [cfg.l1_evict_queue, cfg.l2_evict_queue, cfg.mem_queue]
    items = [[], [], []]
    put_waiter = [None, None, None]  # (pid, line) or None
    get_waiter = [-1, -1, -1]  # pid or -1
    max_occ = [0, 0, 0]

    # Four-slot scheduler: each process has at most one pending event.
    run_time = [0.0, 0.0, 0.0, 0.0]
    run_seq = [1, 2, 3, 4]  # initial wakeups, registration order
    run_val = [None, None, None, None]
    runnable = [True, True, True, True]
    state = [_START, _START, _START, _START]
    seq = 4
    now = 0.0

    # Flat per-buffer fill state (count per buffer id; line contents are
    # the lists that travel through the FIFOs, as in the reference model).
    core_count = [0] * cfg.l1_buffers
    core_lines = [None] * cfg.l1_buffers
    eng_count = ([0] * cfg.l2_buffers, [0] * cfg.llc_buffers)
    eng_lines = ([None] * cfg.l2_buffers, [None] * cfg.llc_buffers)
    eng_range = (r2, r3)
    eng_in = (0, 1)
    eng_out = (1, 2)
    evictions = [0, 0, 0]
    stall = 0.0
    core_pos = 0
    core_put_start = 0.0
    eng_line = [None, None]  # line being unpacked by each engine
    eng_pos = [0, 0]

    # --- scheduling primitives, replicated from Simulator -------------- #

    def schedule(pid, delay, value):
        nonlocal seq
        seq += 1
        run_time[pid] = now + delay
        run_seq[pid] = seq
        run_val[pid] = value
        runnable[pid] = True

    def complete_put(queue, pid, line):
        getter = get_waiter[queue]
        if getter >= 0:
            get_waiter[queue] = -1
            schedule(getter, 0.0, line)
        else:
            queued = items[queue]
            queued.append(line)
            if len(queued) > max_occ[queue]:
                max_occ[queue] = len(queued)
        schedule(pid, 0.0, None)

    def do_put(queue, pid, line):
        if len(items[queue]) >= capacity[queue]:
            put_waiter[queue] = (pid, line)
        else:
            complete_put(queue, pid, line)

    def do_get(queue, pid):
        queued = items[queue]
        if queued:
            line = queued.pop(0)
            waiter = put_waiter[queue]
            if waiter is not None and len(queued) < capacity[queue]:
                put_waiter[queue] = None
                complete_put(queue, waiter[0], waiter[1])
            schedule(pid, 0.0, line)
        else:
            get_waiter[queue] = pid

    # --- process continuations ----------------------------------------- #

    def core_advance():
        if core_pos < n:
            schedule(_CORE, core_dt, None)
            state[_CORE] = _AFTER_TIMEOUT

    def resume_core(value):
        nonlocal core_pos, core_put_start, stall
        if state[_CORE] == _AFTER_TIMEOUT:
            idx = trace[core_pos]
            core_pos += 1
            buffer_id = idx // r1
            line = core_lines[buffer_id]
            if line is None:
                line = core_lines[buffer_id] = []
            line.append(idx)
            count = core_count[buffer_id] + 1
            if count == per_line:
                evictions[0] += 1
                core_count[buffer_id] = 0
                core_lines[buffer_id] = []
                core_put_start = now
                state[_CORE] = _AFTER_PUT
                do_put(0, _CORE, line)
            else:
                core_count[buffer_id] = count
                core_advance()
        elif state[_CORE] == _AFTER_PUT:
            stall += now - core_put_start
            core_advance()
        else:  # _START: first wakeup enters the loop
            core_advance()

    def resume_engine(pid, value):
        eng = pid - _ENG1
        st = state[pid]
        if st == _AFTER_GET:
            eng_line[eng] = value
            eng_pos[eng] = 0
            schedule(pid, engine_dt, None)
            state[pid] = _AFTER_TIMEOUT
            return
        if st == _AFTER_TIMEOUT:
            line = eng_line[eng]
            idx = line[eng_pos[eng]]
            eng_pos[eng] += 1
            buffer_id = idx // eng_range[eng]
            counts = eng_count[eng]
            lines = eng_lines[eng]
            target = lines[buffer_id]
            if target is None:
                target = lines[buffer_id] = []
            target.append(idx)
            count = counts[buffer_id] + 1
            if count == per_line:
                evictions[1 + eng] += 1
                counts[buffer_id] = 0
                lines[buffer_id] = []
                state[pid] = _AFTER_PUT
                do_put(eng_out[eng], pid, target)
                return
            counts[buffer_id] = count
        # _AFTER_PUT, _START, or the tail of _AFTER_TIMEOUT: continue the
        # unpack loop, or block on the next line.
        if st != _START and eng_pos[eng] < len(eng_line[eng]):
            schedule(pid, engine_dt, None)
            state[pid] = _AFTER_TIMEOUT
        else:
            state[pid] = _AFTER_GET
            do_get(eng_in[eng], pid)

    def resume_mem(value):
        if state[_MEM] == _AFTER_GET:
            schedule(_MEM, mem_dt, None)
            state[_MEM] = _AFTER_TIMEOUT
        else:  # _START or _AFTER_TIMEOUT: wait for the next line
            state[_MEM] = _AFTER_GET
            do_get(2, _MEM)

    # --- event loop ----------------------------------------------------- #

    while True:
        pid = -1
        best_time = 0.0
        best_seq = 0
        for candidate in (0, 1, 2, 3):
            if runnable[candidate]:
                t = run_time[candidate]
                if pid < 0 or t < best_time or (
                    t == best_time and run_seq[candidate] < best_seq
                ):
                    pid = candidate
                    best_time = t
                    best_seq = run_seq[candidate]
        if pid < 0:
            break
        runnable[pid] = False
        now = best_time
        value = run_val[pid]
        run_val[pid] = None
        if pid == _CORE:
            resume_core(value)
        elif pid == _MEM:
            resume_mem(value)
        else:
            resume_engine(pid, value)

    return now, stall, evictions, max_occ
