"""DES model of COBRA's eviction buffers (Section V-D, Figure 13a).

Models the Binning-phase pipeline: the core appends tuples to L1
C-Buffers; a full C-Buffer line enters the finite L1→L2 eviction FIFO,
where a binning engine unpacks it and scatters tuples into L2 C-Buffers;
full L2 C-Buffer lines flow through the L2→LLC FIFO to the LLC, and full
LLC C-Buffers are written to in-memory bins. The core *stalls* when it must
evict into a full L1→L2 FIFO — the quantity Figure 13a reports as a
function of FIFO size. Unlike the Little's-law estimate, the DES consumes a
real tuple trace, so input-specific eviction bursts are captured.

:meth:`EvictionBufferModel.run` executes the flattened event loop
(:mod:`repro.des.fastloop`), which replays the identical schedule without
generator/heap machinery. The original generator-engine formulation is
retained verbatim as :meth:`EvictionBufferModel.run_reference` — it is the
readable statement of the model and the oracle the fast loop is
bit-identity-tested against (``tests/des/test_fastloop.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import as_index_array, check_positive
from repro.des import fastloop
from repro.des.engine import Queue, Simulator, Timeout

__all__ = ["EvictionModelConfig", "EvictionModelResult", "EvictionBufferModel"]


@dataclass(frozen=True)
class EvictionModelConfig:
    """Parameters of the eviction-pipeline model.

    Time is in core cycles. ``core_cycles_per_tuple`` includes the streaming
    work (edge loads) between consecutive ``binupdate`` instructions;
    ``engine_cycles_per_tuple`` is the fixed-function scatter rate (the
    engine inserts two tuples per cycle by default).
    """

    num_indices: int
    l1_buffers: int = 32
    l2_buffers: int = 256
    llc_buffers: int = 2048
    tuples_per_line: int = 8
    l1_evict_queue: int = 4
    l2_evict_queue: int = 8
    mem_queue: int = 8
    core_cycles_per_tuple: float = 1.5
    engine_cycles_per_tuple: float = 0.5
    mem_cycles_per_line: float = 4.0

    def __post_init__(self):
        check_positive("num_indices", self.num_indices)
        for name in ("l1_buffers", "l2_buffers", "llc_buffers", "tuples_per_line",
                     "l1_evict_queue", "l2_evict_queue", "mem_queue"):
            check_positive(name, getattr(self, name))
        if not self.l1_buffers <= self.l2_buffers <= self.llc_buffers:
            raise ValueError("buffer counts must grow down the hierarchy")

    def bin_range(self, buffers):
        """Indices mapped to one C-Buffer at a level with ``buffers`` buffers."""
        return max(1, -(-self.num_indices // buffers))  # ceil division


@dataclass
class EvictionModelResult:
    """Outputs of one DES run."""

    total_cycles: float
    core_stall_cycles: float
    tuples: int
    evictions: dict = field(default_factory=dict)
    max_queue_occupancy: dict = field(default_factory=dict)

    @property
    def stall_fraction(self):
        """Fraction of execution the core spent stalled on a full FIFO."""
        return self.core_stall_cycles / self.total_cycles if self.total_cycles else 0.0


class EvictionBufferModel:
    """Runs the eviction-pipeline DES over a tuple index trace."""

    def __init__(self, config: EvictionModelConfig):
        self.config = config

    def run(self, indices) -> EvictionModelResult:
        """Simulate binning the given tuple ``indices`` (1-D int array).

        Runs the flattened event loop; bit-identical to
        :meth:`run_reference` by construction and by test.
        """
        cfg = self.config
        indices = as_index_array(indices)
        if len(indices) and indices.max() >= cfg.num_indices:
            raise ValueError("trace contains indices beyond num_indices")

        total, stall, evictions, max_occ = fastloop.simulate_eviction_pipeline(
            indices, cfg
        )
        return EvictionModelResult(
            total_cycles=total,
            core_stall_cycles=stall,
            tuples=len(indices),
            evictions={
                "l1": evictions[0],
                "l2": evictions[1],
                "llc": evictions[2],
            },
            max_queue_occupancy={
                "l1_evict": max_occ[0],
                "l2_evict": max_occ[1],
                "mem": max_occ[2],
            },
        )

    def run_reference(self, indices) -> EvictionModelResult:
        """Generator-engine oracle for :meth:`run` (original formulation)."""
        cfg = self.config
        indices = as_index_array(indices)
        if len(indices) and indices.max() >= cfg.num_indices:
            raise ValueError("trace contains indices beyond num_indices")

        sim = Simulator()
        fifo_l1 = Queue(cfg.l1_evict_queue, "L1->L2")
        fifo_l2 = Queue(cfg.l2_evict_queue, "L2->LLC")
        fifo_mem = Queue(cfg.mem_queue, "LLC->MEM")
        stats = {"stall": 0.0, "evict_l1": 0, "evict_l2": 0, "evict_llc": 0}

        r1 = cfg.bin_range(cfg.l1_buffers)
        r2 = cfg.bin_range(cfg.l2_buffers)
        r3 = cfg.bin_range(cfg.llc_buffers)
        per_line = cfg.tuples_per_line

        def core():
            buffers = {}
            trace = indices.tolist()
            for idx in trace:
                yield Timeout(cfg.core_cycles_per_tuple)
                buffer_id = idx // r1
                line = buffers.setdefault(buffer_id, [])
                line.append(idx)
                if len(line) == per_line:
                    stats["evict_l1"] += 1
                    buffers[buffer_id] = []
                    start = sim.now
                    yield fifo_l1.put(line)
                    stats["stall"] += sim.now - start

        def engine(in_fifo, out_fifo, bin_range, evict_key):
            buffers = {}
            while True:
                line = yield in_fifo.get()
                for idx in line:
                    yield Timeout(cfg.engine_cycles_per_tuple)
                    buffer_id = idx // bin_range
                    target = buffers.setdefault(buffer_id, [])
                    target.append(idx)
                    if len(target) == per_line:
                        stats[evict_key] += 1
                        buffers[buffer_id] = []
                        yield out_fifo.put(target)

        def memory_writer():
            while True:
                yield fifo_mem.get()
                yield Timeout(cfg.mem_cycles_per_line)

        sim.process(core())
        sim.process(engine(fifo_l1, fifo_l2, r2, "evict_l2"))
        sim.process(engine(fifo_l2, fifo_mem, r3, "evict_llc"))
        sim.process(memory_writer())
        total = sim.run()

        return EvictionModelResult(
            total_cycles=total,
            core_stall_cycles=stats["stall"],
            tuples=len(indices),
            evictions={
                "l1": stats["evict_l1"],
                "l2": stats["evict_l2"],
                "llc": stats["evict_llc"],
            },
            max_queue_occupancy={
                "l1_evict": fifo_l1.max_occupancy,
                "l2_evict": fifo_l2.max_occupancy,
                "mem": fifo_mem.max_occupancy,
            },
        )


def littles_law_queue_estimate(config: EvictionModelConfig):
    """Steady-state Little's-law estimate of L1→L2 FIFO occupancy.

    The paper derives a 14-entry estimate this way and then shows the DES
    (which sees bursts) needs 32 entries; this helper reproduces the
    estimate side of that comparison.
    """
    arrival_rate = 1.0 / (config.tuples_per_line * config.core_cycles_per_tuple)
    residence = config.tuples_per_line * config.engine_cycles_per_tuple
    return arrival_rate * residence


__all__.append("littles_law_queue_estimate")
