"""Discrete-event simulation: generic kernel + COBRA eviction-buffer model."""

from repro.des.engine import Queue, Simulator, Timeout
from repro.des.eviction_model import (
    EvictionBufferModel,
    EvictionModelConfig,
    EvictionModelResult,
    littles_law_queue_estimate,
)

__all__ = [
    "EvictionBufferModel",
    "EvictionModelConfig",
    "EvictionModelResult",
    "Queue",
    "Simulator",
    "Timeout",
    "littles_law_queue_estimate",
]
