"""CSR-Segmenting (1-D graph tiling) baseline for Figure 15.

CSR-Segmenting splits the graph into segments by *source* vertex range so
that, while processing one segment, all irregular reads of source data fall
in a cache-sized range. Per-segment partial results are emitted
sequentially and combined by a cache-friendly merge pass. Compared to PB it
avoids the binning pass per iteration, but pays a heavy one-time
preprocessing cost to build per-segment subgraphs — the trade-off
Figure 15 quantifies for Pagerank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.graphs.csr import CSRGraph

__all__ = ["GraphSegment", "SegmentedGraph"]


@dataclass(frozen=True)
class GraphSegment:
    """Edges whose sources fall in ``[src_lo, src_hi)``, grouped by dst.

    ``dsts`` are the distinct destinations touched by this segment;
    destination ``dsts[i]``'s sources are
    ``srcs[dst_offsets[i]:dst_offsets[i + 1]]``.
    """

    src_lo: int
    src_hi: int
    dsts: np.ndarray
    dst_offsets: np.ndarray
    srcs: np.ndarray

    @property
    def num_edges(self):
        """Edges in the segment."""
        return len(self.srcs)

    @property
    def num_partials(self):
        """Partial results the segment emits (distinct destinations)."""
        return len(self.dsts)


class SegmentedGraph:
    """A CSR graph partitioned into source-range segments."""

    def __init__(self, graph: CSRGraph, segment_range):
        check_positive("segment_range", segment_range)
        self.graph = graph
        self.segment_range = segment_range
        self.segments = self._build_segments()

    def _build_segments(self):
        graph = self.graph
        srcs = graph.edge_sources()
        dsts = graph.neighbors
        segments = []
        for lo in range(0, graph.num_vertices, self.segment_range):
            hi = min(lo + self.segment_range, graph.num_vertices)
            edge_lo, edge_hi = graph.offsets[lo], graph.offsets[hi]
            seg_srcs = srcs[edge_lo:edge_hi]
            seg_dsts = dsts[edge_lo:edge_hi]
            order = np.argsort(seg_dsts, kind="stable")
            sorted_dsts = seg_dsts[order]
            uniq, counts = np.unique(sorted_dsts, return_counts=True)
            offsets = np.zeros(len(uniq) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            segments.append(
                GraphSegment(lo, hi, uniq, offsets, seg_srcs[order])
            )
        return segments

    @property
    def num_segments(self):
        """Number of source-range segments."""
        return len(self.segments)

    @property
    def total_partials(self):
        """Total (dst, value) partials the merge phase streams."""
        return sum(segment.num_partials for segment in self.segments)

    def scatter_sum(self, source_values):
        """One segmented gather-and-merge pass: y[d] = Σ src→d values[src].

        Equivalent to the baseline's irregular scatter but executed
        segment-by-segment with cache-bounded source reads, then merged.
        """
        source_values = np.asarray(source_values, dtype=np.float64)
        if source_values.shape != (self.graph.num_vertices,):
            raise ValueError("source_values must have one entry per vertex")
        result = np.zeros(self.graph.num_vertices)
        for segment in self.segments:
            # Per-destination partial sums within the segment.
            sums = np.add.reduceat(
                source_values[segment.srcs],
                segment.dst_offsets[:-1],
            ) if segment.num_edges else np.empty(0)
            # Merge phase: partials are (dst, value) streams.
            result[segment.dsts] += sums
        return result

    def preprocessing_edge_passes(self):
        """Edge-stream passes the segment build costs (for Figure 15).

        Building the per-segment CSC requires counting per-(segment, dst)
        degrees and then scattering edges — two passes over the edge list
        with irregular accesses, matching the shaded init overhead in
        Figure 15.
        """
        return 2
