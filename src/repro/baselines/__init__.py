"""Comparison systems: PHI (hardware coalescing) and CSR-Segmenting."""

from repro.baselines.phi import PhiMachine
from repro.baselines.segmenting import GraphSegment, SegmentedGraph

__all__ = ["GraphSegment", "PhiMachine", "SegmentedGraph"]
