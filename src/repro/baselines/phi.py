"""PHI baseline (Mukkara et al.): hierarchical commutative coalescing.

PHI adds reduction units at every private cache level and an atomic
reduction unit at the LLC, coalescing commutative updates wherever they
are buffered. Following Section VII-C we model an *idealized* PHI with
zero buffer-management overhead. Two properties distinguish it from COBRA:

* it only works for commutative updates, and
* its in-memory bin count is the software compromise (PHI does not solve
  the bin-count tension), so its Accumulate runs at PB-SW's locality.
"""

from __future__ import annotations

from repro.core.comm import CoalescingCBufferArray
from repro.core.config import LevelBinning
from repro.core.machine import CobraMachine
from repro.pb.bins import BinSpec

__all__ = ["PhiMachine"]


class PhiMachine(CobraMachine):
    """Functional PHI model: coalescing C-Buffers at L1, L2, and LLC.

    ``memory_spec`` fixes the in-memory bin layout (normally the software
    compromise plan); the L1/L2 buffer geometry follows the machine's cache
    capacities like COBRA's.
    """

    def __init__(self, config, memory_spec: BinSpec, reduce_op="add"):
        if memory_spec.num_indices != config.num_indices:
            raise ValueError("memory_spec must cover the config's namespace")
        self.memory_spec = memory_spec
        self.reduce_op = reduce_op
        super().__init__(config)

    def _level_binnings(self):
        l1 = self.config.level_binning("l1")
        l2 = self.config.level_binning("l2")
        # Memory bins (and hence the LLC reduction buffers) follow the
        # software-chosen compromise spec rather than LLC capacity.
        bin_range = max(self.memory_spec.bin_range, 1)
        if bin_range > l2.bin_range:
            # Keep ranges monotone down the hierarchy for the scatter logic.
            l2 = LevelBinning(
                "l2",
                l2.reserved_ways,
                l2.ways_used,
                -(-self.config.num_indices // bin_range),
                bin_range,
            )
            l1 = l1 if l1.bin_range >= bin_range else LevelBinning(
                "l1", l1.reserved_ways, l1.ways_used, l2.num_buffers, bin_range
            )
        llc = LevelBinning(
            "llc",
            self.config.llc_reserved_ways,
            0,
            self.memory_spec.num_bins,
            bin_range,
        )
        return [l1, l2, llc]

    def _make_level(self, binning, tuples_per_line, name):
        return CoalescingCBufferArray(
            binning.num_buffers,
            binning.bin_range,
            tuples_per_line,
            self.reduce_op,
            name=name,
        )

    @property
    def coalesced_per_level(self):
        """Updates merged at each level (PHI coalesces ~97% at the LLC)."""
        return {level.name: level.coalesced for level in self.levels}

    @property
    def coalesced(self):
        """Total updates merged across the hierarchy."""
        return sum(level.coalesced for level in self.levels)
