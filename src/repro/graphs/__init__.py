"""Graph substrate: edge lists, CSR, synthetic generators, CSR builder."""

from repro.graphs.builder import (
    build_csr,
    count_degrees,
    populate_neighbors,
    prefix_sum,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.generators import GENERATORS, mesh2d, rmat, uniform_random

__all__ = [
    "CSRGraph",
    "EdgeList",
    "GENERATORS",
    "build_csr",
    "count_degrees",
    "mesh2d",
    "populate_neighbors",
    "prefix_sum",
    "rmat",
    "uniform_random",
]
