"""Digest-pinned ingestion of real-world graphs (SNAP / Matrix Market).

The synthetic suite covers the paper's degree-distribution *families*;
real road/social/web graphs have skew none of the generators reproduce
(see PAPERS.md: GAP, "Making Caches Work for Graph Analytics"). This
module brings real edge lists into the workload registry under the same
determinism contract as everything else:

* every dataset is declared as a :class:`DatasetSpec` with a **pinned
  sha256** — a byte-for-byte identity, verified on every load, so two
  machines ingesting ``KARATE`` provably simulate the same updates;
* files resolve from the vendored fixtures shipped with the package
  (offline CI path), then the local dataset cache (``$REPRO_DATASET_DIR``,
  location-only — see :mod:`repro.analysis.digest_exempt`), and only then
  the network (``urllib``, checksum-verified before the file is adopted);
* parsed edge lists are deterministic functions of the file bytes: SNAP
  vertex ids are compacted in first-appearance order, Matrix Market
  symmetric patterns are expanded to both directions in file order.

Nothing here reaches the result-cache digest directly: a dataset's
identity in ``cache_key``/``run_digest`` is its registry input name plus
its natural scale, and the sha256 pin guarantees that name always maps to
the same bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.graphs.edgelist import EdgeList

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_dir",
    "fetch",
    "load_dataset",
    "natural_scale",
    "parse_matrix_market",
    "parse_snap",
    "sha256_path",
]

#: Subdirectory of the package holding vendored fixture datasets.
_VENDOR_DIR = Path(__file__).resolve().parent / "data"

#: Formats the ingester understands.
FORMAT_MATRIX_MARKET = "matrix-market"
FORMAT_SNAP = "snap"


@dataclass(frozen=True)
class DatasetSpec:
    """One ingestible dataset: where it lives and what its bytes must be."""

    #: Registry input name (``KARATE``, ``FLORENT``, ...).
    name: str
    #: File name under the vendor dir / dataset cache.
    filename: str
    #: ``matrix-market`` or ``snap``.
    format: str
    #: Pinned sha256 of the raw file bytes; verified on every load.
    sha256: str
    #: One-line provenance note.
    description: str
    #: Download URL for non-vendored datasets (``None`` => vendored only).
    url: Optional[str] = None


#: Every ingestible dataset, keyed by registry input name. Both entries
#: are vendored fixtures so the ingestion path (and CI) works offline;
#: adding a remote SNAP dataset is one DatasetSpec with a ``url``.
DATASETS = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="KARATE",
            filename="karate.mtx",
            format=FORMAT_MATRIX_MARKET,
            sha256=(
                "4936d019e0db554356cf515407af0b25ebcc4989304e40a9ab3299af46c38cef"
            ),
            description=(
                "Zachary karate club (34 vertices, 156 directed edges after "
                "symmetric expansion) — real social network, Matrix Market"
            ),
        ),
        DatasetSpec(
            name="FLORENT",
            filename="florentine.snap",
            format=FORMAT_SNAP,
            sha256=(
                "81314e004f59ba7aa5006faad1fd3427e8b2b3fe034a68efa02f64318a5b7463"
            ),
            description=(
                "Padgett Florentine families marriage network (15 vertices, "
                "20 edges) — real social network, SNAP edge-list"
            ),
        ),
    )
}


def sha256_path(path):
    """Hex sha256 of a file's bytes (streamed, so large graphs are fine)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def dataset_dir():
    """The local dataset cache directory (created on demand).

    ``$REPRO_DATASET_DIR`` overrides the location; the default lives next
    to the result cache (``benchmarks/results/.datasets/`` in a checkout,
    the XDG user cache for installed copies). Location only: datasets are
    identified by their sha256 pin regardless of where the file sits.
    """
    from repro.harness import knobs
    from repro.harness.resultcache import default_cache_dir

    override = knobs.read("REPRO_DATASET_DIR")
    if override:
        directory = Path(override)
    else:
        directory = default_cache_dir().parent / ".datasets"
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def _verified(path, spec):
    """``path`` if it exists and matches the pin, else ``None``."""
    path = Path(path)
    if not path.is_file():
        return None
    if sha256_path(path) != spec.sha256:
        raise ValueError(
            f"dataset {spec.name}: {path} does not match its pinned sha256 "
            f"({spec.sha256[:12]}...); refusing to ingest unverified bytes"
        )
    return path


def fetch(name, environ_url=None):
    """Resolve dataset ``name`` to a checksum-verified local file path.

    Resolution order: the vendored fixture shipped with the package, the
    local dataset cache, then a fresh download of ``spec.url`` (or
    ``environ_url``, for tests) into the cache. Every candidate is
    verified against the pinned sha256 before being returned; a download
    whose bytes do not match the pin is discarded with a ``ValueError``.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(
            f"unknown dataset {name!r}; registered datasets: {known}"
        ) from None
    vendored = _verified(_VENDOR_DIR / spec.filename, spec)
    if vendored is not None:
        return vendored
    cached = _verified(dataset_dir() / spec.filename, spec)
    if cached is not None:
        return cached
    url = environ_url if environ_url is not None else spec.url
    if url is None:
        raise FileNotFoundError(
            f"dataset {spec.name}: no vendored or cached copy of "
            f"{spec.filename} and no download URL is registered"
        )
    import urllib.request

    target = dataset_dir() / spec.filename
    partial = target.with_suffix(target.suffix + ".part")
    with urllib.request.urlopen(url) as response, open(partial, "wb") as out:
        while True:
            chunk = response.read(1 << 20)
            if not chunk:
                break
            out.write(chunk)
    if sha256_path(partial) != spec.sha256:
        partial.unlink()
        raise ValueError(
            f"dataset {spec.name}: download from {url} does not match the "
            f"pinned sha256 ({spec.sha256[:12]}...); discarded"
        )
    partial.replace(target)
    return target


def parse_matrix_market(text):
    """Parse a Matrix Market ``coordinate`` file into an :class:`EdgeList`.

    Supports the ``pattern`` and value-carrying coordinate variants
    (values are ignored — the kernels consume structure only) with
    ``general`` or ``symmetric`` symmetry. Symmetric entries are expanded
    to both directions, in file order, skipping self-loop duplicates.
    Indices are 1-based per the format and shifted to 0-based.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("%%MatrixMarket"):
        raise ValueError("not a Matrix Market file (missing %%MatrixMarket)")
    header = lines[0].split()
    if len(header) < 5 or header[2] != "coordinate":
        raise ValueError(
            "only Matrix Market 'coordinate' files describe edge lists"
        )
    symmetry = header[4].lower()
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported Matrix Market symmetry {symmetry!r}")
    body = [ln for ln in lines[1:] if ln.strip() and not ln.startswith("%")]
    if not body:
        raise ValueError("Matrix Market file has no size line")
    size = body[0].split()
    if len(size) != 3:
        raise ValueError(f"bad Matrix Market size line {body[0]!r}")
    rows, cols, nnz = (int(field) for field in size)
    num_vertices = max(rows, cols)
    if len(body) - 1 != nnz:
        raise ValueError(
            f"Matrix Market file declares {nnz} entries but carries "
            f"{len(body) - 1}"
        )
    src, dst = [], []
    for line in body[1:]:
        fields = line.split()
        if len(fields) < 2:
            raise ValueError(f"bad Matrix Market entry {line!r}")
        i, j = int(fields[0]) - 1, int(fields[1]) - 1
        src.append(i)
        dst.append(j)
        if symmetry == "symmetric" and i != j:
            src.append(j)
            dst.append(i)
    return EdgeList(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_vertices,
    )


def parse_snap(text):
    """Parse a SNAP edge-list file into an :class:`EdgeList`.

    Lines are ``src<ws>dst`` pairs; ``#`` lines are comments. SNAP ids
    are arbitrary (non-contiguous), so they are compacted to a dense
    0-based namespace in first-appearance order — a deterministic
    function of the file bytes.
    """
    src_raw, dst_raw = [], []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 2:
            raise ValueError(f"bad SNAP edge line {line!r}")
        src_raw.append(int(fields[0]))
        dst_raw.append(int(fields[1]))
    if not src_raw:
        raise ValueError("SNAP file carries no edges")
    compact = {}
    for vertex in [v for pair in zip(src_raw, dst_raw) for v in pair]:
        if vertex not in compact:
            compact[vertex] = len(compact)
    src = np.asarray([compact[v] for v in src_raw], dtype=np.int64)
    dst = np.asarray([compact[v] for v in dst_raw], dtype=np.int64)
    return EdgeList(src, dst, len(compact))


_PARSERS = {
    FORMAT_MATRIX_MARKET: parse_matrix_market,
    FORMAT_SNAP: parse_snap,
}

_loaded = {}


def load_dataset(name):
    """The parsed, cached :class:`EdgeList` for dataset ``name``."""
    if name not in _loaded:
        spec = DATASETS[name] if name in DATASETS else None
        path = fetch(name)
        text = Path(path).read_text("utf-8")
        _loaded[name] = _PARSERS[spec.format](text)
    return _loaded[name]


def natural_scale(edges):
    """The fixed registry scale of an ingested graph: ceil(log2(|V|)).

    Real graphs arrive at one size; their registry identity pins that
    size as an integer scale so ingested points flow through the same
    ``workload:input:scale`` cache keys, checkpoint specs, and service
    job ids as the synthetic suite.
    """
    n = max(int(edges.num_vertices), 2)
    return int(n - 1).bit_length()
