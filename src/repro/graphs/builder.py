"""Reference Edgelist-to-CSR conversion.

This is the substrate version of the conversion pipeline whose two dominant
kernels (Degree-Counting and Neighbor-Populate, Algorithm 1 in the paper)
the evaluation studies. The workload modules re-implement the kernels with
explicit access traces; this module provides the trusted functional result
they are validated against.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList

__all__ = ["count_degrees", "prefix_sum", "populate_neighbors", "build_csr"]


def count_degrees(edges: EdgeList) -> np.ndarray:
    """Out-degree of every vertex (the Degree-Counting kernel's result)."""
    return np.bincount(edges.src, minlength=edges.num_vertices).astype(np.int64)


def prefix_sum(degrees: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of ``degrees`` → the CSR offsets array (OA)."""
    offsets = np.zeros(len(degrees) + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return offsets


def populate_neighbors(edges: EdgeList, offsets: np.ndarray) -> np.ndarray:
    """Fill the neighbors array (NA) — Algorithm 1 of the paper.

    Walks the edge list in order, placing each edge's destination at the
    next free slot of its source's neighborhood. The updates to the working
    copy of ``offsets`` are *not* commutative: their order determines where
    each destination lands. Any order yields a semantically equal CSR
    (neighbor sets per vertex are identical).
    """
    cursor = offsets[:-1].copy()
    neighbors = np.empty(offsets[-1], dtype=np.int64)
    src = edges.src.tolist()
    dst = edges.dst.tolist()
    cur = cursor.tolist()
    for s, d in zip(src, dst):
        slot = cur[s]
        neighbors[slot] = d
        cur[s] = slot + 1
    return neighbors


def build_csr(edges: EdgeList) -> CSRGraph:
    """Full Edgelist-to-CSR conversion (degree count, prefix sum, populate).

    Uses a stable sort of edges by source, which produces bit-identical
    output to the sequential :func:`populate_neighbors` loop (each source's
    destinations appear in edge-list order) while staying vectorized.
    """
    degrees = count_degrees(edges)
    offsets = prefix_sum(degrees)
    order = np.argsort(edges.src, kind="stable")
    neighbors = edges.dst[order].copy()
    return CSRGraph(offsets, neighbors)
