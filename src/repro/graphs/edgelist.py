"""Edge-list graph representation.

The edge list is the raw input format for the Edgelist-to-CSR conversion
kernels that the paper studies (Degree-Counting and Neighbor-Populate), and
the substrate every synthetic generator produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_index_array, check_positive

__all__ = ["EdgeList"]


@dataclass(frozen=True)
class EdgeList:
    """An unordered list of directed edges over ``num_vertices`` vertices.

    Attributes
    ----------
    src, dst:
        int64 arrays of equal length holding edge endpoints. Order is
        arbitrary — irregularity of the downstream kernels comes precisely
        from this arbitrary ordering.
    num_vertices:
        Size of the vertex ID namespace; all endpoints are ``< num_vertices``.
    """

    src: np.ndarray
    dst: np.ndarray
    num_vertices: int

    def __post_init__(self):
        src = as_index_array(self.src, "src")
        dst = as_index_array(self.dst, "dst")
        if len(src) != len(dst):
            raise ValueError(
                f"src and dst must have equal length ({len(src)} != {len(dst)})"
            )
        check_positive("num_vertices", self.num_vertices)
        if len(src) and (src.min() < 0 or src.max() >= self.num_vertices):
            raise ValueError("src contains vertex IDs outside [0, num_vertices)")
        if len(dst) and (dst.min() < 0 or dst.max() >= self.num_vertices):
            raise ValueError("dst contains vertex IDs outside [0, num_vertices)")
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)

    @property
    def num_edges(self):
        """Number of directed edges."""
        return len(self.src)

    def reversed(self):
        """Edge list with every edge flipped (used to build the transpose)."""
        return EdgeList(self.dst.copy(), self.src.copy(), self.num_vertices)

    def shuffled(self, rng):
        """Edge list with edges in a random order (same edge set)."""
        perm = rng.permutation(self.num_edges)
        return EdgeList(self.src[perm], self.dst[perm], self.num_vertices)

    def __len__(self):
        return self.num_edges

    def __repr__(self):
        return (
            f"EdgeList(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
