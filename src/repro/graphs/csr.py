"""Compressed Sparse Row (CSR) graph representation.

Mirrors Figure 1 of the paper: an Offsets Array (OA) holding the start of
each vertex's neighborhood and a Neighbors Array (NA) holding neighbor IDs
contiguously. The CSR of the reversed edge list acts as the CSC/transpose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_index_array

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in CSR form.

    Attributes
    ----------
    offsets:
        int64 array of length ``num_vertices + 1``; vertex ``v``'s neighbors
        live in ``neighbors[offsets[v]:offsets[v + 1]]``.
    neighbors:
        int64 array of length ``num_edges`` holding destination vertex IDs.
    """

    offsets: np.ndarray
    neighbors: np.ndarray

    def __post_init__(self):
        offsets = as_index_array(self.offsets, "offsets")
        neighbors = as_index_array(self.neighbors, "neighbors")
        if len(offsets) < 1:
            raise ValueError("offsets must have at least one entry")
        if offsets[0] != 0 or offsets[-1] != len(neighbors):
            raise ValueError("offsets must start at 0 and end at len(neighbors)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        num_vertices = len(offsets) - 1
        if len(neighbors) and (
            neighbors.min() < 0 or neighbors.max() >= num_vertices
        ):
            raise ValueError("neighbors contains vertex IDs outside range")
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "neighbors", neighbors)

    @property
    def num_vertices(self):
        """Number of vertices."""
        return len(self.offsets) - 1

    @property
    def num_edges(self):
        """Number of directed edges."""
        return len(self.neighbors)

    def degree(self, vertex):
        """Out-degree of ``vertex``."""
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def degrees(self):
        """Out-degrees of all vertices as an int64 array."""
        return np.diff(self.offsets)

    def neighbors_of(self, vertex):
        """View of ``vertex``'s neighbor IDs."""
        return self.neighbors[self.offsets[vertex] : self.offsets[vertex + 1]]

    def edge_sources(self):
        """Per-edge source IDs (the expansion of the offsets array).

        ``edge_sources()[k]`` is the source of the edge whose destination is
        ``neighbors[k]``; useful for edge-parallel traversals.
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.degrees()
        )

    def transpose(self):
        """CSR of the reversed graph (i.e. the CSC of this graph)."""
        from repro.graphs.builder import build_csr
        from repro.graphs.edgelist import EdgeList

        return build_csr(
            EdgeList(self.neighbors, self.edge_sources(), self.num_vertices)
        )

    def canonical_sorted(self):
        """Copy with each vertex's neighbor list sorted ascending.

        PB reorders updates, so Neighbor-Populate under PB produces the same
        neighbor *sets* in a possibly different order; comparing canonical
        forms is how tests check semantic equality.
        """
        sorted_neighbors = self.neighbors.copy()
        offsets = self.offsets
        for v in range(self.num_vertices):
            lo, hi = offsets[v], offsets[v + 1]
            sorted_neighbors[lo:hi] = np.sort(sorted_neighbors[lo:hi])
        return CSRGraph(offsets.copy(), sorted_neighbors)

    def __repr__(self):
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
