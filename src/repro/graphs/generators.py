"""Synthetic graph generators standing in for the paper's Table III inputs.

The paper evaluates on TWIT/KRON/WEB (power-law), URND (uniform random),
and EURO/road-style (bounded-degree) graphs with 10M-100M+ vertices. We
generate scaled-down graphs with the same *degree-distribution shapes*,
since the locality phenomena PB/COBRA exploit are driven by the ratio of
irregular working set to cache capacity and by degree skew, not by absolute
size (DESIGN.md Section 4).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive, is_power_of_two, rng_from_seed
from repro.graphs.edgelist import EdgeList

__all__ = ["rmat", "uniform_random", "mesh2d", "GENERATORS"]


def rmat(num_vertices, num_edges, seed=None, a=0.57, b=0.19, c=0.19):
    """RMAT/Kronecker-style power-law graph (KRON/TWIT/WEB analog).

    Uses the standard recursive-matrix construction with GAP benchmark
    default partition probabilities (a=0.57, b=c=0.19, d=0.05), producing
    the heavy skew that makes PHI-style coalescing effective on KRON-like
    inputs (Section VII-C).

    ``num_vertices`` must be a power of two.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("num_edges", num_edges)
    if not is_power_of_two(num_vertices):
        raise ValueError("rmat requires num_vertices to be a power of two")
    if min(a, b, c) < 0 or a + b + c >= 1.0:
        raise ValueError("partition probabilities must be >= 0 and sum below 1")
    rng = rng_from_seed(seed)
    levels = int(num_vertices).bit_length() - 1
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Draw one quadrant choice per (edge, level), vectorized.
    thresholds = np.array([a, a + b, a + b + c])
    for _ in range(levels):
        draws = rng.random(num_edges)
        quadrant = np.searchsorted(thresholds, draws)
        src = (src << 1) | (quadrant >> 1)
        dst = (dst << 1) | (quadrant & 1)
    perm = rng.permutation(num_vertices)  # shuffle IDs to break locality
    return EdgeList(perm[src], perm[dst], num_vertices)


def uniform_random(num_vertices, num_edges, seed=None):
    """Uniform-random (Erdős–Rényi-style) graph — the paper's URND analog.

    Uniform degree distributions offer little coalescing opportunity, which
    is what limits PHI on URND in Figure 14.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("num_edges", num_edges)
    rng = rng_from_seed(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return EdgeList(src, dst, num_vertices)


def mesh2d(side, seed=None):
    """Bounded-degree 2-D mesh with shuffled vertex IDs (EURO/road analog).

    Every vertex connects to its 4 grid neighbors (degree <= 4, like a road
    network), but vertex IDs are randomly permuted so traversal order does
    not correlate with grid position — this keeps updates irregular while
    the *degree* distribution stays flat and bounded.
    """
    check_positive("side", side)
    rng = rng_from_seed(seed)
    num_vertices = side * side
    idx = np.arange(num_vertices, dtype=np.int64).reshape(side, side)
    right_src = idx[:, :-1].ravel()
    right_dst = idx[:, 1:].ravel()
    down_src = idx[:-1, :].ravel()
    down_dst = idx[1:, :].ravel()
    src = np.concatenate([right_src, right_dst, down_src, down_dst])
    dst = np.concatenate([right_dst, right_src, down_dst, down_src])
    perm = rng.permutation(num_vertices)
    order = rng.permutation(len(src))
    return EdgeList(perm[src][order], perm[dst][order], num_vertices)


#: Name → generator mapping used by the harness input suite.
GENERATORS = {
    "rmat": rmat,
    "uniform_random": uniform_random,
    "mesh2d": mesh2d,
}
