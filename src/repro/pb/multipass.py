"""Multi-pass radix partitioning: the software alternative to COBRA.

PB is an instance of radix partitioning (the paper's footnote 2), and the
partitioning literature it cites avoids the many-bins performance cliff in
software by partitioning in *multiple passes*: first into sqrt(B) coarse
bins (C-Buffers stay cache-resident), then refining each coarse bin into
sqrt(B) sub-bins. The price is re-reading and re-writing every tuple per
pass. COBRA's hierarchy achieves the same cache residency in one pass —
this module exists to make that trade-off measurable (see the
``test_ablation_multipass`` benchmark).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_index_array, check_power_of_two, next_power_of_two
from repro.pb.bins import BinSpec

__all__ = ["MultiPassPartitioner"]


class MultiPassPartitioner:
    """Partition updates into ``num_bins`` bins over multiple passes.

    Each pass partitions by the next group of high-order index bits; the
    final layout is identical to a single-pass :func:`bin_updates` with the
    same total bin count (stable passes compose into a stable radix sort by
    bin ID).
    """

    def __init__(self, num_indices, num_bins, passes=2):
        check_power_of_two("num_bins", num_bins)
        if passes < 1:
            raise ValueError("passes must be at least 1")
        self.num_indices = num_indices
        self.num_bins = num_bins
        self.passes = passes
        self.spec = BinSpec(
            num_indices, next_power_of_two(-(-num_indices // num_bins))
        )
        total_bits = num_bins.bit_length() - 1
        base = total_bits // passes
        remainder = total_bits % passes
        #: Bits resolved per pass (earlier passes take the extras).
        self.bits_per_pass = [
            base + (1 if i < remainder else 0) for i in range(passes)
        ]

    def pass_bin_counts(self):
        """Bins each pass partitions its input into (per parent bin)."""
        return [1 << bits for bits in self.bits_per_pass]

    def partition(self, indices, values=None):
        """Run all passes; returns (indices, values, offsets) bin-major.

        The result is identical to single-pass binning with
        ``self.spec`` — asserted by the tests — while every individual
        pass only ever appends to a cache-friendly number of buffers.
        """
        indices = as_index_array(indices)
        values_arr = None if values is None else np.asarray(values)
        order = np.arange(len(indices), dtype=np.int64)
        current = indices
        # LSD radix over bin-ID bit groups: stable passes from the least
        # significant group upward compose into a stable sort by bin ID.
        shift = self.spec.shift
        for bits in reversed(self.bits_per_pass):
            if bits == 0:
                continue
            keys = (current >> shift) & ((1 << bits) - 1)
            pass_order = np.argsort(keys, kind="stable")
            current = current[pass_order]
            order = order[pass_order]
            shift += bits
        binned_values = None if values_arr is None else values_arr[order]
        bins = self.spec.bins_of(current)
        counts = np.bincount(bins, minlength=self.spec.num_bins)
        offsets = np.zeros(self.spec.num_bins + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return current, binned_values, offsets

    def tuple_moves(self, num_updates):
        """Tuples written across all passes (the multi-pass tax).

        Single-pass binning moves each tuple once; ``passes`` passes move
        it ``passes`` times — the extra memory traffic COBRA's hierarchy
        avoids.
        """
        effective = sum(1 for bits in self.bits_per_pass if bits)
        return num_updates * max(1, effective)

    def max_live_buffers(self):
        """The largest per-pass buffer count (what must stay cache-resident)."""
        return max(self.pass_bin_counts())
