"""Bin-count planning.

Section III-C: the Binning phase wants few bins (all C-Buffers resident in
a small cache), the Accumulate phase wants many (each bin's updates fit in
the L1). Software PB must compromise; COBRA decouples the two. The planner
computes all three operating points for a given machine so the harness can
run PB-SW (compromise), PB-SW-IDEAL (each phase at its own best point), and
COBRA (accumulate-optimal bins with hardware Binning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive, next_power_of_two
from repro.cache.config import HierarchyConfig
from repro.pb.bins import BinSpec

__all__ = ["BinPlan", "auto_blocker", "plan_bins"]


@dataclass(frozen=True)
class BinPlan:
    """The three bin-count operating points for one workload/machine pair."""

    binning_best: BinSpec  # few bins: C-Buffers fit in the L1
    compromise: BinSpec  # what software PB actually picks
    accumulate_best: BinSpec  # many bins: a bin's data range fits in the L1

    def describe(self):
        """Human-readable summary for reports."""
        return (
            f"binning-best {self.binning_best.num_bins} bins / "
            f"compromise {self.compromise.num_bins} bins / "
            f"accumulate-best {self.accumulate_best.num_bins} bins"
        )


def _spec_for_max_bins(num_indices, max_bins):
    """Largest power-of-two bin count not exceeding ``max_bins`` (min 1)."""
    max_bins = max(1, max_bins)
    bins = 1 << (max_bins.bit_length() - 1)  # round down to a power of two
    bin_range = next_power_of_two(-(-num_indices // bins))
    return BinSpec(num_indices, bin_range)


def plan_bins(
    num_indices,
    element_bytes,
    config: HierarchyConfig = None,
    cbuffer_headroom=1.0,
):
    """Compute the three operating points.

    Parameters
    ----------
    num_indices:
        Size of the irregularly updated namespace.
    element_bytes:
        Size of one element of the updated data structure (determines how
        many indices of state fit in the L1 during Accumulate).
    config:
        Machine geometry (defaults to the scaled Table II machine).
    cbuffer_headroom:
        Fraction of a cache level usable by C-Buffers during Binning
        (streaming data needs the rest; 1.0 matches the paper's framing
        where streams barely pressure the buffers).
    """
    check_positive("num_indices", num_indices)
    check_positive("element_bytes", element_bytes)
    config = config or HierarchyConfig()
    line = config.line_bytes

    # Binning-best: every C-Buffer resident in L1.
    l1_buffers = int(config.l1_bytes * cbuffer_headroom) // line
    binning_best = _spec_for_max_bins(num_indices, l1_buffers)

    # Compromise: C-Buffers fill the L2 (the paper's "medium" red line in
    # Figure 4a — small enough to keep Binning off the LLC floor, as large
    # as that constraint allows to help Accumulate).
    l2_buffers = int(config.l2_bytes * cbuffer_headroom) // line
    compromise = _spec_for_max_bins(num_indices, l2_buffers)

    # Accumulate-best: one bin's updated data range fits in the L1.
    range_elems = max(1, config.l1_bytes // element_bytes)
    bin_range = 1 << (range_elems.bit_length() - 1)
    accumulate_best = BinSpec(num_indices, max(1, bin_range))

    # Degenerate small inputs: keep the ordering binning <= compromise <=
    # accumulate in bin count.
    if compromise.num_bins < binning_best.num_bins:
        compromise = binning_best
    if accumulate_best.num_bins < compromise.num_bins:
        accumulate_best = compromise
    return BinPlan(binning_best, compromise, accumulate_best)


def auto_blocker(num_indices, element_bytes, config: HierarchyConfig = None):
    """A :class:`~repro.pb.engine.PropagationBlocker` at the planned
    compromise bin count — the one-call frontend for users who just want
    software PB tuned to the machine.
    """
    from repro.pb.engine import PropagationBlocker

    plan = plan_bins(num_indices, element_bytes, config)
    return PropagationBlocker(
        num_indices, bin_range=plan.compromise.bin_range
    )
