"""Software coalescing-buffer (C-Buffer) model.

Software PB amortizes bin writes with one cacheline-sized buffer per bin
(Section III-C / IV): tuples append to the bin's C-Buffer, and a full
C-Buffer is bulk-transferred to the in-memory bin with non-temporal stores.
This module computes, for a given update stream, everything the
performance model needs about that process: the per-tuple C-Buffer access
trace, the per-tuple "did the buffer just fill?" branch outcomes, and the
full/partial line transfer counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_index_array, check_positive
from repro.pb.bins import BinSpec, bin_offsets

__all__ = ["CBufferModel"]


@dataclass(frozen=True)
class CBufferModel:
    """C-Buffers for one :class:`BinSpec` and tuple size."""

    spec: BinSpec
    tuple_bytes: int
    line_bytes: int = 64

    def __post_init__(self):
        check_positive("tuple_bytes", self.tuple_bytes)
        check_positive("line_bytes", self.line_bytes)
        if self.line_bytes % self.tuple_bytes:
            raise ValueError("tuple size must divide the line size")

    @property
    def tuples_per_line(self):
        """Tuples a C-Buffer holds before it must be drained."""
        return self.line_bytes // self.tuple_bytes

    @property
    def num_buffers(self):
        """One C-Buffer per bin."""
        return self.spec.num_bins

    @property
    def footprint_bytes(self):
        """Total C-Buffer storage (what must fit in cache for fast Binning)."""
        return self.num_buffers * self.line_bytes

    def buffer_ids(self, indices):
        """C-Buffer (== bin) ID each update lands in."""
        return self.spec.bins_of(as_index_array(indices))

    def occupancy_before(self, indices):
        """Per-update running occupancy of its C-Buffer, pre-insertion.

        Vectorized group cumulative count: update ``k`` of bin ``b`` sees
        occupancy ``k mod tuples_per_line``.
        """
        indices = as_index_array(indices)
        bins = self.spec.bins_of(indices)
        order = np.argsort(bins, kind="stable")
        starts = bin_offsets(np.bincount(bins, minlength=self.spec.num_bins))
        position_sorted = np.arange(len(indices), dtype=np.int64) - starts[
            bins[order]
        ]
        position = np.empty(len(indices), dtype=np.int64)
        position[order] = position_sorted
        return position % self.tuples_per_line

    def full_events(self, indices):
        """Boolean per update: did this insertion fill its C-Buffer?

        These are the outcomes of software PB's per-tuple "buffer full?"
        branch — the branch COBRA eliminates (Figure 12, bottom).
        """
        return self.occupancy_before(indices) == self.tuples_per_line - 1

    def transfer_counts(self, indices):
        """(full_lines, partial_lines) moved to in-memory bins.

        ``full_lines`` are the bulk non-temporal transfers during Binning;
        ``partial_lines`` are the residual flushes at the end of Binning
        (non-empty buffers drained before Accumulate starts).
        """
        indices = as_index_array(indices)
        per_bin = np.bincount(
            self.spec.bins_of(indices), minlength=self.spec.num_bins
        )
        full_lines = int(np.sum(per_bin // self.tuples_per_line))
        partial_lines = int(np.count_nonzero(per_bin % self.tuples_per_line))
        return full_lines, partial_lines

    def bin_write_lines(self, num_updates):
        """Total DRAM lines occupied by the binned update stream."""
        total_bytes = num_updates * self.tuple_bytes
        return -(-total_bytes // self.line_bytes)
