"""Bin geometry and the binning primitive of Propagation Blocking.

A :class:`BinSpec` fixes the number of bins and the power-of-two bin range
(Section III-C: practical PB uses power-of-two ranges so computing a
tuple's bin is a bit shift). :func:`bin_updates` reorders an update stream
into bin-major order exactly as a PB execution does: bins are FIFO, so a
stable partition by bin ID reproduces the order in which the Accumulate
phase replays updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import (
    as_index_array,
    check_positive,
    is_power_of_two,
    next_power_of_two,
)

__all__ = ["BinSpec", "bin_updates", "bin_counts", "bin_offsets"]


@dataclass(frozen=True)
class BinSpec:
    """Geometry of a PB binning configuration.

    ``bin_range`` is the number of consecutive indices mapped to one bin;
    ``num_bins`` is derived so bins cover ``[0, num_indices)``.
    """

    num_indices: int
    bin_range: int

    def __post_init__(self):
        check_positive("num_indices", self.num_indices)
        check_positive("bin_range", self.bin_range)
        if not is_power_of_two(self.bin_range):
            raise ValueError(
                f"bin_range must be a power of two, got {self.bin_range}"
            )

    @classmethod
    def from_num_bins(cls, num_indices, num_bins):
        """Spec with the smallest power-of-two range giving <= num_bins bins."""
        check_positive("num_bins", num_bins)
        bin_range = next_power_of_two(-(-num_indices // num_bins))
        return cls(num_indices, bin_range)

    @property
    def num_bins(self):
        """Number of bins covering the index namespace."""
        return -(-self.num_indices // self.bin_range)

    @property
    def shift(self):
        """log2(bin_range): tuples are binned with ``index >> shift``."""
        return self.bin_range.bit_length() - 1

    def bin_of(self, index):
        """Bin ID of a single index."""
        if not 0 <= index < self.num_indices:
            raise IndexError(f"index {index} outside [0, {self.num_indices})")
        return index >> self.shift

    def bins_of(self, indices):
        """Vectorized bin IDs for an index array."""
        return np.asarray(indices, dtype=np.int64) >> self.shift


def bin_counts(indices, spec: BinSpec):
    """Tuples destined to each bin (the Init phase's per-bin sizing pass)."""
    indices = as_index_array(indices)
    return np.bincount(spec.bins_of(indices), minlength=spec.num_bins).astype(
        np.int64
    )


def bin_offsets(counts):
    """Exclusive prefix sum of bin counts — the BinOffset array.

    Software PB precomputes this to lay bins out contiguously in memory;
    COBRA loads the same offsets into LLC C-Buffer tags (Figure 9).
    """
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def bin_updates(indices, values, spec: BinSpec):
    """Reorder an update stream into bin-major (PB Accumulate) order.

    Returns ``(binned_indices, binned_values, offsets)`` where
    ``binned_indices[offsets[b]:offsets[b + 1]]`` are bin ``b``'s updates in
    original stream order (bins are FIFO). ``values`` may be None for
    kernels whose update carries no payload.
    """
    indices = as_index_array(indices)
    if len(indices) and indices.max() >= spec.num_indices:
        raise ValueError("update stream contains indices beyond num_indices")
    bins = spec.bins_of(indices)
    order = np.argsort(bins, kind="stable")
    offsets = bin_offsets(np.bincount(bins, minlength=spec.num_bins))
    binned_indices = indices[order]
    if values is None:
        return binned_indices, None, offsets
    values = np.asarray(values)
    if len(values) != len(indices):
        raise ValueError("values must parallel indices")
    return binned_indices, values[order], offsets
