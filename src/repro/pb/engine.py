"""Functional Propagation Blocking executor (the public PB API).

This is the library users call to run PB on their own update streams: it
performs the Binning and Accumulate phases functionally and returns the
updated data. Correctness of the reordering (including for non-commutative
kernels, Section III-B) is what the test suite verifies against direct
execution.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_index_array, check_positive
from repro.pb.bins import BinSpec, bin_updates

__all__ = ["PropagationBlocker", "apply_updates_direct"]


def apply_updates_direct(indices, values, out, op="add"):
    """Apply an update stream directly, in order (the unblocked baseline).

    ``op`` is one of ``'add'``, ``'or'``, ``'store'`` (last-writer-wins),
    ``'min'``, or a callable ``op(out, index, value)`` invoked per update
    for arbitrary non-commutative kernels.
    """
    indices = as_index_array(indices)
    if callable(op):
        if values is None:
            for idx in indices.tolist():
                op(out, idx, None)
        else:
            for idx, val in zip(indices.tolist(), np.asarray(values).tolist()):
                op(out, idx, val)
        return out
    values_arr = None if values is None else np.asarray(values)
    if op == "add":
        np.add.at(out, indices, values_arr)
    elif op == "or":
        np.bitwise_or.at(out, indices, values_arr)
    elif op == "min":
        np.minimum.at(out, indices, values_arr)
    elif op == "store":
        out[indices] = values_arr  # numpy assignment keeps the last writer
    else:
        raise ValueError(f"unknown op {op!r}")
    return out


class PropagationBlocker:
    """Runs PB (bin, then accumulate bin-by-bin) over update streams.

    Parameters
    ----------
    num_indices:
        Size of the updated index namespace.
    num_bins / bin_range:
        Exactly one may be given; ``num_bins`` picks the smallest
        power-of-two range yielding at most that many bins. Defaults to 256
        bins when neither is given.
    """

    def __init__(self, num_indices, num_bins=None, bin_range=None):
        check_positive("num_indices", num_indices)
        if num_bins is not None and bin_range is not None:
            raise ValueError("pass num_bins or bin_range, not both")
        if bin_range is not None:
            self.spec = BinSpec(num_indices, bin_range)
        else:
            self.spec = BinSpec.from_num_bins(num_indices, num_bins or 256)

    @property
    def num_bins(self):
        """Bins the executor partitions updates into."""
        return self.spec.num_bins

    def bin(self, indices, values=None):
        """Binning phase: returns (binned_indices, binned_values, offsets)."""
        return bin_updates(indices, values, self.spec)

    def execute(self, indices, values, out, op="add"):
        """Full PB execution: bin updates, then apply them bin-major.

        Semantics match :func:`apply_updates_direct` for commutative ``op``
        and for any kernel with unordered parallelism; within a bin, the
        original stream order is preserved (bins are FIFO).
        """
        binned_indices, binned_values, offsets = self.bin(indices, values)
        if callable(op):
            # Generic (possibly non-commutative) kernels walk bins in order.
            for b in range(len(offsets) - 1):
                lo, hi = offsets[b], offsets[b + 1]
                chunk_vals = (
                    None if binned_values is None else binned_values[lo:hi]
                )
                apply_updates_direct(
                    binned_indices[lo:hi], chunk_vals, out, op
                )
            return out
        # Vectorized ops apply the whole binned stream at once: bin-major
        # order is just a permutation, and these ops are order-insensitive
        # per index ('store' keeps last-writer order because the stable
        # binning preserves per-index ordering).
        return apply_updates_direct(binned_indices, binned_values, out, op)

    def accumulate_order(self, indices):
        """The order Accumulate replays updates in (for trace generation)."""
        bins = self.spec.bins_of(as_index_array(indices))
        return np.argsort(bins, kind="stable")
