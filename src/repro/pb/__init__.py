"""Software Propagation Blocking: bins, C-Buffers, executor, planner."""

from repro.pb.bins import BinSpec, bin_counts, bin_offsets, bin_updates
from repro.pb.cbuffer import CBufferModel
from repro.pb.engine import PropagationBlocker, apply_updates_direct
from repro.pb.multipass import MultiPassPartitioner
from repro.pb.planner import BinPlan, auto_blocker, plan_bins

__all__ = [
    "BinPlan",
    "BinSpec",
    "CBufferModel",
    "MultiPassPartitioner",
    "PropagationBlocker",
    "apply_updates_direct",
    "auto_blocker",
    "bin_counts",
    "bin_offsets",
    "bin_updates",
    "plan_bins",
]
