"""Small shared helpers used across the :mod:`repro` package."""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_index_array",
    "check_positive",
    "check_power_of_two",
    "is_power_of_two",
    "next_power_of_two",
    "rng_from_seed",
]


def rng_from_seed(seed):
    """Return a :class:`numpy.random.Generator` from ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, or an existing
    generator (returned unchanged so callers can thread one RNG through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name, value):
    """Raise ``ValueError`` unless ``value`` is a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def is_power_of_two(value):
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def check_power_of_two(name, value):
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    check_positive(name, value)
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return int(value)


def next_power_of_two(value):
    """Smallest power of two ``>= value`` (``value`` must be positive)."""
    check_positive("value", value)
    return 1 << (int(value) - 1).bit_length()


def as_index_array(values, name="indices"):
    """Coerce ``values`` to a 1-D int64 numpy array, validating shape."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr
