"""COBRA: the paper's primary contribution.

Hardware-assisted Propagation Blocking — hierarchical cache-pinned
C-Buffers, the bininit/binupdate/binflush ISA extension, eviction
scattering, the commutativity specialization (COBRA-COMM), and the
context-switch waste model.
"""

from repro.core.binlayout import SequentialBins
from repro.core.cbuffer import CBufferArray, CBufferLine
from repro.core.comm import REDUCE_OPS, CoalescingCBufferArray, CobraCommMachine
from repro.core.config import CobraConfig, LevelBinning
from repro.core.context_switch import (
    ContextSwitchResult,
    simulate_context_switches,
)
from repro.core.machine import BinningStats, CobraMachine, MemoryBins

__all__ = [
    "BinningStats",
    "CBufferArray",
    "CBufferLine",
    "CoalescingCBufferArray",
    "CobraCommMachine",
    "CobraConfig",
    "CobraMachine",
    "ContextSwitchResult",
    "LevelBinning",
    "MemoryBins",
    "REDUCE_OPS",
    "SequentialBins",
    "simulate_context_switches",
]
