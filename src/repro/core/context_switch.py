"""Context-switch bandwidth-waste model (Section V-E, Figure 13c).

COBRA pins C-Buffers with static way partitioning, but a preempted Binning
phase lets other processes evict partially filled C-Buffer lines. At the
LLC that wastes DRAM bandwidth: a line write moves 64 B regardless of how
many tuples it carries. This model replays a tuple trace, forcing an
eviction of every LLC C-Buffer each scheduling quantum, and reports the
worst-case bandwidth waste.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import as_index_array, check_positive
from repro.core.config import CobraConfig
from repro.core.machine import CobraMachine

__all__ = ["ContextSwitchResult", "simulate_context_switches"]


@dataclass(frozen=True)
class ContextSwitchResult:
    """Waste accounting for one quantum setting."""

    quantum_tuples: int
    switches: int
    useful_bytes: int
    wasted_bytes: int
    lines_written: int

    @property
    def waste_fraction(self):
        """Wasted share of all DRAM write bandwidth spent on bins."""
        total = self.useful_bytes + self.wasted_bytes
        return self.wasted_bytes / total if total else 0.0


def simulate_context_switches(config: CobraConfig, indices, quantum_tuples):
    """Replay ``indices`` with a forced LLC C-Buffer eviction every quantum.

    ``quantum_tuples`` is the scheduling quantum expressed in tuples
    processed between preemptions (the experiment driver converts an OS
    quantum in cycles using the Binning-phase tuple rate).
    """
    check_positive("quantum_tuples", quantum_tuples)
    indices = as_index_array(indices)
    machine = CobraMachine(config)
    machine.bininit()
    switches = 0
    trace = indices.tolist()
    for start in range(0, len(trace), quantum_tuples):
        for index in trace[start : start + quantum_tuples]:
            machine.binupdate(index, None)
        if start + quantum_tuples < len(trace):
            switches += 1
            machine.evict_llc_partial()
    machine.binflush()
    bins = machine.memory_bins
    return ContextSwitchResult(
        quantum_tuples=quantum_tuples,
        switches=switches,
        useful_bytes=bins.total_tuples * config.tuple_bytes,
        wasted_bytes=bins.wasted_bytes,
        lines_written=bins.lines_written,
    )
