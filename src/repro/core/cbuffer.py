"""Hardware C-Buffer lines with repurposed-metadata offset counters.

Section V-C: a C-Buffer is a pinned cache line receiving append-only tuple
insertions; its insertion offset lives in repurposed line metadata (PLRU +
dirty + coherence bits at L1/L2, tag bits at the LLC for bin offsets). This
module models those structures bit-faithfully enough to check the paper's
claims: counters wrap at ``tuples_per_line``, and LLC tags carry the
in-memory bin cursor.
"""

from __future__ import annotations

from repro._util import check_positive

__all__ = ["CBufferLine", "CBufferArray"]


class CBufferLine:
    """One cacheline-sized hardware C-Buffer.

    The offset counter is ``ceil(log2(tuples_per_line))`` bits wide — for
    8-tuple lines, the 3 bits the paper scavenges from PLRU/dirty/MESI
    metadata. The counter wraps to zero exactly when the line fills.
    """

    __slots__ = ("tuples_per_line", "counter_bits", "_counter", "_tuples")

    def __init__(self, tuples_per_line):
        check_positive("tuples_per_line", tuples_per_line)
        self.tuples_per_line = tuples_per_line
        self.counter_bits = max(1, (tuples_per_line - 1).bit_length())
        self._counter = 0
        self._tuples = []

    @property
    def offset(self):
        """Current insertion offset (the metadata counter value)."""
        return self._counter

    @property
    def occupancy(self):
        """Tuples currently buffered."""
        return len(self._tuples)

    @property
    def is_empty(self):
        """True when no tuples are buffered."""
        return not self._tuples

    def insert(self, index, value):
        """Append a tuple; returns the full line's tuples when it fills.

        Returns None while the line still has room. The counter wraps to
        zero on fill (Section V-C), signalling the controller to evict.
        """
        if self._counter >= (1 << self.counter_bits):
            raise AssertionError("offset counter exceeded its bit width")
        self._tuples.append((index, value))
        self._counter = (self._counter + 1) % self.tuples_per_line
        if self._counter == 0:
            full = self._tuples
            self._tuples = []
            return full
        return None

    def drain(self):
        """Remove and return buffered tuples (binflush of a partial line)."""
        tuples = self._tuples
        self._tuples = []
        self._counter = 0
        return tuples


class CBufferArray:
    """All C-Buffers of one cache level.

    Buffers are materialized lazily (a dict keyed by buffer ID) — the
    hardware pins one line per buffer; the model only tracks non-empty
    ones.
    """

    def __init__(self, num_buffers, bin_range, tuples_per_line, name=""):
        check_positive("num_buffers", num_buffers)
        check_positive("bin_range", bin_range)
        self.num_buffers = num_buffers
        self.bin_range = bin_range
        self.shift = bin_range.bit_length() - 1
        self.tuples_per_line = tuples_per_line
        self.name = name
        self._buffers = {}
        self.inserts = 0
        self.evictions = 0

    def buffer_id(self, index):
        """C-Buffer an index maps to (a bit shift, Section V-B)."""
        return index >> self.shift

    def insert(self, index, value):
        """Insert a tuple; returns (buffer_id, tuples) if a line filled."""
        buffer_id = index >> self.shift
        line = self._buffers.get(buffer_id)
        if line is None:
            line = CBufferLine(self.tuples_per_line)
            self._buffers[buffer_id] = line
        self.inserts += 1
        full = line.insert(index, value)
        if full is not None:
            self.evictions += 1
            return buffer_id, full
        return None

    def drain_all(self):
        """binflush walk: yield (buffer_id, tuples) for non-empty buffers.

        Buffers are walked in ID order, matching the controller's serial
        walk of C-Buffer lines (Section V-E).
        """
        drained = []
        for buffer_id in sorted(self._buffers):
            line = self._buffers[buffer_id]
            if not line.is_empty:
                drained.append((buffer_id, line.drain()))
        self._buffers.clear()
        return drained

    @property
    def occupancy(self):
        """Total buffered tuples across the level."""
        return sum(line.occupancy for line in self._buffers.values())

    def occupancies(self):
        """Per-buffer occupancy (buffer_id -> tuples buffered)."""
        return {
            buffer_id: line.occupancy
            for buffer_id, line in self._buffers.items()
            if not line.is_empty
        }
