"""Dynamic instruction-cost model shared by every execution mode.

The analytic core model (DESIGN.md Section 4) counts instructions from
per-element costs of the kernels' inner loops. The constants below are
derived from the loop bodies of the GAP-style kernels and chosen to land
inside the paper's reported envelopes:

* software PB executes up to ~4x the baseline's instructions
  (Section III-C),
* COBRA reduces total instructions by 2-5.5x versus PB (Figure 12 top),
* ``binupdate`` replaces the entire software binning sequence with one
  store-class instruction (Section V-B).
"""

from __future__ import annotations

#: Baseline irregular-update loop: stream the edge/entry (1-2 loads),
#: compute the target address, load-modify-store the element, loop
#: bookkeeping and branch.
BASELINE_UPDATE_INSTRS = 8

#: Init pass of PB/COBRA: stream indices, shift to bin ID, increment the
#: per-bin count (the counts array is tiny and cache-resident).
INIT_COUNT_INSTRS = 3

#: Software Binning per tuple: bin-ID shift, C-Buffer base + offset loads,
#: two stores (index, value), occupancy increment, full-check compare +
#: branch, loop bookkeeping.
PB_BIN_TUPLE_INSTRS = 16

#: Software C-Buffer drain, per tuple moved: non-temporal store plus
#: address bookkeeping (amortized over the 64 B bulk copy).
PB_FLUSH_PER_TUPLE_INSTRS = 2

#: Accumulate per tuple: load (index, value) from the bin stream, apply the
#: update (load-modify-store), loop bookkeeping.
ACCUMULATE_TUPLE_INSTRS = 7

#: COBRA Binning per tuple: stream load(s) + one binupdate + loop
#: bookkeeping. binupdate needs no address-generation port (Section VI).
COBRA_BIN_TUPLE_INSTRS = 3

#: Per-level bininit plus per-LLC-C-Buffer tag-offset initialization
#: (Section V-E) — charged once per Binning phase.
COBRA_SETUP_BASE_INSTRS = 12
COBRA_SETUP_PER_BUFFER_INSTRS = 1

#: binflush walks every C-Buffer line at each level.
COBRA_FLUSH_PER_BUFFER_INSTRS = 2

#: Comparison-based sort (the Integer Sort baseline, __gnu_parallel::sort):
#: per element per merge level — compare, two moves, loop bookkeeping.
SORT_INSTRS_PER_ELEMENT_PER_LEVEL = 3
