"""COBRA-COMM: the commutativity specialization (Section VII-C).

For kernels with commutative updates, COBRA-COMM adds an atomic reduction
unit at the (shared) LLC, coalescing updates destined to the same index
while they sit in LLC C-Buffers. The paper shows coalescing only at the LLC
captures essentially all of PHI's traffic reduction (PHI itself coalesces
97% of its updates at the LLC) while keeping COBRA's optimal Accumulate bin
count.
"""

from __future__ import annotations

import operator

from repro.core.cbuffer import CBufferArray
from repro.core.machine import CobraMachine

__all__ = ["REDUCE_OPS", "CoalescingCBufferArray", "CobraCommMachine"]

#: Reduction operators commutative kernels may coalesce with.
REDUCE_OPS = {
    "add": operator.add,
    "or": operator.or_,
    "min": min,
    "max": max,
}


class CoalescingCBufferArray(CBufferArray):
    """C-Buffers that merge same-index tuples with a reduction operator.

    A buffer line holds up to ``tuples_per_line`` *distinct* indices; an
    update hitting an index already buffered coalesces in place and
    consumes no new slot (and, downstream, no DRAM traffic).
    """

    def __init__(self, num_buffers, bin_range, tuples_per_line, reduce_op, name=""):
        super().__init__(num_buffers, bin_range, tuples_per_line, name=name)
        self.reduce_op = (
            REDUCE_OPS[reduce_op] if isinstance(reduce_op, str) else reduce_op
        )
        self.coalesced = 0
        self._maps = {}

    def insert(self, index, value):
        """Insert or coalesce; returns (buffer_id, tuples) on line fill."""
        buffer_id = index >> self.shift
        entries = self._maps.setdefault(buffer_id, {})
        self.inserts += 1
        if index in entries:
            entries[index] = self.reduce_op(entries[index], value)
            self.coalesced += 1
            return None
        entries[index] = value
        if len(entries) == self.tuples_per_line:
            self.evictions += 1
            self._maps[buffer_id] = {}
            return buffer_id, list(entries.items())
        return None

    def drain_all(self):
        """Drain partial buffers in ID order (binflush)."""
        drained = []
        for buffer_id in sorted(self._maps):
            entries = self._maps[buffer_id]
            if entries:
                drained.append((buffer_id, list(entries.items())))
        self._maps.clear()
        return drained

    @property
    def occupancy(self):
        """Distinct buffered indices across the level."""
        return sum(len(entries) for entries in self._maps.values())

    def occupancies(self):
        """Per-buffer distinct-index counts."""
        return {b: len(e) for b, e in self._maps.items() if e}


class CobraCommMachine(CobraMachine):
    """COBRA with LLC-level update coalescing.

    Only valid for commutative kernels; using it for a non-commutative
    update stream silently merges updates whose order matters, which is
    exactly the correctness hazard Section III-B describes (tests assert
    the divergence).
    """

    def __init__(self, config, reduce_op="add"):
        super().__init__(config)
        self.reduce_op = reduce_op

    def _make_level(self, binning, tuples_per_line, name):
        if name != "llc":
            return super()._make_level(binning, tuples_per_line, name)
        return CoalescingCBufferArray(
            binning.num_buffers,
            binning.bin_range,
            tuples_per_line,
            self.reduce_op,
            name=name,
        )

    @property
    def coalesced(self):
        """Updates merged at the LLC (DRAM tuples saved)."""
        return self.levels[2].coalesced if self.levels else 0
