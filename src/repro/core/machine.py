"""Functional model of the COBRA machine (Sections IV and V).

Feeds ``binupdate`` tuples through the hierarchy of hardware C-Buffers:
L1 C-Buffer fills scatter into L2 C-Buffers, L2 fills into LLC C-Buffers,
and LLC fills append a full line of tuples to the in-memory bin pointed to
by the tag-resident BinOffset cursor. ``binflush`` drains residual tuples
top-down. The model verifies functional equivalence with software PB (each
memory bin receives exactly its bin's updates) and produces the eviction
and traffic statistics the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_positive
from repro.core.cbuffer import CBufferArray
from repro.core.config import CobraConfig

__all__ = ["MemoryBins", "BinningStats", "CobraMachine"]


class MemoryBins:
    """In-memory bins written by LLC C-Buffer evictions (Figure 9).

    Tuples of bin ``b`` land contiguously; the per-bin cursor the hardware
    keeps in the LLC tag entry is modeled by the per-bin list length. Line
    accounting distinguishes full-line writes (normal evictions) from
    partial-line writes (binflush and context switches), whose unused bytes
    are the bandwidth waste of Figure 13c.
    """

    def __init__(self, num_bins, tuple_bytes, line_bytes=64):
        check_positive("num_bins", num_bins)
        self.num_bins = num_bins
        self.tuple_bytes = tuple_bytes
        self.line_bytes = line_bytes
        self.bins = [[] for _ in range(num_bins)]
        self.full_lines = 0
        self.partial_lines = 0
        self.wasted_bytes = 0

    def write_line(self, bin_id, tuples):
        """Append one evicted C-Buffer line's tuples to bin ``bin_id``."""
        if not 0 <= bin_id < self.num_bins:
            raise IndexError(f"bin {bin_id} out of range")
        self.bins[bin_id].extend(tuples)
        used = len(tuples) * self.tuple_bytes
        if used >= self.line_bytes:
            self.full_lines += 1
        else:
            # DRAM is written at line granularity; a partial line still
            # moves line_bytes over the bus.
            self.partial_lines += 1
            self.wasted_bytes += self.line_bytes - used

    @property
    def lines_written(self):
        """All DRAM lines written into bins."""
        return self.full_lines + self.partial_lines

    @property
    def total_tuples(self):
        """Tuples across all bins."""
        return sum(len(b) for b in self.bins)

    @property
    def bytes_written(self):
        """Total DRAM write traffic in bytes (line granularity)."""
        return self.lines_written * self.line_bytes


@dataclass
class BinningStats:
    """Eviction/insert counts of one COBRA Binning run."""

    tuples: int = 0
    l1_evictions: int = 0
    l2_evictions: int = 0
    llc_evictions: int = 0
    flush_lines: int = 0
    coalesced: int = 0  # used by the COBRA-COMM specialization
    extra: dict = field(default_factory=dict)


class CobraMachine:
    """Behavioural COBRA model driven by the ISA extension (Section V-B).

    Typical use::

        machine = CobraMachine(CobraConfig(num_indices=n, tuple_bytes=8))
        machine.bininit()
        for index, value in stream:
            machine.binupdate(index, value)
        machine.binflush()
        machine.memory_bins.bins  # bin-major updates, ready for Accumulate
    """

    def __init__(self, config: CobraConfig):
        config.validate_monotone()
        self.config = config
        self.levels = None
        self.memory_bins = None
        self.stats = BinningStats()
        self._initialized = False

    # ------------------------------------------------------------------ #
    # ISA extension
    # ------------------------------------------------------------------ #

    def bininit(self, bin_counts=None):
        """Configure C-Buffers at every level (one bininit per level).

        With ``bin_counts`` (the Init phase's per-bin tuple counts), memory
        bins use the sequential Figure 9 layout — contiguous per-bin
        storage addressed through tag-resident BinOffset cursors — instead
        of the default growable per-bin lists.
        """
        cfg = self.config
        per_line = cfg.tuples_per_line
        binnings = self._level_binnings()
        self.levels = [
            self._make_level(binning, per_line, binning.level)
            for binning in binnings
        ]
        if bin_counts is not None:
            from repro.core.binlayout import SequentialBins

            if len(bin_counts) != binnings[-1].num_buffers:
                raise ValueError(
                    "bin_counts must have one entry per LLC C-Buffer "
                    f"({binnings[-1].num_buffers}), got {len(bin_counts)}"
                )
            self.memory_bins = SequentialBins(
                bin_counts, cfg.tuple_bytes, cfg.hierarchy.line_bytes
            )
        else:
            self.memory_bins = MemoryBins(
                binnings[-1].num_buffers,
                cfg.tuple_bytes,
                cfg.hierarchy.line_bytes,
            )
        self.stats = BinningStats()
        self._initialized = True
        return self

    def _level_binnings(self):
        """The three per-level binning configurations (overridable)."""
        return [self.config.level_binning(name) for name in ("l1", "l2", "llc")]

    def _make_level(self, binning, tuples_per_line, name):
        return CBufferArray(
            binning.num_buffers, binning.bin_range, tuples_per_line, name=name
        )

    def binupdate(self, index, value=None):
        """Insert one (index, value) tuple into the L1 C-Buffers."""
        if not self._initialized:
            raise RuntimeError("bininit must run before binupdate")
        if not 0 <= index < self.config.num_indices:
            raise IndexError(
                f"index {index} outside [0, {self.config.num_indices})"
            )
        self.stats.tuples += 1
        full = self.levels[0].insert(index, value)
        if full is not None:
            self.stats.l1_evictions += 1
            self._scatter(1, full[1])

    def binupdate_many(self, indices, values=None):
        """Bulk :meth:`binupdate` over parallel arrays."""
        if values is None:
            for index in indices:
                self.binupdate(int(index), None)
        else:
            for index, value in zip(indices, values):
                self.binupdate(int(index), value)

    def binflush(self):
        """Drain every level top-down so all tuples reach memory bins."""
        if not self._initialized:
            raise RuntimeError("bininit must run before binflush")
        for tier in range(3):
            for _buffer_id, tuples in self.levels[tier].drain_all():
                if tier < 2:
                    self._scatter(tier + 1, tuples)
                else:
                    self._write_llc_line(tuples, partial_ok=True)

    # ------------------------------------------------------------------ #
    # Binning engine (fixed-function scatter, Section V-D)
    # ------------------------------------------------------------------ #

    def _scatter(self, tier, tuples):
        """Insert each tuple of an evicted line into level ``tier``."""
        level = self.levels[tier]
        for index, value in tuples:
            full = level.insert(index, value)
            if full is not None:
                if tier == 1:
                    self.stats.l2_evictions += 1
                    self._scatter(2, full[1])
                else:
                    self._write_llc_line(full[1])

    def _write_llc_line(self, tuples, partial_ok=False):
        """Move an LLC C-Buffer line to its in-memory bin."""
        if not tuples:
            return
        bin_id = tuples[0][0] >> self.levels[2].shift
        if not partial_ok:
            self.stats.llc_evictions += 1
        else:
            self.stats.flush_lines += 1
        self.memory_bins.write_line(bin_id, tuples)

    # ------------------------------------------------------------------ #
    # Context-switch behaviour (Section V-E, Figure 13c)
    # ------------------------------------------------------------------ #

    def evict_llc_partial(self):
        """Model a context switch evicting every (partial) LLC C-Buffer.

        Another process scheduled after preemption can displace pinned
        C-Buffer lines; partially filled LLC lines then burn DRAM bandwidth
        (a full line is written regardless of occupancy). Returns the lines
        written.
        """
        drained = self.levels[2].drain_all()
        for _buffer_id, tuples in drained:
            self._write_llc_line(tuples, partial_ok=True)
        return len(drained)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def buffered_tuples(self):
        """Tuples currently resident in C-Buffers (not yet in memory)."""
        return sum(level.occupancy for level in self.levels)

    def bin_contents(self, bin_id):
        """Tuples of one memory bin, in arrival order."""
        return list(self.memory_bins.bins[bin_id])
