"""COBRA configuration and the ``bininit`` derivation (Section V-A/B).

``bininit`` reserves ways at each cache level and computes, per level, the
smallest power-of-two bin range whose C-Buffers fit in the reserved
capacity. The L1 gets the fewest C-Buffers (largest range) and the LLC the
most; the number of in-memory bins equals the number of LLC C-Buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_positive, next_power_of_two
from repro.cache.config import HierarchyConfig
from repro.pb.bins import BinSpec

__all__ = ["LevelBinning", "CobraConfig"]


@dataclass(frozen=True)
class LevelBinning:
    """Result of ``bininit`` for one cache level."""

    level: str
    reserved_ways: int
    ways_used: int  # power-of-two rounding may leave reserved ways unused
    num_buffers: int
    bin_range: int

    @property
    def shift(self):
        """log2(bin_range) — binning a tuple is this right-shift."""
        return self.bin_range.bit_length() - 1


def _level_binning(level, num_indices, sets, line_capacity_per_way, reserved_ways):
    """Smallest power-of-two bin range fitting the reserved ways."""
    capacity = reserved_ways * line_capacity_per_way
    bin_range = next_power_of_two(max(1, -(-num_indices // max(1, capacity))))
    num_buffers = -(-num_indices // bin_range)
    ways_used = -(-num_buffers // sets)
    return LevelBinning(level, reserved_ways, ways_used, num_buffers, bin_range)


@dataclass(frozen=True)
class CobraConfig:
    """Full COBRA machine configuration.

    Default way reservations follow Section V-A: all but one way at L1 and
    LLC, a single way at L2 (to leave room for the stream prefetcher's
    data).
    """

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    num_indices: int = 1 << 16
    tuple_bytes: int = 8
    l1_reserved_ways: int = None
    l2_reserved_ways: int = 1
    llc_reserved_ways: int = None

    def __post_init__(self):
        check_positive("num_indices", self.num_indices)
        check_positive("tuple_bytes", self.tuple_bytes)
        if self.hierarchy.line_bytes % self.tuple_bytes:
            raise ValueError("tuple size must divide the cache line size")
        if self.l1_reserved_ways is None:
            object.__setattr__(
                self, "l1_reserved_ways", self.hierarchy.l1_ways - 1
            )
        if self.llc_reserved_ways is None:
            object.__setattr__(
                self, "llc_reserved_ways", self.hierarchy.llc_ways - 1
            )
        for name, ways in [
            ("l1", self.hierarchy.l1_ways),
            ("l2", self.hierarchy.l2_ways),
            ("llc", self.hierarchy.llc_ways),
        ]:
            reserved = getattr(self, f"{name}_reserved_ways")
            if not 1 <= reserved < ways:
                raise ValueError(
                    f"{name} reservation must be in [1, {ways}), got {reserved}"
                )

    @property
    def tuples_per_line(self):
        """Tuples per C-Buffer line (offset counters count modulo this)."""
        return self.hierarchy.line_bytes // self.tuple_bytes

    def level_binning(self, level):
        """``bininit`` result for ``level`` ('l1', 'l2', or 'llc')."""
        sets = self.hierarchy.sets(level)
        reserved = getattr(self, f"{level}_reserved_ways")
        return _level_binning(level, self.num_indices, sets, sets, reserved)

    @property
    def l1(self):
        """L1 binning parameters."""
        return self.level_binning("l1")

    @property
    def l2(self):
        """L2 binning parameters."""
        return self.level_binning("l2")

    @property
    def llc(self):
        """LLC binning parameters (defines the in-memory bins)."""
        return self.level_binning("llc")

    @property
    def memory_bin_spec(self):
        """In-memory bins mirror the LLC C-Buffers (Section V-E)."""
        return BinSpec(self.num_indices, self.llc.bin_range)

    def validate_monotone(self):
        """Check bin ranges shrink down the hierarchy (more buffers below).

        Raises ``ValueError`` when the configured reservations would give a
        lower level fewer C-Buffers than an upper one, which the eviction
        scatter logic relies on.
        """
        l1, l2, llc = self.l1, self.l2, self.llc
        if not l1.bin_range >= l2.bin_range >= llc.bin_range:
            raise ValueError(
                "bin ranges must be non-increasing down the hierarchy: "
                f"L1={l1.bin_range} L2={l2.bin_range} LLC={llc.bin_range}"
            )
        return self
