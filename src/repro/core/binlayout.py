"""Sequential in-memory bin layout with tag-resident cursors (Figure 9).

Software PB and COBRA both lay bins out contiguously: the Init phase
counts per-bin tuples and prefix-sums them into the BinOffset array;
COBRA then loads each bin's starting offset into the corresponding LLC
C-Buffer's (otherwise unnecessary) tag entry. Every LLC C-Buffer eviction
writes its tuples at ``BinBasePtr + BinOffset[binID]`` and bumps the
tag-resident cursor by the tuples written. This module models that layout
exactly, including the overflow checks a real implementation relies on the
Init-phase counts for.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_index_array, check_positive

__all__ = ["SequentialBins"]


class SequentialBins:
    """Contiguous per-bin tuple storage addressed through BinOffset cursors.

    Parameters
    ----------
    counts:
        Per-bin tuple counts from the Init phase; bin ``b`` owns the slots
        ``[offsets[b], offsets[b + 1])`` of the flat arrays.
    tuple_bytes, line_bytes:
        For DRAM line accounting (a partial line still moves a full line).
    """

    def __init__(self, counts, tuple_bytes=8, line_bytes=64):
        counts = as_index_array(counts, "counts")
        if len(counts) == 0:
            raise ValueError("counts must name at least one bin")
        if counts.min() < 0:
            raise ValueError("counts must be non-negative")
        check_positive("tuple_bytes", tuple_bytes)
        self.tuple_bytes = tuple_bytes
        self.line_bytes = line_bytes
        self.offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        self._counts = counts
        total = int(self.offsets[-1])
        self.indices = np.full(total, -1, dtype=np.int64)
        self.values = np.empty(total, dtype=object)
        #: The tag-resident cursors: BinOffset[binID] in Figure 9.
        self.cursors = self.offsets[:-1].copy()
        self.full_lines = 0
        self.partial_lines = 0
        self.wasted_bytes = 0

    @property
    def num_bins(self):
        """Bins in the layout."""
        return len(self._counts)

    def remaining(self, bin_id):
        """Free tuple slots left in ``bin_id``."""
        return int(self.offsets[bin_id + 1] - self.cursors[bin_id])

    def write_line(self, bin_id, tuples):
        """One LLC C-Buffer eviction: append ``tuples`` at the cursor.

        Raises ``OverflowError`` when the Init-phase sizing would be
        violated — the condition a correct PB/COBRA run never hits.
        """
        if not 0 <= bin_id < self.num_bins:
            raise IndexError(f"bin {bin_id} out of range")
        if not tuples:
            return
        cursor = int(self.cursors[bin_id])
        end = cursor + len(tuples)
        if end > self.offsets[bin_id + 1]:
            raise OverflowError(
                f"bin {bin_id} sized for {self._counts[bin_id]} tuples; "
                f"write of {len(tuples)} at cursor {cursor} overflows"
            )
        for position, (index, value) in enumerate(tuples):
            self.indices[cursor + position] = index
            self.values[cursor + position] = value
        self.cursors[bin_id] = end
        used = len(tuples) * self.tuple_bytes
        if used >= self.line_bytes:
            self.full_lines += 1
        else:
            self.partial_lines += 1
            self.wasted_bytes += self.line_bytes - used

    def bin_contents(self, bin_id):
        """(indices, values) written to ``bin_id`` so far."""
        lo = int(self.offsets[bin_id])
        hi = int(self.cursors[bin_id])
        return self.indices[lo:hi], self.values[lo:hi]

    def is_complete(self):
        """True when every bin received exactly its Init-phase count."""
        return bool(np.array_equal(self.cursors, self.offsets[1:]))

    @property
    def lines_written(self):
        """DRAM lines moved into the layout."""
        return self.full_lines + self.partial_lines

    @property
    def total_tuples(self):
        """Tuples written so far."""
        return int((self.cursors - self.offsets[:-1]).sum())
