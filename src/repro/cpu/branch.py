"""Branch predictor models.

Figure 12 (bottom) of the paper reports branch misprediction reductions:
software PB's per-tuple "is this C-Buffer full?" checks mispredict often
(the interleaving across bins is data-dependent), while COBRA moves buffer
management into cache controllers and eliminates those branches. We model
this by simulating real predictor structures over the kernels' actual
branch outcome streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_power_of_two

__all__ = [
    "BimodalPredictor",
    "GSharePredictor",
    "BranchSite",
    "simulate_sites",
    "BRANCH_BACKENDS",
]

BRANCH_BACKENDS = ("vector", "scalar")

_BACKEND_ENV = "REPRO_BRANCH_BACKEND"

# The vectorized predictor kernel replays a 2-bit saturating counter over
# packed symbol streams: each symbol is 0 (not taken), 1 (taken), or 2
# (padding, which must leave the counter and misprediction count alone).
# _PACK symbols are folded base-3 into one integer so a single table lookup
# advances the counter across _PACK branches at once.
_PACK = 8
_NPACK = 3**_PACK
_PAD_SYM = 2
_IDENTITY_PACK = _NPACK - 1  # all-padding pack: no state change, no misses
# simulate_array sorts (table index, time, outcome) triples packed into one
# uint32 per branch, so streams are processed in chunks small enough for the
# time stamp to fit the spare bits. State carries across chunks exactly.
_SORT_CHUNK = 1 << 17


def _build_step_tables():
    """LUTs mapping (counter state, symbol pack) -> next state / misses."""
    packs = np.arange(_NPACK, dtype=np.int64)
    symbols = np.empty((_NPACK, _PACK), np.uint8)
    tmp = packs.copy()
    for j in range(_PACK):
        symbols[:, j] = tmp % 3
        tmp //= 3
    state = np.tile(np.arange(4, dtype=np.int64), (_NPACK, 1)).T  # (4, npack)
    misses = np.zeros((4, _NPACK), np.int64)
    for j in range(_PACK):
        sym = symbols[:, j]
        taken = sym == 1
        not_taken = sym == 0
        prediction = state >= 2
        misses += (prediction != taken[None, :]) & (taken | not_taken)[None, :]
        up = taken[None, :] & (state < 3)
        down = not_taken[None, :] & (state > 0)
        state = state + up.astype(np.int64) - down.astype(np.int64)
    return state.reshape(-1).astype(np.intp), misses.reshape(-1).astype(np.int32)


_NEXT_LUT, _MISS_LUT = _build_step_tables()


def _scan_grouped(padded, group_starts, entry_states, max_columns=2048):
    """Exact saturating-counter replay over concatenated symbol groups.

    ``padded`` holds base-3 symbols with each group padded to a multiple of
    ``_PACK`` so groups never share a pack; ``group_starts`` are the padded
    start offsets (``group_starts[0] == 0``) and ``entry_states`` the known
    2-bit counter each group starts from.  The pack stream is folded into
    ``C`` columns scanned row-by-row with all four candidate column-entry
    states tracked as lanes; group starts reset the lanes to the known entry
    state, and a cheap sequential stitch over the C columns afterwards picks
    the true lane.  Returns ``(total_mispredicts, exit_state_per_group)``.
    """
    num_packs = len(padded) // _PACK
    num_groups = len(group_starts)
    view = padded.reshape(num_packs, _PACK)
    packs = view[:, _PACK - 1].astype(np.intp)
    for j in range(_PACK - 2, -1, -1):
        packs *= 3
        packs += view[:, j]
    cols = max(1, min(max_columns, num_packs))
    rows = -(-num_packs // cols)
    if rows * cols > num_packs:
        packs = np.concatenate(
            [packs, np.full(rows * cols - num_packs, _IDENTITY_PACK, dtype=np.intp)]
        )
    pack_rows = np.ascontiguousarray(packs.reshape(cols, rows).T)
    start_pack = group_starts // _PACK
    event_col = (start_pack // rows).astype(np.intp)
    event_row = (start_pack % rows).astype(np.intp)
    order = np.argsort(event_row, kind="stable")
    row_sorted = event_row[order]
    row_events = {}
    uniq_rows, first = np.unique(row_sorted, return_index=True)
    bounds = np.append(first, num_groups)
    for i, r in enumerate(uniq_rows):
        span = order[bounds[i] : bounds[i + 1]]
        row_events[int(r)] = (event_col[span], span)
    entry_states = np.asarray(entry_states, dtype=np.intp)
    state = np.tile(np.arange(4, dtype=np.intp), (cols, 1))  # (cols, 4) lanes
    misses = np.zeros((cols, 4), np.int32)
    exit_lanes = np.zeros((num_groups, 4), np.uint8)
    for r in range(rows):
        event = row_events.get(r)
        if event is not None:
            at_cols, groups = event
            if r > 0:
                # a group starting mid-column ends the previous group here;
                # capture its (lane-dependent) exit state before resetting
                has_prev = groups > 0
                exit_lanes[groups[has_prev] - 1] = state[at_cols[has_prev]]
            state[at_cols] = entry_states[groups][:, None]
        key = state * _NPACK + pack_rows[r][:, None]
        misses += _MISS_LUT[key]
        state = _NEXT_LUT[key]
    # stitch: resolve each column's true entry state sequentially
    state_list = state.tolist()
    miss_list = misses.tolist()
    column_entry = np.empty(cols, np.intp)
    total = 0
    s = 0  # group 0 resets lanes at (row 0, col 0), so col 0's lane is moot
    for c in range(cols):
        column_entry[c] = s
        total += miss_list[c][s]
        s = state_list[c][s]
    exits = np.empty(num_groups, np.uint8)
    exits[num_groups - 1] = s  # last group runs to the end of the stream
    if num_groups > 1:
        lanes = column_entry[event_col[1:]]
        captured = exit_lanes[np.arange(num_groups - 1), lanes]
        # groups ending exactly on a column boundary exit with that
        # column's stitched entry state instead of a captured lane
        exits[:-1] = np.where(event_row[1:] == 0, lanes.astype(np.uint8), captured)
    return int(total), exits


class BimodalPredictor:
    """Classic 2-bit saturating-counter table indexed by PC."""

    def __init__(self, table_size=4096):
        check_power_of_two("table_size", table_size)
        self.table_size = table_size
        self._counters = bytearray([2] * table_size)  # weakly taken

    def predict_and_update(self, pc, taken):
        """Predict the branch at ``pc``, update state, return correctness."""
        idx = pc & (self.table_size - 1)
        counter = self._counters[idx]
        prediction = counter >= 2
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        return prediction == taken

    def simulate(self, pc, outcomes):
        """Mispredictions over a boolean outcome sequence for one PC."""
        counters = self._counters
        mask = self.table_size - 1
        idx = pc & mask
        mispredicts = 0
        counter = counters[idx]
        for taken in outcomes:
            if (counter >= 2) != taken:
                mispredicts += 1
            if taken:
                if counter < 3:
                    counter += 1
            elif counter > 0:
                counter -= 1
        counters[idx] = counter
        return mispredicts

    def simulate_array(self, pc, outcomes):
        """Vectorized :meth:`simulate`: same counts, same final state.

        Bimodal touches a single table entry per PC, so the whole outcome
        array is one symbol group replayed through the packed-LUT scan.
        """
        outcomes = np.asarray(outcomes, dtype=bool)
        n = len(outcomes)
        if n == 0:
            return 0
        idx = pc & (self.table_size - 1)
        symbols = outcomes.view(np.uint8)
        tail = (-n) % _PACK
        if tail:
            symbols = np.concatenate([symbols, np.full(tail, _PAD_SYM, np.uint8)])
        else:
            symbols = symbols.copy()
        counters = np.frombuffer(self._counters, dtype=np.uint8)
        total, exits = _scan_grouped(
            symbols, np.zeros(1, np.int64), counters[idx : idx + 1]
        )
        counters[idx] = exits[0]
        return total


class GSharePredictor:
    """GShare: 2-bit counters indexed by PC xor global history."""

    def __init__(self, table_size=16384, history_bits=12):
        check_power_of_two("table_size", table_size)
        if history_bits <= 0 or (1 << history_bits) > table_size:
            raise ValueError("history_bits must be positive and fit the table")
        self.table_size = table_size
        self.history_bits = history_bits
        self._counters = bytearray([2] * table_size)
        self._history = 0

    def predict_and_update(self, pc, taken):
        """Predict the branch at ``pc``, update state, return correctness."""
        mask = self.table_size - 1
        idx = (pc ^ self._history) & mask
        counter = self._counters[idx]
        prediction = counter >= 2
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        hist_mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & hist_mask
        return prediction == taken

    def simulate(self, pc, outcomes):
        """Mispredictions over a boolean outcome sequence for one PC."""
        counters = self._counters
        mask = self.table_size - 1
        hist_mask = (1 << self.history_bits) - 1
        history = self._history
        mispredicts = 0
        for taken in outcomes:
            idx = (pc ^ history) & mask
            counter = counters[idx]
            if (counter >= 2) != taken:
                mispredicts += 1
            if taken:
                if counter < 3:
                    counters[idx] = counter + 1
            elif counter > 0:
                counters[idx] = counter - 1
            history = ((history << 1) | 1) & hist_mask if taken else (history << 1) & hist_mask
        self._history = history
        return mispredicts

    def _history_stream(self, bits):
        """Per-branch global history values for a uint8 0/1 outcome array."""
        n = len(bits)
        hist_mask = (1 << self.history_bits) - 1
        history = np.zeros(n, np.uint16)
        wide = bits.astype(np.uint16)
        shifted = np.empty(n, np.uint16)
        for j in range(self.history_bits):
            span = n - 1 - j
            if span <= 0:
                break
            np.left_shift(wide[:span], j, out=shifted[:span])
            history[j + 1 :] |= shifted[:span]
        initial = self._history
        for t in range(min(self.history_bits, n)):
            history[t] |= (initial << t) & hist_mask
        return history

    def simulate_array(self, pc, outcomes):
        """Vectorized :meth:`simulate`: same counts, same final state.

        The table index stream ``(pc ^ history) & mask`` depends only on the
        outcome array, so it is precomputed, branches are grouped by index
        (each group is an independent counter walk from a known state), and
        the groups are replayed together through the packed-LUT scan.
        Branches are sorted by ``(index, time)`` folded into one uint32, so
        the stream is consumed in ``_SORT_CHUNK`` slices with table/history
        state carried across slices exactly as the scalar loop would.
        """
        outcomes = np.asarray(outcomes, dtype=bool)
        n = len(outcomes)
        if n == 0:
            return 0
        mask = self.table_size - 1
        hist_mask = (1 << self.history_bits) - 1
        bits = outcomes.view(np.uint8)
        index = self._history_stream(bits)
        # history < 2^history_bits <= table_size, so xor-then-mask reduces
        # to masking pc first
        index ^= np.uint16(pc & mask)
        counters = np.frombuffer(self._counters, dtype=np.uint8)
        total = 0
        for lo in range(0, n, _SORT_CHUNK):
            hi = min(n, lo + _SORT_CHUNK)
            span = hi - lo
            key = index[lo:hi].astype(np.uint32) << np.uint32(18)
            key |= np.arange(span, dtype=np.uint32) << np.uint32(1)
            key |= bits[lo:hi]
            key.sort()
            sorted_syms = (key & np.uint32(1)).astype(np.uint8)
            counts = np.bincount(index[lo:hi], minlength=self.table_size)
            present = np.nonzero(counts)[0]
            group_len = counts[present].astype(np.int64)
            padded_len = -(-group_len // _PACK) * _PACK
            num_groups = len(present)
            padded_starts = np.zeros(num_groups, np.int64)
            np.cumsum(padded_len[:-1], out=padded_starts[1:])
            starts = np.zeros(num_groups, np.int64)
            np.cumsum(group_len[:-1], out=starts[1:])
            shift = np.repeat(padded_starts - starts, group_len)
            padded = np.full(int(padded_len.sum()), _PAD_SYM, np.uint8)
            padded[np.arange(span, dtype=np.int64) + shift] = sorted_syms
            chunk_total, exits = _scan_grouped(
                padded, padded_starts, counters[present]
            )
            counters[present] = exits
            total += chunk_total
        # final history: last history_bits outcomes over the initial value
        history = self._history
        for bit in bits[max(0, n - self.history_bits) :].tolist():
            history = ((history << 1) | bit) & hist_mask
        self._history = history
        return total


@dataclass
class BranchSite:
    """One static branch and its dynamic outcome stream.

    ``outcomes`` may be shorter than ``count`` when the workload sampled
    the stream; the simulated misprediction *rate* is then scaled to
    ``count`` dynamic executions.
    """

    name: str
    pc: int
    outcomes: np.ndarray
    count: int = 0

    def __post_init__(self):
        self.outcomes = np.asarray(self.outcomes, dtype=bool)
        if self.count == 0:
            self.count = len(self.outcomes)
        if self.count < len(self.outcomes):
            raise ValueError("count cannot be below the sampled outcome length")


def branch_backend(backend=None):
    """Resolve the predictor backend: argument, env knob, or ``vector``."""
    # Imported lazily: repro.harness pulls in the runner, which imports
    # this module (registry reads must still go through the knob registry).
    from repro.harness import knobs

    backend = backend or knobs.read(_BACKEND_ENV) or "vector"
    if backend not in BRANCH_BACKENDS:
        raise ValueError(
            f"unknown branch backend {backend!r}; valid backends: "
            + ", ".join(BRANCH_BACKENDS)
        )
    return backend


def simulate_sites(sites, predictor=None, max_simulated=200_000, backend=None):
    """Total (scaled) mispredictions across branch sites.

    Simulates up to ``max_simulated`` outcomes per site through a shared
    predictor (default GShare) and scales the observed misprediction rate
    to the site's full dynamic count.  ``backend`` selects the vectorized
    kernel (``"vector"``, the default) or the scalar reference loop
    (``"scalar"``); both produce bit-identical totals.  The default can be
    overridden with the ``REPRO_BRANCH_BACKEND`` environment variable.
    """
    backend = branch_backend(backend)
    predictor = predictor or GSharePredictor()
    vectorized = backend == "vector" and hasattr(predictor, "simulate_array")
    total = 0.0
    for site in sites:
        outcomes = site.outcomes
        if len(outcomes) == 0:
            continue
        sample = outcomes[:max_simulated]
        if vectorized:
            mispredicts = predictor.simulate_array(site.pc, sample)
        else:
            mispredicts = predictor.simulate(site.pc, sample.tolist())
        rate = mispredicts / len(sample)
        total += rate * site.count
    return total
