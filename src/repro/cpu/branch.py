"""Branch predictor models.

Figure 12 (bottom) of the paper reports branch misprediction reductions:
software PB's per-tuple "is this C-Buffer full?" checks mispredict often
(the interleaving across bins is data-dependent), while COBRA moves buffer
management into cache controllers and eliminates those branches. We model
this by simulating real predictor structures over the kernels' actual
branch outcome streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_power_of_two

__all__ = ["BimodalPredictor", "GSharePredictor", "BranchSite", "simulate_sites"]


class BimodalPredictor:
    """Classic 2-bit saturating-counter table indexed by PC."""

    def __init__(self, table_size=4096):
        check_power_of_two("table_size", table_size)
        self.table_size = table_size
        self._counters = bytearray([2] * table_size)  # weakly taken

    def predict_and_update(self, pc, taken):
        """Predict the branch at ``pc``, update state, return correctness."""
        idx = pc & (self.table_size - 1)
        counter = self._counters[idx]
        prediction = counter >= 2
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        return prediction == taken

    def simulate(self, pc, outcomes):
        """Mispredictions over a boolean outcome sequence for one PC."""
        counters = self._counters
        mask = self.table_size - 1
        idx = pc & mask
        mispredicts = 0
        counter = counters[idx]
        for taken in outcomes:
            if (counter >= 2) != taken:
                mispredicts += 1
            if taken:
                if counter < 3:
                    counter += 1
            elif counter > 0:
                counter -= 1
        counters[idx] = counter
        return mispredicts


class GSharePredictor:
    """GShare: 2-bit counters indexed by PC xor global history."""

    def __init__(self, table_size=16384, history_bits=12):
        check_power_of_two("table_size", table_size)
        if history_bits <= 0 or (1 << history_bits) > table_size:
            raise ValueError("history_bits must be positive and fit the table")
        self.table_size = table_size
        self.history_bits = history_bits
        self._counters = bytearray([2] * table_size)
        self._history = 0

    def predict_and_update(self, pc, taken):
        """Predict the branch at ``pc``, update state, return correctness."""
        mask = self.table_size - 1
        idx = (pc ^ self._history) & mask
        counter = self._counters[idx]
        prediction = counter >= 2
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        hist_mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & hist_mask
        return prediction == taken

    def simulate(self, pc, outcomes):
        """Mispredictions over a boolean outcome sequence for one PC."""
        counters = self._counters
        mask = self.table_size - 1
        hist_mask = (1 << self.history_bits) - 1
        history = self._history
        mispredicts = 0
        for taken in outcomes:
            idx = (pc ^ history) & mask
            counter = counters[idx]
            if (counter >= 2) != taken:
                mispredicts += 1
            if taken:
                if counter < 3:
                    counters[idx] = counter + 1
            elif counter > 0:
                counters[idx] = counter - 1
            history = ((history << 1) | 1) & hist_mask if taken else (history << 1) & hist_mask
        self._history = history
        return mispredicts


@dataclass
class BranchSite:
    """One static branch and its dynamic outcome stream.

    ``outcomes`` may be shorter than ``count`` when the workload sampled
    the stream; the simulated misprediction *rate* is then scaled to
    ``count`` dynamic executions.
    """

    name: str
    pc: int
    outcomes: np.ndarray
    count: int = 0

    def __post_init__(self):
        self.outcomes = np.asarray(self.outcomes, dtype=bool)
        if self.count == 0:
            self.count = len(self.outcomes)
        if self.count < len(self.outcomes):
            raise ValueError("count cannot be below the sampled outcome length")


def simulate_sites(sites, predictor=None, max_simulated=200_000):
    """Total (scaled) mispredictions across branch sites.

    Simulates up to ``max_simulated`` outcomes per site through a shared
    predictor (default GShare) and scales the observed misprediction rate
    to the site's full dynamic count.
    """
    predictor = predictor or GSharePredictor()
    total = 0.0
    for site in sites:
        outcomes = site.outcomes
        if len(outcomes) == 0:
            continue
        sample = outcomes[:max_simulated].tolist()
        mispredicts = predictor.simulate(site.pc, sample)
        rate = mispredicts / len(sample)
        total += rate * site.count
    return total
