"""Performance-counter aggregation (the LIKWID analog).

Collects, per phase and per run, the quantities every experiment reports:
instructions, cycles, branches/mispredicts, per-level service counts, and
DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stats import MemoryTraffic, ServiceCounts

__all__ = ["PhaseCounters", "RunCounters"]


@dataclass
class PhaseCounters:
    """Everything measured for one phase of one execution."""

    name: str
    instructions: int = 0
    branches: int = 0
    branch_mispredicts: float = 0.0
    irregular_service: ServiceCounts = field(default_factory=ServiceCounts)
    streaming_service: ServiceCounts = field(default_factory=ServiceCounts)
    streaming_bytes: int = 0
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    cycles: float = 0.0

    @property
    def ipc(self):
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self):
        """Branch mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions

    @property
    def demand_service(self):
        """Irregular + streaming service counts combined."""
        return self.irregular_service.merged(self.streaming_service)


@dataclass
class RunCounters:
    """Counters for a full execution (ordered list of phases)."""

    workload: str
    mode: str
    phases: list = field(default_factory=list)

    def phase(self, name):
        """Phase counters by name (raises ``KeyError`` if absent)."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r} in {self.workload}/{self.mode}")

    def has_phase(self, name):
        """True when a phase with ``name`` was recorded."""
        return any(phase.name == name for phase in self.phases)

    @property
    def cycles(self):
        """Total cycles across phases."""
        return sum(phase.cycles for phase in self.phases)

    @property
    def instructions(self):
        """Total dynamic instructions across phases."""
        return sum(phase.instructions for phase in self.phases)

    @property
    def branch_mispredicts(self):
        """Total (possibly scaled) branch mispredictions."""
        return sum(phase.branch_mispredicts for phase in self.phases)

    @property
    def traffic(self):
        """Total DRAM traffic across phases."""
        total = MemoryTraffic()
        for phase in self.phases:
            total = total.merged(phase.traffic)
        return total

    @property
    def irregular_service(self):
        """Combined irregular service counts across phases."""
        total = ServiceCounts()
        for phase in self.phases:
            total = total.merged(phase.irregular_service)
        return total

    @property
    def demand_service(self):
        """Combined demand (irregular + streaming) counts across phases."""
        total = ServiceCounts()
        for phase in self.phases:
            total = total.merged(phase.demand_service)
        return total

    @property
    def mpki(self):
        """Branch MPKI over the whole run."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions
