"""Analytic out-of-order core timing model.

Substitutes for the Sniper OoO simulator (DESIGN.md Section 4): cycles are
derived from dynamic instruction counts, simulated per-level memory service
counts, and simulated branch mispredictions. The model captures the three
effects the paper's results rest on:

* irregular accesses that miss deep in the hierarchy dominate runtime
  (limited memory-level parallelism per miss),
* software Binning adds instructions and mispredicted branches that occupy
  core resources (modeled as issue-bandwidth and penalty cycles),
* streaming accesses are largely hidden by the prefetcher and the OoO
  window but consume DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CoreParams", "PhaseTiming", "TimingModel"]


@dataclass(frozen=True)
class CoreParams:
    """Microarchitectural parameters of the modeled core (scaled Table II)."""

    issue_width: int = 4
    frequency_ghz: float = 2.66
    l1_latency: int = 3
    l2_latency: int = 8
    llc_latency: int = 21
    dram_latency: int = 213  # 80 ns at 2.66 GHz
    #: Average latency to a *remote* NUCA LLC bank (local bank + mean 4x4
    #: mesh hop distance at 2 cycles/hop, both directions). Data spread
    #: across the shared LLC (e.g. graph-tiling segments) pays this instead
    #: of the local-bank latency.
    llc_remote_latency: int = 45
    branch_penalty: int = 15
    #: Average overlapped outstanding irregular misses. Irregular updates are
    #: independent, so the 128-entry ROB / 512-entry store queue sustain
    #: several in flight; contention and address-generation serialization
    #: keep it well below the MSHR count.
    mlp_irregular: float = 8.0
    #: DRAM bandwidth share of one core, bytes per cycle (streams are
    #: bandwidth- rather than latency-bound thanks to the prefetcher).
    stream_bytes_per_cycle: float = 8.0

    def scaled(self, **overrides):
        """Copy with selected fields overridden."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class PhaseTiming:
    """Cycle breakdown for one phase."""

    name: str
    compute_cycles: float
    irregular_cycles: float
    streaming_cycles: float
    branch_cycles: float

    @property
    def total_cycles(self):
        """Total modeled cycles.

        Compute overlaps with streaming (the prefetcher keeps streams ahead
        of the core), so the larger of the two is charged; irregular-miss
        stalls and branch-misprediction penalties add on top.
        """
        return (
            max(self.compute_cycles, self.streaming_cycles)
            + self.irregular_cycles
            + self.branch_cycles
        )

    def seconds(self, frequency_ghz):
        """Wall-clock seconds at the given core frequency."""
        return self.total_cycles / (frequency_ghz * 1e9)

    def as_dict(self):
        """JSON-safe cycle breakdown (used by telemetry ``phase_timed``)."""
        return {
            "name": self.name,
            "compute_cycles": float(self.compute_cycles),
            "irregular_cycles": float(self.irregular_cycles),
            "streaming_cycles": float(self.streaming_cycles),
            "branch_cycles": float(self.branch_cycles),
            "total_cycles": float(self.total_cycles),
        }


class TimingModel:
    """Converts counted events into cycles using :class:`CoreParams`."""

    def __init__(self, params=None):
        self.params = params or CoreParams()

    def phase_timing(
        self,
        name,
        instructions,
        irregular_service,
        streaming_bytes,
        branch_mispredicts,
        shared_llc=False,
    ):
        """Build a :class:`PhaseTiming`.

        Parameters
        ----------
        instructions:
            Dynamic instruction count of the phase.
        irregular_service:
            :class:`repro.cache.ServiceCounts` for the phase's irregular
            accesses (L1 hits are pipelined and charged no stall).
        streaming_bytes:
            Bytes moved by streaming reads/writes (DRAM-bandwidth bound).
        branch_mispredicts:
            Mispredicted branches (possibly fractional when sampled).
        shared_llc:
            Charge LLC hits at the remote NUCA average instead of the
            local-bank latency (data spread across all banks).
        """
        p = self.params
        compute = instructions / p.issue_width
        llc_latency = p.llc_remote_latency if shared_llc else p.llc_latency
        irregular = (
            irregular_service.l2 * p.l2_latency
            + irregular_service.llc * llc_latency
            + irregular_service.dram * p.dram_latency
        ) / p.mlp_irregular
        streaming = streaming_bytes / p.stream_bytes_per_cycle
        branch = branch_mispredicts * p.branch_penalty
        return PhaseTiming(name, compute, irregular, streaming, branch)

    def ipc(self, instructions, timing):
        """Instructions per cycle for a phase timing."""
        total = timing.total_cycles
        return instructions / total if total else 0.0
