"""Core model: branch predictors, analytic OoO timing, perf counters."""

from repro.cpu.branch import (
    BimodalPredictor,
    BranchSite,
    GSharePredictor,
    simulate_sites,
)
from repro.cpu.counters import PhaseCounters, RunCounters
from repro.cpu.timing import CoreParams, PhaseTiming, TimingModel

__all__ = [
    "BimodalPredictor",
    "BranchSite",
    "CoreParams",
    "GSharePredictor",
    "PhaseCounters",
    "PhaseTiming",
    "RunCounters",
    "TimingModel",
    "simulate_sites",
]
