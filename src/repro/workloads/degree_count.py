"""Degree-Counting: the first Edgelist-to-CSR kernel.

Streams the edge list and increments ``degrees[src]`` per edge — a
commutative irregular update with a 4 B tuple (the index alone; the +1 is
implicit), the smallest tuple in the paper's workload table.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import count_degrees
from repro.graphs.edgelist import EdgeList
from repro.pb.engine import PropagationBlocker
from repro.workloads.base import RegionSpec, Workload

__all__ = ["DegreeCount"]


class DegreeCount(Workload):
    """Count out-degrees of an edge list (commutative add)."""

    name = "degree-count"
    commutative = True
    reduce_op = "add"
    tuple_bytes = 4
    element_bytes = 4
    stream_bytes_per_update = 8  # the (src, dst) pair is streamed per edge

    def __init__(self, edges: EdgeList):
        self.edges = edges
        self.num_indices = edges.num_vertices
        self.update_indices = edges.src
        self.update_values = None
        self.data_region = RegionSpec(
            f"{self.name}.degrees", self.element_bytes, self.num_indices
        )

    def run_reference(self):
        """Direct degree counting."""
        return count_degrees(self.edges)

    def run_pb_functional(self, num_bins=256):
        """Degree counting via PB (bin by src, then accumulate)."""
        out = np.zeros(self.num_indices, dtype=np.int64)
        blocker = PropagationBlocker(self.num_indices, num_bins=num_bins)
        ones = np.ones(self.num_updates, dtype=np.int64)
        return blocker.execute(self.update_indices, ones, out, op="add")
