"""Declarative workload registry: one table from names to runnable points.

Every workload and every input the harness knows is *declared* here as a
spec object — like :mod:`repro.harness.knobs`, the table is the single
entry point, and everything else (CLI, sweep executor, checkpoint specs,
service job ids, golden canaries) resolves through it instead of growing
its own ``if workload_name == ...`` ladder.

Identity contract
-----------------

A resolved point has exactly one identity, spelled two ways:

* the **cache key** ``workload:input:scale`` — the wire form, feeding
  ``run_digest``, result-cache paths, checkpoint specs, and service job
  ids. Its bytes are frozen: they must match what the pre-registry
  ``make_workload`` produced, or every warm cache and golden digest on
  disk silently invalidates (pinned by ``tests/harness/test_digest_pins``).
* the **spec string** ``workload/input@scale`` — the canonical
  user-facing form accepted by ``repro point --spec`` and friends.

:func:`parse_spec` / :func:`format_spec` / :func:`cache_key_for` convert
between them; :func:`resolve` (and its ``resolve_spec`` / ``resolve_point``
wrappers) is the only constructor path.

Inputs are typed by *kind* (``graph``, ``matrix``, ``keys``, ``perm``,
``sym``); a workload declares which kinds it consumes, so ingested real
graphs (see :mod:`repro.graphs.ingest`) run under any graph workload even
when they are not part of that workload's canonical suite tuple. Ingested
inputs arrive at one size and therefore carry a *fixed* scale
(``ceil(log2(|V|))``); resolving them at any other explicit scale is an
error rather than a silent resample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.graphs import build_csr, mesh2d, rmat, uniform_random
from repro.graphs.ingest import DATASETS, load_dataset, natural_scale
from repro.sparse import (
    poisson2d,
    random_permutation,
    random_sparse,
    random_symmetric,
)
from repro.workloads.csr_build import CSRBuild
from repro.workloads.degree_count import DegreeCount
from repro.workloads.histogram import Histogram
from repro.workloads.intsort import IntegerSort
from repro.workloads.neighbor_populate import NeighborPopulate
from repro.workloads.pagerank import Pagerank
from repro.workloads.pinv import PInv
from repro.workloads.radii import Radii
from repro.workloads.spmv import SpMV
from repro.workloads.symperm import SymPerm
from repro.workloads.transpose import Transpose
from repro.workloads.validate import verify_workload

__all__ = [
    "DEFAULT_SCALE",
    "GRAPH_NAMES",
    "MATRIX_NAMES",
    "DATASET_NAMES",
    "INPUTS",
    "WORKLOADS",
    "WORKLOAD_INPUTS",
    "InputSpec",
    "WorkloadSpec",
    "cache_key_for",
    "default_bin_counts",
    "describe_inputs",
    "describe_workloads",
    "effective_scale",
    "format_spec",
    "load_csr",
    "load_graph",
    "load_matrix",
    "make_workload",
    "parse_spec",
    "resolve",
    "resolve_point",
    "resolve_spec",
    "workload_instances",
]

DEFAULT_SCALE = 18  # log2 of the vertex-namespace size
_DEG = 8  # average degree of the synthetic graphs

#: Input kinds — the type system connecting inputs to workloads.
KIND_GRAPH = "graph"
KIND_MATRIX = "matrix"
KIND_KEYS = "keys"
KIND_PERM = "perm"
KIND_SYM = "sym"

#: Workload classes only the registry may construct (outside the
#: workloads package itself). Pure literal: the ``workload-registry``
#: lint rule parses this tuple statically, and a unit test cross-checks
#: it against the live registry.
REGISTERED_CLASSES = (
    "CSRBuild",
    "DegreeCount",
    "Histogram",
    "IntegerSort",
    "NeighborPopulate",
    "Pagerank",
    "PInv",
    "Radii",
    "SpMV",
    "SymPerm",
    "Transpose",
)

#: Synthetic graph inputs (paper analogs in parentheses): KRON (KRON/TWIT
#: — heavy power-law skew), WEB (milder power-law), URND (uniform
#: random), EURO (bounded-degree road-style mesh).
GRAPH_NAMES = ("KRON", "WEB", "URND", "EURO")

#: Matrix inputs: POIS (simulation stencil), ROPT (random optimization).
MATRIX_NAMES = ("POIS", "ROPT")

#: Ingested real-graph inputs (see repro.graphs.ingest).
DATASET_NAMES = tuple(sorted(DATASETS))

# The shared instance cache. Key shapes are part of the identity contract
# (unchanged from the pre-registry module): graphs (name, scale), CSR
# ("csr", name, scale), matrices (name, scale), the shared symmetric
# matrix ("sym", scale), workload instances ("wl", workload, input, scale).
_cache = {}


def _cached(key, builder):
    if key not in _cache:
        _cache[key] = builder()
    return _cache[key]


# --------------------------------------------------------------------- #
# Input registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class InputSpec:
    """One named input: its kind, how to load it, and its scale rules."""

    name: str
    #: ``graph`` / ``matrix`` / ``keys`` / ``perm`` / ``sym``.
    kind: str
    description: str
    #: ``load(scale)`` builds the underlying object (EdgeList or CSR
    #: matrix). ``None`` for declarative-only inputs (keys/perm/sym) that
    #: the workload builder materializes itself.
    load: Optional[Callable[[int], object]] = None
    #: Dataset name in :data:`repro.graphs.ingest.DATASETS` for ingested
    #: inputs; their scale is fixed at ``ceil(log2(|V|))``.
    dataset: Optional[str] = None


def _synthetic_graph(name, scale):
    n = 1 << scale
    m = n * _DEG
    if name == "KRON":
        return rmat(n, m, seed=101)
    if name == "WEB":
        return rmat(n, m, seed=202, a=0.45, b=0.22, c=0.22)
    if name == "URND":
        return uniform_random(n, m, seed=303)
    if name == "EURO":
        return mesh2d(int(np.sqrt(n)), seed=404)
    raise KeyError(name)


def _matrix(name, scale):
    if name == "POIS":
        return poisson2d(int(np.sqrt(1 << scale)), seed=505).to_csr()
    if name == "ROPT":
        n = 1 << scale
        return random_sparse(n, n, n * 6, seed=606).to_csr()
    raise KeyError(name)


def _make_inputs():
    specs = []
    graph_notes = {
        "KRON": "RMAT power-law graph (KRON/TWIT analog)",
        "WEB": "milder power-law RMAT graph (WEB analog)",
        "URND": "uniform random graph",
        "EURO": "bounded-degree 2-D road-style mesh",
    }
    for name in GRAPH_NAMES:
        specs.append(
            InputSpec(
                name=name,
                kind=KIND_GRAPH,
                description=graph_notes[name],
                load=lambda scale, name=name: _synthetic_graph(name, scale),
            )
        )
    matrix_notes = {
        "POIS": "5-point Poisson stencil matrix (simulation analog)",
        "ROPT": "random sparse matrix (optimization analog)",
    }
    for name in MATRIX_NAMES:
        specs.append(
            InputSpec(
                name=name,
                kind=KIND_MATRIX,
                description=matrix_notes[name],
                load=lambda scale, name=name: _matrix(name, scale),
            )
        )
    specs.append(
        InputSpec(
            "U16",
            KIND_KEYS,
            "uniform keys, narrow range (per-workload max-key ladder)",
        )
    )
    specs.append(
        InputSpec(
            "U64",
            KIND_KEYS,
            "uniform keys, wide range (per-workload max-key ladder)",
        )
    )
    specs.append(
        InputSpec("PERM", KIND_PERM, "random permutation of 2^(scale+1)")
    )
    specs.append(
        InputSpec(
            "SYM", KIND_SYM, "random symmetric matrix + permutation pair"
        )
    )
    for name in DATASET_NAMES:
        specs.append(
            InputSpec(
                name=name,
                kind=KIND_GRAPH,
                description=DATASETS[name].description,
                load=lambda scale, name=name: load_dataset(name),
                dataset=name,
            )
        )
    return {spec.name: spec for spec in specs}


#: Every named input, keyed by name.
INPUTS = _make_inputs()


def input_fixed_scale(name):
    """The pinned scale of an ingested input, or ``None`` if free."""
    spec = INPUTS[name]
    if spec.dataset is None:
        return None
    return _cached(
        ("natscale", name), lambda: natural_scale(load_dataset(spec.dataset))
    )


def effective_scale(input_name, scale=None):
    """Resolve ``scale`` against the input's scale rules.

    ``None`` means the input's fixed scale (ingested graphs) or the suite
    default; an explicit scale that contradicts a fixed-scale input is a
    :class:`ValueError` rather than a silent resample.
    """
    if input_name not in INPUTS:
        return DEFAULT_SCALE if scale is None else scale
    fixed = input_fixed_scale(input_name)
    if fixed is not None:
        if scale is not None and scale != fixed:
            raise ValueError(
                f"input {input_name!r} is an ingested dataset fixed at "
                f"scale {fixed}; cannot resolve it at scale {scale}"
            )
        return fixed
    return DEFAULT_SCALE if scale is None else scale


def load_graph(name, scale=None):
    """Edge list for a named graph input (synthetic or ingested; cached)."""
    spec = INPUTS.get(name)
    if spec is None or spec.kind != KIND_GRAPH:
        known = GRAPH_NAMES + DATASET_NAMES
        raise KeyError(f"unknown graph {name!r}; expected one of {known}")
    scale = effective_scale(name, scale)
    return _cached((name, scale), lambda: spec.load(scale))


def load_csr(name, scale=None):
    """CSR of a named graph input (cached)."""
    scale = effective_scale(name, scale)
    return _cached(
        ("csr", name, scale), lambda: build_csr(load_graph(name, scale))
    )


def load_matrix(name, scale=None):
    """CSR matrix for a named matrix input (cached)."""
    spec = INPUTS.get(name)
    if spec is None or spec.kind != KIND_MATRIX:
        raise KeyError(
            f"unknown matrix {name!r}; expected one of {MATRIX_NAMES}"
        )
    scale = effective_scale(name, scale)
    return _cached((name, scale), lambda: spec.load(scale))


# --------------------------------------------------------------------- #
# Workload registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: its suite, builder, and verification."""

    name: str
    description: str
    #: Canonical suite inputs — what ``workload_instances`` iterates and
    #: what the digest pins cover.
    inputs: tuple
    #: Input kinds this workload can consume; any registered input of a
    #: matching kind resolves even when outside the canonical suite
    #: (ingested graphs under the paper's graph kernels, for example).
    kinds: tuple
    #: ``build(input_name, scale)`` constructs the workload instance.
    build: Callable[[str, int], object]
    #: ``bin_counts(scale)`` — the default bin-count sweep for bin-count
    #: sensitivity experiments at this scale.
    bin_counts: Callable[[int], tuple]
    #: ``oracle(workload)`` verifies functional correctness (raises on
    #: mismatch). Defaults to :func:`repro.workloads.verify_workload`.
    oracle: Callable[[object], object]
    #: Extension workloads ride outside the paper's nine-kernel suite:
    #: excluded from ``workload_instances`` (and thus digest pins and
    #: default sweeps) unless explicitly requested.
    extension: bool = False


def default_bin_counts(scale):
    """Power-of-two bin counts from 16 up to ~namespace/64 (paper sweep).

    At the suite's scale 18 this is the Figure 4 sweep (16..4096);
    smaller scales — ingested graphs especially — clip the top so bins
    never outnumber indices.
    """
    top_log2 = max(4, min(12, scale - 6))
    return tuple(1 << b for b in range(4, top_log2 + 1))


def _build_degree_count(input_name, scale):
    return DegreeCount(load_graph(input_name, scale))


def _build_neighbor_populate(input_name, scale):
    return NeighborPopulate(load_graph(input_name, scale))


def _build_pagerank(input_name, scale):
    return Pagerank(load_csr(input_name, scale))


def _build_radii(input_name, scale):
    return Radii(load_csr(input_name, scale))


def _build_integer_sort(input_name, scale):
    max_key = 1 << (scale - 3) if input_name == "U16" else 1 << (scale - 1)
    rng = np.random.default_rng(707)
    keys = rng.integers(0, max_key, size=(1 << scale) * 4, dtype=np.int64)
    return IntegerSort(keys, max_key)


def _build_spmv(input_name, scale):
    return SpMV(load_matrix(input_name, scale))


def _build_pinv(input_name, scale):
    return PInv(random_permutation(1 << (scale + 1), seed=808))


def _build_transpose(input_name, scale):
    return Transpose(load_matrix(input_name, scale))


def _build_symperm(input_name, scale):
    n = 1 << scale
    sym = _cached(("sym", scale), lambda: random_symmetric(n, n * 4, seed=909))
    return SymPerm(sym, random_permutation(n, seed=910))


def _build_histogram(input_name, scale):
    # Radix-partition counting (64-wide buckets). The key range is wider
    # than integer-sort's so the bucket array scales with the suite's
    # other update namespaces: U16 buckets span 2^(scale-3) entries
    # (outgrowing the LLC at full scale), U64 spans 2^(scale-1) — the
    # same footprint as degree-count's counts.
    max_key = 1 << (scale + 3) if input_name == "U16" else 1 << (scale + 5)
    rng = np.random.default_rng(1011)
    keys = rng.integers(0, max_key, size=(1 << scale) * 4, dtype=np.int64)
    return Histogram(keys, max_key)


def _build_csr_build(input_name, scale):
    return CSRBuild(load_graph(input_name, scale))


def _make_workloads():
    entries = (
        WorkloadSpec(
            name="degree-count",
            description="count out-degrees (commutative add, 4 B tuple)",
            inputs=GRAPH_NAMES,
            kinds=(KIND_GRAPH,),
            build=_build_degree_count,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="neighbor-populate",
            description="place neighbors at cursor slots (non-commutative)",
            inputs=GRAPH_NAMES,
            kinds=(KIND_GRAPH,),
            build=_build_neighbor_populate,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="pagerank",
            description="push-style rank propagation (commutative add)",
            inputs=GRAPH_NAMES,
            kinds=(KIND_GRAPH,),
            build=_build_pagerank,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="radii",
            description="multi-source radii estimation (commutative or)",
            inputs=("KRON", "WEB", "URND"),  # the paper skips EURO
            kinds=(KIND_GRAPH,),
            build=_build_radii,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="integer-sort",
            description="counting sort of uniform keys (non-commutative)",
            inputs=("U16", "U64"),  # max-key variants
            kinds=(KIND_KEYS,),
            build=_build_integer_sort,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="spmv",
            description="sparse matrix-vector product (commutative add)",
            inputs=MATRIX_NAMES,
            kinds=(KIND_MATRIX,),
            build=_build_spmv,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="pinv",
            description="permutation inversion (scatter, non-commutative)",
            inputs=("PERM",),
            kinds=(KIND_PERM,),
            build=_build_pinv,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="transpose",
            description="sparse matrix transpose (non-commutative)",
            inputs=MATRIX_NAMES,
            kinds=(KIND_MATRIX,),
            build=_build_transpose,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="symperm",
            description="symmetric permutation of a sparse matrix",
            inputs=("SYM",),
            kinds=(KIND_SYM,),
            build=_build_symperm,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
        ),
        WorkloadSpec(
            name="histogram",
            description="bucket-count shifted keys (commutative add)",
            inputs=("U16", "U64"),
            kinds=(KIND_KEYS,),
            build=_build_histogram,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
            extension=True,
        ),
        WorkloadSpec(
            name="csr-build",
            description="fused edge-list-to-CSR build (non-commutative)",
            inputs=GRAPH_NAMES + DATASET_NAMES,
            kinds=(KIND_GRAPH,),
            build=_build_csr_build,
            bin_counts=default_bin_counts,
            oracle=verify_workload,
            extension=True,
        ),
    )
    return {spec.name: spec for spec in entries}


#: Every registered workload, keyed by name. Registration order is
#: iteration order: the paper's nine kernels first (their order fixes the
#: suite's sweep/digest enumeration), extensions after.
WORKLOADS = _make_workloads()

#: The paper suite (workload name -> canonical input names) — the exact
#: mapping the pre-registry module exported; extensions excluded.
WORKLOAD_INPUTS = {
    spec.name: spec.inputs
    for spec in WORKLOADS.values()
    if not spec.extension
}


# --------------------------------------------------------------------- #
# Identity: spec strings and cache keys
# --------------------------------------------------------------------- #


def format_spec(workload_name, input_name, scale):
    """The canonical spec string ``workload/input@scale``."""
    return f"{workload_name}/{input_name}@{scale}"


def parse_spec(text):
    """Parse ``workload/input[@scale]`` into ``(workload, input, scale)``.

    ``scale`` is ``None`` when omitted (meaning: the input's fixed scale,
    or the suite default). Malformed specs raise :class:`ValueError`.
    """
    body, sep, scale_text = text.partition("@")
    workload_name, slash, input_name = body.partition("/")
    if not slash or not workload_name or not input_name or "/" in input_name:
        raise ValueError(
            f"bad workload spec {text!r}; expected workload/input[@scale]"
        )
    if not sep:
        return workload_name, input_name, None
    try:
        scale = int(scale_text)
    except ValueError:
        raise ValueError(
            f"bad scale {scale_text!r} in workload spec {text!r}"
        ) from None
    if scale <= 0:
        raise ValueError(f"scale must be positive in workload spec {text!r}")
    return workload_name, input_name, scale


def cache_key_for(workload_name, input_name, scale=None):
    """The wire identity ``workload:input:scale`` of a resolved point.

    These bytes feed ``run_digest`` and the result cache: they are frozen
    to the pre-registry format (colon-separated, integer scale).
    """
    scale = effective_scale(input_name, scale)
    return f"{workload_name}:{input_name}:{scale}"


# --------------------------------------------------------------------- #
# Resolution
# --------------------------------------------------------------------- #


def _workload_spec(workload_name):
    try:
        return WORKLOADS[workload_name]
    except KeyError:
        raise KeyError(f"unknown workload {workload_name!r}") from None


def resolve(workload_name, input_name, scale=None):
    """Instantiate a registered workload on a registered input (cached).

    The single constructor path: validates the names, checks kind
    compatibility, applies the input's scale rules, builds (or returns
    the cached instance), and stamps ``cache_key``.
    """
    spec = _workload_spec(workload_name)
    input_spec = INPUTS.get(input_name)
    if input_spec is None:
        known = ", ".join(sorted(INPUTS))
        raise KeyError(
            f"unknown input {input_name!r}; registered inputs: {known}"
        )
    if input_spec.kind not in spec.kinds:
        raise KeyError(
            f"workload {workload_name!r} consumes {spec.kinds} inputs; "
            f"{input_name!r} is a {input_spec.kind!r} input"
        )
    scale = effective_scale(input_name, scale)
    key = ("wl", workload_name, input_name, scale)
    workload = _cached(key, lambda: spec.build(input_name, scale))
    workload.cache_key = cache_key_for(workload_name, input_name, scale)
    return workload


def resolve_spec(text):
    """Resolve a canonical ``workload/input[@scale]`` spec string."""
    workload_name, input_name, scale = parse_spec(text)
    return resolve(workload_name, input_name, scale)


def resolve_point(cache_key):
    """Resolve a wire-form ``workload:input:scale`` cache key.

    The inverse of ``workload.cache_key`` — what the sweep executor's
    workers, checkpoint attach, and the service job queue use to rebuild
    a workload from its serialized identity.
    """
    pieces = cache_key.split(":")
    if len(pieces) != 3:
        raise ValueError(
            f"bad cache key {cache_key!r}; expected workload:input:scale"
        )
    workload_name, input_name, scale_text = pieces
    try:
        scale = int(scale_text)
    except ValueError:
        raise ValueError(
            f"bad scale {scale_text!r} in cache key {cache_key!r}"
        ) from None
    return resolve(workload_name, input_name, scale)


def make_workload(workload_name, input_name, scale=None):
    """Pre-registry constructor name, kept for the compatibility shim."""
    return resolve(workload_name, input_name, scale)


def workload_instances(scale=None, workloads=None, include_extensions=False):
    """Yield ``(workload_name, input_name, workload)`` over the suite.

    The paper's nine kernels by default; ``include_extensions=True`` adds
    the extension workloads (their ingested inputs resolve at their own
    fixed scales regardless of ``scale``).
    """
    for name, spec in WORKLOADS.items():
        if spec.extension and not include_extensions:
            continue
        if workloads is not None and name not in workloads:
            continue
        for input_name in spec.inputs:
            point_scale = (
                None if input_fixed_scale(input_name) is not None else scale
            )
            yield name, input_name, resolve(name, input_name, point_scale)


# --------------------------------------------------------------------- #
# Listings
# --------------------------------------------------------------------- #


def describe_workloads():
    """Rows describing every registered workload (``repro workloads``)."""
    rows = []
    for spec in WORKLOADS.values():
        rows.append(
            {
                "workload": spec.name,
                "inputs": list(spec.inputs),
                "kinds": list(spec.kinds),
                "extension": spec.extension,
                "description": spec.description,
                "specs": [
                    format_spec(
                        spec.name,
                        input_name,
                        effective_scale(input_name, None)
                        if input_fixed_scale(input_name) is not None
                        else DEFAULT_SCALE,
                    )
                    for input_name in spec.inputs
                ],
            }
        )
    return rows


def describe_inputs(scale=None, include_datasets=False):
    """Rows describing the input suite (the Table III analog).

    Synthetic graphs and matrices at ``scale``; with
    ``include_datasets=True``, ingested real graphs at their fixed
    natural scales join the table.
    """
    rows = []
    for name in GRAPH_NAMES:
        edges = load_graph(name, scale)
        rows.append(
            {
                "input": name,
                "kind": "graph",
                "vertices": edges.num_vertices,
                "edges": edges.num_edges,
            }
        )
    for name in MATRIX_NAMES:
        matrix = load_matrix(name, scale)
        rows.append(
            {
                "input": name,
                "kind": "matrix",
                "rows": matrix.num_rows,
                "nnz": matrix.nnz,
            }
        )
    if include_datasets:
        for name in DATASET_NAMES:
            edges = load_graph(name)
            rows.append(
                {
                    "input": name,
                    "kind": "graph",
                    "vertices": edges.num_vertices,
                    "edges": edges.num_edges,
                    "scale": input_fixed_scale(name),
                    "dataset": INPUTS[name].dataset,
                }
            )
    return rows
