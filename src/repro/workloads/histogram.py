"""Histogram: the canonical commutative irregular-update kernel.

Streams a key array and increments ``counts[key >> shift]`` per element —
the radix-partitioning histogram pass that seeds counting sort, radix
join, and bucketing pipelines. The update is a commutative add over a
bucket namespace much smaller than the key range, so it sits between
Degree-Counting (graph-shaped skew) and Integer Sort's histogram pass
(uniform keys) in the paper's taxonomy, and — like them — any update
order yields the same counts, which is exactly the unordered parallelism
PB needs (Section III-B).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_index_array, check_positive
from repro.pb.engine import PropagationBlocker
from repro.workloads.base import RegionSpec, Workload

__all__ = ["Histogram"]


class Histogram(Workload):
    """Bucket-count integer keys via ``counts[key >> shift] += 1``."""

    name = "histogram"
    commutative = True
    reduce_op = "add"
    tuple_bytes = 4  # the bucket index alone; the +1 is implicit
    element_bytes = 8  # int64 counts
    stream_bytes_per_update = 4

    def __init__(self, keys, max_key, shift=6):
        check_positive("max_key", max_key)
        if shift < 0:
            raise ValueError(f"shift must be non-negative, got {shift}")
        keys = as_index_array(keys, "keys")
        if len(keys) and (keys.min() < 0 or keys.max() >= max_key):
            raise ValueError("keys must lie in [0, max_key)")
        self.keys = keys
        self.shift = shift
        self.num_indices = max(1, (max_key + (1 << shift) - 1) >> shift)
        self.update_indices = keys >> shift
        self.update_values = None
        self.data_region = RegionSpec(
            f"{self.name}.counts", self.element_bytes, self.num_indices
        )

    def run_reference(self):
        """Direct bucket counting."""
        return np.bincount(
            self.update_indices, minlength=self.num_indices
        ).astype(np.int64)

    def run_pb_functional(self, num_bins=256):
        """Bucket counting via PB (bin by bucket, then accumulate)."""
        out = np.zeros(self.num_indices, dtype=np.int64)
        blocker = PropagationBlocker(self.num_indices, num_bins=num_bins)
        ones = np.ones(self.num_updates, dtype=np.int64)
        return blocker.execute(self.update_indices, ones, out, op="add")
