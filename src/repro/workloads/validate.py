"""Uniform result validation across kernels.

Different kernels need different notions of equality after a PB/COBRA
reordering: commutative float kernels match within tolerance, placement
kernels produce semantically-equal-but-permuted structures. This module
centralizes those rules so tests, examples, and downstream users compare
results the right way per kernel.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.sparse.csr_matrix import CSRMatrix

__all__ = ["results_equal", "verify_workload"]


def _csr_graphs_equal(a: CSRGraph, b: CSRGraph):
    if not np.array_equal(a.offsets, b.offsets):
        return False
    return np.array_equal(
        a.canonical_sorted().neighbors, b.canonical_sorted().neighbors
    )


def _csr_matrices_equal(a: CSRMatrix, b: CSRMatrix):
    if a.shape != b.shape or not np.array_equal(a.indptr, b.indptr):
        return False
    ca, cb = a.canonical(), b.canonical()
    return np.array_equal(ca.indices, cb.indices) and np.allclose(
        ca.data, cb.data
    )


def results_equal(a, b, float_tolerance=1e-9):
    """Semantic equality of two kernel results of the same type.

    Handles the result types the workloads produce: numpy arrays (exact
    for integers, within tolerance for floats), CSR graphs/matrices (per-
    row sets), and tuples of arrays (SymPerm's canonical triples).
    """
    if isinstance(a, CSRGraph) and isinstance(b, CSRGraph):
        return _csr_graphs_equal(a, b)
    if isinstance(a, CSRMatrix) and isinstance(b, CSRMatrix):
        return _csr_matrices_equal(a, b)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            results_equal(x, y, float_tolerance) for x, y in zip(a, b)
        )
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    if np.issubdtype(a.dtype, np.floating) or np.issubdtype(
        b.dtype, np.floating
    ):
        return bool(np.allclose(a, b, atol=float_tolerance, rtol=1e-7))
    return bool(np.array_equal(a, b))


def verify_workload(workload, num_bins=256, float_tolerance=1e-9):
    """Check a workload's PB execution against its direct execution.

    Returns True when the PB-reordered result is semantically equal to
    the reference; raises ``AssertionError`` with a diagnostic otherwise.
    This is the check every kernel must pass for PB (and COBRA) to be
    applicable — the Section III-B criterion, executable.
    """
    reference = workload.run_reference()
    blocked = workload.run_pb_functional(num_bins=num_bins)
    if not results_equal(reference, blocked, float_tolerance):
        raise AssertionError(
            f"{workload.name}: PB reordering changed the result "
            f"(num_bins={num_bins}) — the kernel lacks unordered parallelism"
        )
    return True
