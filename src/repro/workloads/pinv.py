"""PINV (SuiteSparse ``cs_pinv``): invert a permutation.

``inv[perm[i]] = i`` — every target index is written exactly once, so the
update stream has zero temporal reuse and exactly one update per index.
That makes PINV the paper's outlier: more bins do *not* help Accumulate
(per-bin work is too small, so parallel-dispatch overhead dominates —
Section VII-A), and COBRA's benefit over PB-SW is limited.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_index_array
from repro.pb.engine import PropagationBlocker
from repro.workloads.base import RegionSpec, Workload

__all__ = ["PInv"]


class PInv(Workload):
    """Compute the inverse of a permutation vector."""

    name = "pinv"
    commutative = False
    tuple_bytes = 16  # (8 B target, 8 B source)
    element_bytes = 8
    stream_bytes_per_update = 8
    baseline_instr_per_update = 6  # bare store loop
    accum_instr_per_update = 6

    def __init__(self, perm):
        perm = as_index_array(perm, "perm")
        n = len(perm)
        if n == 0:
            raise ValueError("perm must be non-empty")
        if not np.array_equal(np.sort(perm), np.arange(n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        self.perm = perm
        self.num_indices = n
        self.update_indices = perm
        self.update_values = np.arange(n, dtype=np.int64)
        self.data_region = RegionSpec(
            f"{self.name}.inverse", self.element_bytes, n
        )

    def run_reference(self):
        """Direct inversion."""
        inverse = np.empty(self.num_indices, dtype=np.int64)
        inverse[self.perm] = np.arange(self.num_indices)
        return inverse

    def run_pb_functional(self, num_bins=256):
        """Inversion via PB ('store' updates hit distinct targets)."""
        inverse = np.empty(self.num_indices, dtype=np.int64)
        blocker = PropagationBlocker(self.num_indices, num_bins=num_bins)
        return blocker.execute(
            self.update_indices, self.update_values, inverse, op="store"
        )
