"""Sparse Transpose (SuiteSparse ``cs_transpose``).

Builds the CSR of ``A.T`` by scattering each entry of ``A`` to
``out[cursor[col]++]`` — the sparse-matrix twin of Neighbor-Populate:
non-commutative cursor updates plus placement stores, 16 B tuples.
"""

from __future__ import annotations

import numpy as np

from repro.pb.bins import BinSpec, bin_updates
from repro.sparse.csr_matrix import CSRMatrix
from repro.workloads._ranks import placement_slots
from repro.workloads.base import RegionSpec, Segment, Workload

__all__ = ["Transpose"]


class Transpose(Workload):
    """Construct the transpose of a CSR matrix."""

    name = "transpose"
    commutative = False
    tuple_bytes = 16  # (4 B col, 4 B row, 8 B value)
    element_bytes = 4  # cursor-array entries
    stream_bytes_per_update = 16
    baseline_instr_per_update = 11  # cursor update + two output stores
    accum_instr_per_update = 11

    def __init__(self, matrix: CSRMatrix):
        self.matrix = matrix
        self.num_indices = matrix.num_cols
        self._rows = np.repeat(
            np.arange(matrix.num_rows, dtype=np.int64), np.diff(matrix.indptr)
        )
        self.update_indices = matrix.indices  # scatter key: the column
        self.update_values = self._rows
        self.data_region = RegionSpec(
            f"{self.name}.cursors", self.element_bytes, self.num_indices
        )
        self.output_region = RegionSpec(
            f"{self.name}.out", 16, max(matrix.nnz, 1)
        )
        self._slots = placement_slots(matrix.indices, matrix.num_cols)

    def extra_baseline_segments(self):
        """(row, value) stores into the output arrays."""
        return [Segment(self.output_region, self._slots, True)]

    def extra_accumulate_segments(self, order):
        """Output stores replayed in bin-major order (stable per column)."""
        return [Segment(self.output_region, self._slots[order], True)]

    def run_reference(self):
        """Direct transpose via the substrate."""
        return self.matrix.transpose()

    def run_pb_functional(self, num_bins=256):
        """Transpose with the entry stream binned by column."""
        matrix = self.matrix
        spec = BinSpec.from_num_bins(self.num_indices, num_bins)
        packed = np.arange(matrix.nnz, dtype=np.int64)  # entry IDs
        binned_cols, binned_entry, _ = bin_updates(
            matrix.indices, packed, spec
        )
        counts = np.bincount(binned_cols, minlength=self.num_indices)
        indptr = np.zeros(self.num_indices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        slots = placement_slots(binned_cols, self.num_indices, indptr[:-1])
        indices = np.empty(matrix.nnz, dtype=np.int64)
        data = np.empty(matrix.nnz)
        indices[slots] = self._rows[binned_entry]
        data[slots] = matrix.data[binned_entry]
        return CSRMatrix(indptr, indices, data, matrix.num_rows)
