"""Pagerank (GAP-style), the kernel PB was originally built for.

One push iteration: stream the CSR and scatter each source's contribution
into ``scores[dst]`` — commutative float adds with 8 B tuples. The paper
simulates a single iteration (runtime is constant across iterations);
:meth:`run_to_convergence` supports the Figure 15 tiling comparison.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.branch import BranchSite
from repro.graphs.csr import CSRGraph
from repro.pb.engine import PropagationBlocker
from repro.workloads.base import RegionSpec, Workload, site_pc

__all__ = ["Pagerank"]


class Pagerank(Workload):
    """One push-style Pagerank iteration over a CSR graph."""

    name = "pagerank"
    commutative = True
    reduce_op = "add"
    tuple_bytes = 8  # (4 B dst, 4 B contribution)
    element_bytes = 4  # fp32 score accumulators
    stream_bytes_per_update = 8  # neighbor ID + (amortized) source data
    baseline_instr_per_update = 9  # float add in the loop body
    accum_instr_per_update = 9

    def __init__(self, graph: CSRGraph, damping=0.85):
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must lie in (0, 1)")
        self.graph = graph
        self.damping = damping
        self.num_indices = graph.num_vertices
        degrees = graph.degrees()
        out_deg = np.maximum(degrees, 1)
        scores = np.full(graph.num_vertices, 1.0 / graph.num_vertices)
        contrib = scores / out_deg
        src_per_edge = graph.edge_sources()
        self.update_indices = graph.neighbors
        self.update_values = contrib[src_per_edge]
        self.data_region = RegionSpec(
            f"{self.name}.scores", self.element_bytes, self.num_indices
        )
        # Neighborhood boundary outcomes: taken when the next edge starts a
        # new source. Power-law degree sequences make this unpredictable
        # (paper footnote 3).
        self._boundary = np.diff(src_per_edge, append=-1) != 0

    def extra_branch_sites(self, phase_name):
        """Boundary check is present wherever the CSR is streamed."""
        if phase_name in ("main", "binning"):
            return [
                BranchSite(
                    "neigh_boundary",
                    site_pc(self.name, "neigh_boundary"),
                    self._boundary,
                )
            ]
        return []

    def _finalize(self, raw):
        base = (1.0 - self.damping) / self.num_indices
        return base + self.damping * raw

    def run_reference(self):
        """One iteration, direct scatter."""
        raw = np.zeros(self.num_indices)
        np.add.at(raw, self.update_indices, self.update_values)
        return self._finalize(raw)

    def run_pb_functional(self, num_bins=256):
        """One iteration via PB."""
        raw = np.zeros(self.num_indices)
        blocker = PropagationBlocker(self.num_indices, num_bins=num_bins)
        blocker.execute(self.update_indices, self.update_values, raw, op="add")
        return self._finalize(raw)

    def run_to_convergence(self, tol=1e-7, max_iters=100, use_pb=False,
                           num_bins=256):
        """Full power iteration (used by the Figure 15 experiment).

        With ``use_pb=True`` every iteration's scatter runs through
        Propagation Blocking (binning the contributions anew each
        iteration, as the PB Pagerank in the paper does). Returns
        (scores, iterations).
        """
        graph = self.graph
        out_deg = np.maximum(graph.degrees(), 1)
        src_per_edge = graph.edge_sources()
        scores = np.full(self.num_indices, 1.0 / self.num_indices)
        base = (1.0 - self.damping) / self.num_indices
        blocker = (
            PropagationBlocker(self.num_indices, num_bins=num_bins)
            if use_pb
            else None
        )
        for iteration in range(1, max_iters + 1):
            contrib = scores / out_deg
            raw = np.zeros(self.num_indices)
            if blocker is not None:
                blocker.execute(
                    graph.neighbors, contrib[src_per_edge], raw, op="add"
                )
            else:
                np.add.at(raw, graph.neighbors, contrib[src_per_edge])
            new_scores = base + self.damping * raw
            delta = np.abs(new_scores - scores).sum()
            scores = new_scores
            if delta < tol:
                break
        return scores, iteration
