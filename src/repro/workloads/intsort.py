"""Integer Sort.

The performance baseline is a comparison sort (the paper uses
``__gnu_parallel::sort``, slightly faster than the NAS IS kernel); PB and
COBRA instead optimize a *counting sort*, whose histogram and placement
passes are irregular updates over the key range. Placement is
non-commutative (update order decides where equal keys land), so Integer
Sort is one of the kernels only COBRA — not PHI/COBRA-COMM — can
accelerate.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import as_index_array, check_positive
from repro.core import costs
from repro.cpu.branch import BranchSite
from repro.pb.bins import BinSpec, bin_updates
from repro.workloads._ranks import placement_slots
from repro.workloads.base import PhaseSpec, RegionSpec, Segment, Workload, site_pc

__all__ = ["IntegerSort"]


class IntegerSort(Workload):
    """Sort integer keys in ``[0, max_key)`` by counting sort under PB."""

    name = "integer-sort"
    commutative = False
    tuple_bytes = 4  # the key is the whole tuple
    element_bytes = 4  # counts array entries
    stream_bytes_per_update = 4
    baseline_instr_per_update = 12  # histogram + placement passes
    accum_instr_per_update = 12

    def __init__(self, keys, max_key):
        check_positive("max_key", max_key)
        keys = as_index_array(keys, "keys")
        if len(keys) and (keys.min() < 0 or keys.max() >= max_key):
            raise ValueError("keys must lie in [0, max_key)")
        self.keys = keys
        self.num_indices = max_key
        self.update_indices = keys
        self.update_values = None
        self.data_region = RegionSpec(
            f"{self.name}.counts", self.element_bytes, max_key
        )
        self.output_region = RegionSpec(
            f"{self.name}.sorted", 4, max(len(keys), 1)
        )
        self._slots = placement_slots(keys, max_key)

    def extra_baseline_segments(self):
        """Placement stores of the counting-sort loop."""
        return [Segment(self.output_region, self._slots, True)]

    def extra_accumulate_segments(self, order):
        """Placement replayed bin-major (stable per key, same slots)."""
        return [Segment(self.output_region, self._slots[order], True)]

    def baseline_phases(self):
        """The comparison-sort baseline (``__gnu_parallel::sort`` model).

        A mergesort: ``log2(n)`` streaming passes, heavy compare-branch
        misprediction, no irregular accesses.
        """
        n = max(self.num_updates, 2)
        levels = max(1, math.ceil(math.log2(n)))
        rng = np.random.default_rng(0xC0B7A)
        # Modern merge paths are partially predictable (run detection,
        # galloping); ~15% of compares mispredict on random keys.
        compare_sample = rng.random(min(n, 65536)) < 0.15
        return [
            PhaseSpec(
                name="main",
                instructions=n
                * levels
                * costs.SORT_INSTRS_PER_ELEMENT_PER_LEVEL,
                branches=n * levels,
                branch_sites=[
                    BranchSite(
                        "merge_compare",
                        site_pc(self.name, "merge_compare"),
                        compare_sample,
                        count=n * levels,
                    )
                ],
                segments=[],
                streaming_bytes=n * 4 * 2 * levels,
            )
        ]

    def characterization_phases(self):
        """Figure 2 characterizes the irregular counting-sort updates."""
        return Workload.baseline_phases(self)

    def run_reference(self):
        """Sorted keys (what any correct sort returns)."""
        return np.sort(self.keys, kind="stable")

    def run_counting_sort(self):
        """Direct counting sort (the irregular-update formulation)."""
        out = np.empty_like(self.keys)
        out[self._slots] = self.keys
        return out

    def run_pb_functional(self, num_bins=256):
        """Counting sort with PB-binned keys."""
        spec = BinSpec.from_num_bins(self.num_indices, num_bins)
        binned_keys, _, _ = bin_updates(self.keys, None, spec)
        counts = np.bincount(binned_keys, minlength=self.num_indices)
        starts = np.zeros(self.num_indices, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        slots = placement_slots(binned_keys, self.num_indices, starts)
        out = np.empty_like(self.keys)
        out[slots] = binned_keys
        return out
