"""SymPerm (SuiteSparse ``cs_symperm``): symmetric permutation.

Computes the upper triangle of ``P A P.T`` for a symmetric ``A``: each
upper-triangular entry (i, j, v) maps to (min(pi, pj), max(pi, pj)) and is
placed at ``out[cursor[lo]++]``. Non-commutative placement, 16 B tuples.
Only half the streamed entries produce updates (the upper-triangular
check), which bounds the locality headroom — the reason SymPerm benefits
least from COBRA (Section VII-A).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_index_array
from repro.cpu.branch import BranchSite
from repro.pb.bins import BinSpec, bin_updates
from repro.sparse.coo import COOMatrix
from repro.workloads._ranks import placement_slots
from repro.workloads.base import RegionSpec, Segment, Workload, site_pc

__all__ = ["SymPerm"]


class SymPerm(Workload):
    """Permute the upper triangle of a symmetric sparse matrix."""

    name = "symperm"
    commutative = False
    tuple_bytes = 16  # (4 B lo, 4 B hi, 8 B value)
    element_bytes = 4  # cursor-array entries
    baseline_instr_per_update = 14  # permute both coords, min/max, place
    accum_instr_per_update = 12

    def __init__(self, matrix: COOMatrix, perm):
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("SymPerm needs a square matrix")
        perm = as_index_array(perm, "perm")
        if len(perm) != matrix.shape[0]:
            raise ValueError("perm length must match the matrix dimension")
        self.matrix = matrix
        self.perm = perm
        n = matrix.shape[0]
        self.num_indices = n
        upper = matrix.cols >= matrix.rows
        self._upper_outcomes = upper
        rows, cols = matrix.rows[upper], matrix.cols[upper]
        pi, pj = perm[rows], perm[cols]
        lo = np.minimum(pi, pj)
        hi = np.maximum(pi, pj)
        self._hi = hi
        self._vals = matrix.vals[upper]
        self.update_indices = lo
        self.update_values = hi
        self.data_region = RegionSpec(
            f"{self.name}.cursors", self.element_bytes, n
        )
        self.output_region = RegionSpec(
            f"{self.name}.out", 16, max(len(lo), 1)
        )
        self._slots = placement_slots(lo, n)
        # Streams the whole symmetric matrix but updates only for the upper
        # half: double the per-update streaming volume.
        updates = max(len(lo), 1)
        self.stream_bytes_per_update = max(
            1, (matrix.nnz * 16) // updates
        )

    def extra_branch_sites(self, phase_name):
        """The upper-triangular coordinate test (paper footnote 3)."""
        if phase_name in ("main", "binning"):
            return [
                BranchSite(
                    "upper_check",
                    site_pc(self.name, "upper_check"),
                    self._upper_outcomes,
                )
            ]
        return []

    def extra_baseline_segments(self):
        """(hi, value) stores into the permuted output."""
        return [Segment(self.output_region, self._slots, True)]

    def extra_accumulate_segments(self, order):
        """Output stores replayed in bin-major order."""
        return [Segment(self.output_region, self._slots[order], True)]

    def run_reference(self):
        """Direct symmetric permutation; canonical (row, col, val) order."""
        lo, hi, vals = self.update_indices, self._hi, self._vals
        order = np.lexsort((hi, lo))
        return lo[order], hi[order], vals[order]

    def run_pb_functional(self, num_bins=256):
        """Symmetric permutation with PB-binned entries."""
        spec = BinSpec.from_num_bins(self.num_indices, num_bins)
        entry_ids = np.arange(len(self.update_indices), dtype=np.int64)
        binned_lo, binned_entry, _ = bin_updates(
            self.update_indices, entry_ids, spec
        )
        hi = self._hi[binned_entry]
        vals = self._vals[binned_entry]
        order = np.lexsort((hi, binned_lo))
        return binned_lo[order], hi[order], vals[order]
