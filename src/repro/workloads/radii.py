"""Radii estimation (Ligra-style multi-source BFS).

Estimates the graph diameter by running 64 BFS traversals at once, each
source owning one bit of a 64-bit visited mask; an edge propagates the
source's mask into ``visited[dst]`` with a bitwise OR — commutative, 16 B
tuples. Representative of graph kernels that touch only a *subset* of
vertices per iteration: we model one sampled pull iteration with a random
active frontier (the paper uses iteration sampling).
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_from_seed
from repro.cpu.branch import BranchSite
from repro.graphs.csr import CSRGraph
from repro.pb.engine import PropagationBlocker
from repro.workloads.base import RegionSpec, Workload, site_pc

__all__ = ["Radii"]


class Radii(Workload):
    """One sampled iteration of 64-way multi-source BFS (bitmask OR)."""

    name = "radii"
    commutative = True
    reduce_op = "or"
    tuple_bytes = 16  # (4 B dst, 8 B mask, padding)
    element_bytes = 8  # 64-bit visited masks
    stream_bytes_per_update = 12
    baseline_instr_per_update = 10  # load mask, OR, compare-for-change, store
    accum_instr_per_update = 10

    def __init__(self, graph: CSRGraph, frontier_fraction=0.5, seed=7):
        if not 0.0 < frontier_fraction <= 1.0:
            raise ValueError("frontier_fraction must lie in (0, 1]")
        self.graph = graph
        self.frontier_fraction = frontier_fraction
        rng = rng_from_seed(seed)
        self.num_indices = graph.num_vertices
        # Current visited masks: a random mid-traversal snapshot.
        self.visited = rng.integers(
            0, 2**63, size=self.num_indices, dtype=np.int64
        )
        active = rng.random(self.num_indices) < frontier_fraction
        self._active = active
        src_per_edge = graph.edge_sources()
        edge_active = active[src_per_edge]
        self.update_indices = graph.neighbors[edge_active]
        self.update_values = self.visited[src_per_edge[edge_active]]
        self.data_region = RegionSpec(
            f"{self.name}.visited", self.element_bytes, self.num_indices
        )
        # The frontier-membership test per vertex plus neighborhood
        # boundaries make Radii's control flow unpredictable.
        self._frontier_outcomes = active
        active_src = src_per_edge[edge_active]
        self._boundary = np.diff(active_src, append=-1) != 0

    def extra_branch_sites(self, phase_name):
        """Frontier membership + boundary checks while streaming."""
        if phase_name in ("main", "binning"):
            return [
                BranchSite(
                    "frontier_active",
                    site_pc(self.name, "frontier_active"),
                    self._frontier_outcomes,
                ),
                BranchSite(
                    "neigh_boundary",
                    site_pc(self.name, "neigh_boundary"),
                    self._boundary,
                ),
            ]
        return []

    def run_reference(self):
        """Direct OR-scatter of frontier masks."""
        out = self.visited.copy()
        np.bitwise_or.at(out, self.update_indices, self.update_values)
        return out

    def run_pb_functional(self, num_bins=256):
        """OR-scatter via PB."""
        out = self.visited.copy()
        blocker = PropagationBlocker(self.num_indices, num_bins=num_bins)
        return blocker.execute(
            self.update_indices, self.update_values, out, op="or"
        )
