"""Workload abstraction and the phase builders shared by every kernel.

A workload is characterized by its *irregular update stream* — the
(index, value) pairs it scatters into a data structure — plus per-element
instruction costs and streaming volumes. From that description the builders
here construct the :class:`PhaseSpec` lists for each execution mode:

* ``baseline``   — one main phase applying updates directly,
* ``pb``         — Init / Binning / Accumulate with software C-Buffers,
* ``cobra``      — Init / Binning (hardware C-Buffers) / Accumulate.

The harness runner turns PhaseSpecs into cycles, misses, and traffic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro._util import as_index_array, check_positive
from repro.core import costs
from repro.core.config import CobraConfig
from repro.cpu.branch import BranchSite
from repro.pb.bins import BinSpec
from repro.pb.cbuffer import CBufferModel

__all__ = [
    "PHASE_ACCUMULATE",
    "PHASE_BINNING",
    "PHASE_INIT",
    "PHASE_MAIN",
    "PhaseSpec",
    "RegionSpec",
    "Segment",
    "Workload",
    "site_pc",
]

#: Phase names used across the harness.
PHASE_MAIN = "main"
PHASE_INIT = "init"
PHASE_BINNING = "binning"
PHASE_ACCUMULATE = "accumulate"


def site_pc(workload_name, site_name):
    """Stable pseudo-PC for a branch site (keyed by workload and site).

    Uses CRC-32 rather than ``hash()``: the built-in hash is salted per
    process (``PYTHONHASHSEED``), which would make pseudo-PCs — and thus
    GShare aliasing and misprediction counts — differ across runs and
    across the sweep executor's worker processes.
    """
    return zlib.crc32(f"{workload_name}:{site_name}".encode("utf-8"))


@dataclass(frozen=True)
class RegionSpec:
    """A named array touched by irregular accesses."""

    name: str
    element_bytes: int
    num_elements: int

    def __post_init__(self):
        check_positive("element_bytes", self.element_bytes)
        check_positive("num_elements", self.num_elements)


@dataclass
class Segment:
    """One irregular access stream into a region.

    Within a phase, segments are interleaved element-wise (they correspond
    to the accesses of one loop body).
    """

    region: RegionSpec
    indices: np.ndarray
    write: bool = True

    def __post_init__(self):
        self.indices = as_index_array(self.indices, "segment indices")


@dataclass
class PhaseSpec:
    """Everything the runner needs to cost one phase."""

    name: str
    instructions: float
    branches: int = 0
    branch_sites: list = field(default_factory=list)
    segments: list = field(default_factory=list)
    streaming_bytes: int = 0
    nt_write_lines: int = 0  # software non-temporal bin writes
    hw_write_lines: int = 0  # COBRA hardware bin writes (LLC evictions)
    des_trace: np.ndarray = None  # tuple trace for eviction-stall modeling
    reserved_ways: tuple = None  # (l1, l2, llc) partition active this phase
    num_bins: int = 0  # parallel Accumulate dispatch granularity
    trace_scale: float = 1.0  # segments represent 1/trace_scale of reality
    #: LLC hits of this phase go to the *shared* NUCA LLC (remote-bank
    #: average latency) rather than the core-local bank — set by phases
    #: whose working set spans all banks, like tiling's segments.
    shared_llc: bool = False
    #: Irregular accesses removed by update coalescing (PHI/COBRA-COMM).
    #: Coalesced updates are duplicates within a short buffer window, i.e.
    #: accesses that would have hit the L1 — the runner deducts them there.
    coalesced_discount: int = 0

    @property
    def irregular_accesses(self):
        """Total irregular accesses across segments."""
        return sum(len(segment.indices) for segment in self.segments)

    def sampled_segments(self, budget):
        """Per-segment ``(region, indices, write)`` truncated to ``budget``.

        This is the sampling contract shared by the runner's full and
        chunked trace pipelines: both consume exactly these index arrays,
        which keeps their interleavings (and therefore their counters)
        bit-identical.
        """
        return [
            (segment.region, segment.indices[:budget], bool(segment.write))
            for segment in self.segments
        ]


class Workload:
    """Base class: subclasses provide the update stream and cost knobs.

    Required attributes (set in ``__init__`` of subclasses):

    ``name``, ``commutative`` (bool), ``reduce_op`` (str or None),
    ``tuple_bytes``, ``element_bytes``, ``num_indices``,
    ``update_indices`` (int64 array), ``update_values`` (array or None),
    ``stream_bytes_per_update``, ``data_region`` (RegionSpec).
    """

    baseline_instr_per_update = costs.BASELINE_UPDATE_INSTRS
    accum_instr_per_update = costs.ACCUMULATE_TUPLE_INSTRS
    reduce_op = None

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #

    def extra_baseline_segments(self):
        """Additional irregular streams of the baseline loop body."""
        return []

    def extra_accumulate_segments(self, order):
        """Additional irregular streams of Accumulate, given the replay
        permutation ``order`` (positions into the original stream)."""
        return []

    def extra_branch_sites(self, phase_name):
        """Workload-specific unpredictable branches for ``phase_name``."""
        return []

    def run_reference(self):
        """Functional result of the kernel (for correctness tests)."""
        raise NotImplementedError

    def run_pb_functional(self, num_bins=256):
        """Functional result computed via Propagation Blocking."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Common derived values
    # ------------------------------------------------------------------ #

    @property
    def num_updates(self):
        """Dynamic size of the update stream."""
        return len(self.update_indices)

    def characterization_phases(self):
        """Phases used for the Figure 2 locality characterization.

        Defaults to :meth:`baseline_phases`; workloads whose performance
        baseline is not the irregular loop (Integer Sort's comparison sort)
        override this to still expose the irregular-update variant.
        """
        return self.baseline_phases()

    # ------------------------------------------------------------------ #
    # Phase builders
    # ------------------------------------------------------------------ #

    def baseline_phases(self):
        """Direct (unblocked) execution."""
        n = self.num_updates
        segments = [
            Segment(self.data_region, self.update_indices, True)
        ] + self.extra_baseline_segments()
        return [
            PhaseSpec(
                name=PHASE_MAIN,
                instructions=n * self.baseline_instr_per_update,
                branches=n,
                branch_sites=self.extra_branch_sites(PHASE_MAIN),
                segments=segments,
                streaming_bytes=n * self.stream_bytes_per_update,
            )
        ]

    def _init_phase(self, spec: BinSpec, extra_instructions=0):
        """Per-bin size precomputation (Table I's Init)."""
        n = self.num_updates
        bin_ids = spec.bins_of(self.update_indices)
        offsets_region = RegionSpec(
            f"{self.name}.binoffsets", 8, max(spec.num_bins, 1)
        )
        index_bytes = min(self.tuple_bytes, 8) // 2 * 2
        return PhaseSpec(
            name=PHASE_INIT,
            instructions=(
                n * costs.INIT_COUNT_INSTRS + 2 * spec.num_bins + extra_instructions
            ),
            branches=n,
            segments=[Segment(offsets_region, bin_ids, True)],
            streaming_bytes=n * index_bytes,
        )

    def _accumulate_phase(self, spec: BinSpec):
        """Bin-major replay of the update stream."""
        n = self.num_updates
        bin_ids = spec.bins_of(self.update_indices)
        order = np.argsort(bin_ids, kind="stable")
        segments = [
            Segment(self.data_region, self.update_indices[order], True)
        ] + self.extra_accumulate_segments(order)
        return PhaseSpec(
            name=PHASE_ACCUMULATE,
            instructions=n * self.accum_instr_per_update,
            branches=n,
            branch_sites=self.extra_branch_sites(PHASE_ACCUMULATE),
            segments=segments,
            streaming_bytes=n * self.tuple_bytes,
            num_bins=spec.num_bins,
        )

    def pb_phases(self, spec: BinSpec, include_init=True):
        """Software PB: Init, Binning, Accumulate."""
        n = self.num_updates
        cbuffers = CBufferModel(spec, self.tuple_bytes)
        bin_ids = cbuffers.buffer_ids(self.update_indices)
        full_events = cbuffers.full_events(self.update_indices)
        full_lines, partial_lines = cbuffers.transfer_counts(self.update_indices)
        cbuf_region = RegionSpec(
            f"{self.name}.cbuffers", 64, max(spec.num_bins, 1)
        )
        binning = PhaseSpec(
            name=PHASE_BINNING,
            instructions=(
                n * costs.PB_BIN_TUPLE_INSTRS
                + (full_lines + partial_lines)
                * cbuffers.tuples_per_line
                * costs.PB_FLUSH_PER_TUPLE_INSTRS
            ),
            branches=2 * n,
            branch_sites=[
                BranchSite(
                    "cbuffer_full",
                    site_pc(self.name, "cbuffer_full"),
                    full_events,
                )
            ]
            + self.extra_branch_sites(PHASE_BINNING),
            segments=[Segment(cbuf_region, bin_ids, True)],
            streaming_bytes=n * self.stream_bytes_per_update,
            nt_write_lines=full_lines + partial_lines,
        )
        phases = [binning, self._accumulate_phase(spec)]
        if include_init:
            phases.insert(0, self._init_phase(spec))
        return phases

    def cobra_phases(self, cobra: CobraConfig, include_init=True):
        """COBRA: Init, hardware Binning, Accumulate at LLC bin count."""
        if cobra.num_indices != self.num_indices:
            raise ValueError("CobraConfig namespace must match the workload")
        if cobra.tuple_bytes != self.tuple_bytes:
            raise ValueError("CobraConfig tuple size must match the workload")
        n = self.num_updates
        spec = cobra.memory_bin_spec
        per_line = cobra.tuples_per_line
        per_bin = np.bincount(
            spec.bins_of(self.update_indices), minlength=spec.num_bins
        )
        hw_lines = int(np.sum(-(-per_bin // per_line)))  # ceil per bin
        setup = (
            costs.COBRA_SETUP_BASE_INSTRS
            + cobra.llc.num_buffers * costs.COBRA_SETUP_PER_BUFFER_INSTRS
        )
        flush_walk = (
            cobra.l1.num_buffers + cobra.l2.num_buffers + cobra.llc.num_buffers
        ) * costs.COBRA_FLUSH_PER_BUFFER_INSTRS
        binning = PhaseSpec(
            name=PHASE_BINNING,
            instructions=n * costs.COBRA_BIN_TUPLE_INSTRS + setup + flush_walk,
            branches=n,
            branch_sites=self.extra_branch_sites(PHASE_BINNING),
            segments=[],  # C-Buffers are pinned: no cache-visible irregularity
            streaming_bytes=n * self.stream_bytes_per_update,
            hw_write_lines=hw_lines,
            des_trace=self.update_indices,
            reserved_ways=(
                cobra.l1_reserved_ways,
                cobra.l2_reserved_ways,
                cobra.llc_reserved_ways,
            ),
        )
        phases = [binning, self._accumulate_phase(spec)]
        if include_init:
            phases.insert(0, self._init_phase(spec))
        return phases

    def __repr__(self):
        return (
            f"{type(self).__name__}(updates={self.num_updates}, "
            f"indices={self.num_indices}, commutative={self.commutative})"
        )
