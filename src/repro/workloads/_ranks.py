"""Vectorized group-rank helpers shared by the placement-style kernels.

Neighbor-Populate, Integer Sort, Transpose, and SymPerm all place elements
at ``cursor[key]++`` slots. Under any *stable* grouping (which both the
sequential loop and PB's FIFO bins preserve per key), element ``e``'s slot
is ``group_start[key[e]] + rank_of_e_within_its_key_group``; these helpers
compute that without a Python loop.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_index_array

__all__ = ["group_ranks", "placement_slots"]


def group_ranks(keys, num_groups):
    """Appearance-order rank of each element within its key group."""
    keys = as_index_array(keys, "keys")
    counts = np.bincount(keys, minlength=num_groups)
    starts = np.zeros(num_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    order = np.argsort(keys, kind="stable")
    ranks_sorted = np.arange(len(keys), dtype=np.int64) - starts[keys[order]]
    ranks = np.empty(len(keys), dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def placement_slots(keys, num_groups, group_starts=None):
    """Final slot of each element under stable grouping by ``keys``.

    ``group_starts`` defaults to the exclusive prefix sum of group counts
    (contiguous packing).
    """
    keys = as_index_array(keys, "keys")
    if group_starts is None:
        counts = np.bincount(keys, minlength=num_groups)
        group_starts = np.zeros(num_groups, dtype=np.int64)
        np.cumsum(counts[:-1], out=group_starts[1:])
    return group_starts[keys] + group_ranks(keys, num_groups)
