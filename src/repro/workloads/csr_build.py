"""CSR construction: graph building *as* one fused irregular-update kernel.

Degree-Counting and Neighbor-Populate study the two conversion passes in
isolation; real graph frameworks fuse them — one walk of the edge list
bumps ``degrees[src]``, advances ``cursor[src]``, and stores the
destination at the claimed neighbor slot. Per edge that is three
dependent irregular accesses keyed by the same source vertex, the
heaviest per-update footprint in the suite. The cursor updates are not
commutative (their order decides where each destination lands), yet any
order yields a semantically equal CSR — the Section III-B criterion — so
CSR construction is a COBRA-only kernel like Neighbor-Populate, with a
larger locality upside.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import build_csr, count_degrees, prefix_sum
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.pb.bins import BinSpec, bin_updates
from repro.workloads._ranks import placement_slots
from repro.workloads.base import RegionSpec, Segment, Workload

__all__ = ["CSRBuild"]


class CSRBuild(Workload):
    """Build a CSR graph from an edge list in one fused irregular pass."""

    name = "csr-build"
    commutative = False
    tuple_bytes = 8  # (4 B src, 4 B dst)
    element_bytes = 4  # cursor-array entries
    stream_bytes_per_update = 8
    baseline_instr_per_update = 14  # count + cursor bump + neighbor store
    accum_instr_per_update = 14

    def __init__(self, edges: EdgeList):
        self.edges = edges
        self.num_indices = edges.num_vertices
        self.update_indices = edges.src
        self.update_values = edges.dst
        self.offsets = prefix_sum(count_degrees(edges))
        self.data_region = RegionSpec(
            f"{self.name}.cursors", self.element_bytes, self.num_indices
        )
        self.degrees_region = RegionSpec(
            f"{self.name}.degrees", 4, self.num_indices
        )
        self.neighbors_region = RegionSpec(
            f"{self.name}.neighbors", 4, max(edges.num_edges, 1)
        )
        # Slot of each edge's destination under the original stream order
        # (stable grouping: same-src edges keep their relative order).
        self._slots = placement_slots(
            edges.src, edges.num_vertices, self.offsets[:-1]
        )

    def extra_baseline_segments(self):
        """The degrees bump and the neighbor store of the fused loop."""
        return [
            Segment(self.degrees_region, self.edges.src, True),
            Segment(self.neighbors_region, self._slots, True),
        ]

    def extra_accumulate_segments(self, order):
        """The same two streams replayed bin-major; stable binning keeps
        same-src edges in stream order, so the slots are unchanged."""
        return [
            Segment(self.degrees_region, self.edges.src[order], True),
            Segment(self.neighbors_region, self._slots[order], True),
        ]

    def run_reference(self):
        """The trusted substrate conversion (stable-sort equivalent)."""
        return build_csr(self.edges)

    def run_pb_functional(self, num_bins=256):
        """Fused conversion with PB-binned edges (Algorithm 2 shape)."""
        spec = BinSpec.from_num_bins(self.num_indices, num_bins)
        binned_src, binned_dst, _ = bin_updates(
            self.edges.src, self.edges.dst, spec
        )
        cur = self.offsets[:-1].copy().tolist()
        neighbors = np.empty(self.edges.num_edges, dtype=np.int64)
        for src, dst in zip(binned_src.tolist(), binned_dst.tolist()):
            slot = cur[src]
            neighbors[slot] = dst
            cur[src] = slot + 1
        return CSRGraph(self.offsets, neighbors)
