"""SpMV (HPCG-style), in its transpose/scatter formulation.

PB requires streaming reads plus irregular updates, so — as the paper does
— the kernel processes the transpose representation: streaming the rows of
``A`` while scattering ``y[col] += val * x[row]``. Commutative float adds
with 16 B tuples.
"""

from __future__ import annotations

import numpy as np

from repro.pb.engine import PropagationBlocker
from repro.sparse.csr_matrix import CSRMatrix
from repro.workloads.base import RegionSpec, Workload

__all__ = ["SpMV"]


class SpMV(Workload):
    """Transpose sparse matrix-vector product ``y = A.T @ x``."""

    name = "spmv"
    commutative = True
    reduce_op = "add"
    tuple_bytes = 16  # (4 B col, 8 B product, padding)
    element_bytes = 8  # double-precision accumulators
    stream_bytes_per_update = 20  # column index + value + amortized x[row]
    baseline_instr_per_update = 9  # includes the multiply
    accum_instr_per_update = 9

    def __init__(self, matrix: CSRMatrix, x=None, seed=11):
        self.matrix = matrix
        if x is None:
            rng = np.random.default_rng(seed)
            x = rng.standard_normal(matrix.num_rows)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (matrix.num_rows,):
            raise ValueError("x must have one entry per matrix row")
        self.x = x
        self.num_indices = matrix.num_cols
        row_ids = np.repeat(
            np.arange(matrix.num_rows, dtype=np.int64), np.diff(matrix.indptr)
        )
        self.update_indices = matrix.indices
        self.update_values = matrix.data * x[row_ids]
        self.data_region = RegionSpec(
            f"{self.name}.y", self.element_bytes, self.num_indices
        )

    def run_reference(self):
        """Direct scatter (equals ``matrix.rmatvec(x)``)."""
        return self.matrix.rmatvec(self.x)

    def run_pb_functional(self, num_bins=256):
        """Scatter via PB."""
        y = np.zeros(self.num_indices)
        blocker = PropagationBlocker(self.num_indices, num_bins=num_bins)
        return blocker.execute(self.update_indices, self.update_values, y, "add")
