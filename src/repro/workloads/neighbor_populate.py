"""Neighbor-Populate: the paper's flagship non-commutative kernel.

Algorithm 1: walk the edge list placing each destination at
``neighs[offsets[src]++]``. The offsets updates are *not* commutative —
their order decides where each destination lands — yet any order yields a
semantically equal CSR (per-vertex neighbor sets are identical), which is
exactly the unordered parallelism PB needs (Section III-B).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import count_degrees, prefix_sum
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.pb.bins import BinSpec, bin_updates
from repro.workloads._ranks import placement_slots
from repro.workloads.base import RegionSpec, Segment, Workload

__all__ = ["NeighborPopulate"]


class NeighborPopulate(Workload):
    """Populate the neighbors array from an edge list (Algorithm 1/2)."""

    name = "neighbor-populate"
    commutative = False
    tuple_bytes = 8  # (4 B src, 4 B dst)
    element_bytes = 4  # offsets-array entries
    stream_bytes_per_update = 8
    baseline_instr_per_update = 10  # two dependent irregular stores per edge
    accum_instr_per_update = 10

    def __init__(self, edges: EdgeList):
        self.edges = edges
        self.num_indices = edges.num_vertices
        self.update_indices = edges.src
        self.update_values = edges.dst
        self.offsets = prefix_sum(count_degrees(edges))
        self.data_region = RegionSpec(
            f"{self.name}.offsets", self.element_bytes, self.num_indices
        )
        self.neighbors_region = RegionSpec(
            f"{self.name}.neighbors", 4, max(edges.num_edges, 1)
        )
        # Slot of each edge's destination in the neighbors array under the
        # original stream order.
        self._slots = placement_slots(
            edges.src, edges.num_vertices, self.offsets[:-1]
        )

    def extra_baseline_segments(self):
        """The neighs[offsets[src]] store of the baseline loop."""
        return [Segment(self.neighbors_region, self._slots, True)]

    def extra_accumulate_segments(self, order):
        """Neighbor stores replayed in bin-major order.

        Stable binning keeps same-src edges in stream order, so the slot
        assignment is unchanged — only the visit order permutes.
        """
        return [Segment(self.neighbors_region, self._slots[order], True)]

    def run_reference(self):
        """Direct Algorithm 1 (via the substrate's stable-sort equivalent)."""
        neighbors = np.empty(self.edges.num_edges, dtype=np.int64)
        neighbors[self._slots] = self.edges.dst
        return CSRGraph(self.offsets, neighbors)

    def run_pb_functional(self, num_bins=256):
        """Algorithm 2: bin edges by src, then populate bin-by-bin."""
        spec = BinSpec.from_num_bins(self.num_indices, num_bins)
        binned_src, binned_dst, _ = bin_updates(
            self.edges.src, self.edges.dst, spec
        )
        cursor = self.offsets[:-1].copy()
        neighbors = np.empty(self.edges.num_edges, dtype=np.int64)
        cur = cursor.tolist()
        for src, dst in zip(binned_src.tolist(), binned_dst.tolist()):
            slot = cur[src]
            neighbors[slot] = dst
            cur[src] = slot + 1
        return CSRGraph(self.offsets, neighbors)
