"""The paper's nine irregular-update kernels (plus extensions) and the
workload abstraction, all resolvable through the declarative registry
(:mod:`repro.workloads.registry`)."""

# Kernel submodules import each other directly (never through this
# package), so the registry import below is cycle-safe.
from repro.workloads import registry
from repro.workloads.base import (
    PHASE_ACCUMULATE,
    PHASE_BINNING,
    PHASE_INIT,
    PHASE_MAIN,
    PhaseSpec,
    RegionSpec,
    Segment,
    Workload,
)
from repro.workloads.csr_build import CSRBuild
from repro.workloads.degree_count import DegreeCount
from repro.workloads.histogram import Histogram
from repro.workloads.intsort import IntegerSort
from repro.workloads.neighbor_populate import NeighborPopulate
from repro.workloads.pagerank import Pagerank
from repro.workloads.pinv import PInv
from repro.workloads.radii import Radii
from repro.workloads.spmv import SpMV
from repro.workloads.symperm import SymPerm
from repro.workloads.transpose import Transpose
from repro.workloads.validate import results_equal, verify_workload

__all__ = [
    "CSRBuild",
    "DegreeCount",
    "Histogram",
    "IntegerSort",
    "NeighborPopulate",
    "PHASE_ACCUMULATE",
    "PHASE_BINNING",
    "PHASE_INIT",
    "PHASE_MAIN",
    "Pagerank",
    "PhaseSpec",
    "PInv",
    "Radii",
    "RegionSpec",
    "Segment",
    "SpMV",
    "SymPerm",
    "Transpose",
    "Workload",
    "registry",
    "results_equal",
    "verify_workload",
]
