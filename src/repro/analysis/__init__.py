"""``repro.analysis`` — determinism & digest-purity static analysis.

The ``repro lint`` subcommand (and CI gate) runs ten repo-specific
checkers over the checkout, in two layers. The file-local AST rules
look at one module at a time: unseeded randomness, result-digest
purity, the ``REPRO_*`` knob registry, vector/scalar backend pairing,
nondeterminism hazards, process-pool worker safety, and the workload
registry. The interprocedural rules share a whole-project call graph
(:mod:`repro.analysis.callgraph`) and taint engine
(:mod:`repro.analysis.dataflow`): concurrency-safety (execution-context
reachability), digest-flow (env values reaching digests through helper
chains), and telemetry-schema (emitted events vs the EXPERIMENTS.md
table). See :mod:`repro.analysis.rules` for the rule set and
:mod:`repro.analysis.core` for suppression (``# repro: noqa[rule]``)
and baseline semantics.

Programmatic entry point::

    from repro.analysis import run_lint
    report = run_lint()            # lints the enclosing checkout
    assert not report.new_findings
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.analysis.core import (
    BASELINE_NAME,
    Finding,
    LintContext,
    SourceError,
    baseline_identities,
    filter_suppressed,
    find_root,
    load_baseline,
    sort_findings,
    write_baseline,
)
from repro.analysis.rules import RULE_IDS, RULES, Rule

__all__ = [
    "BASELINE_NAME",
    "Finding",
    "LintContext",
    "LintReport",
    "RULES",
    "RULE_IDS",
    "Rule",
    "SourceError",
    "find_root",
    "run_lint",
    "write_baseline",
]


@dataclass
class LintReport:
    """Outcome of one lint pass over a checkout."""

    root: Path
    #: Active findings (suppressions already applied), sorted.
    findings: List[Finding]
    #: Findings silenced by ``# repro: noqa`` markers, sorted.
    suppressed: List[Finding]
    #: Committed-baseline entries loaded from ``lint_baseline.json``.
    baseline: List[dict] = field(default_factory=list)

    @property
    def new_findings(self) -> List[Finding]:
        """Findings not excused by the committed baseline."""
        known = baseline_identities(self.baseline)
        return [f for f in self.findings if f.identity not in known]

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def as_dict(self) -> dict:
        """Machine-readable report (the ``repro lint --json`` payload)."""
        return {
            "root": str(self.root),
            "rules": list(RULE_IDS),
            "findings": [f.as_dict() for f in self.findings],
            "new_findings": [f.as_dict() for f in self.new_findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.findings) - len(self.new_findings),
            "ok": self.ok,
        }


def run_lint(root: Optional[Union[str, Path]] = None) -> LintReport:
    """Run every registered rule over the checkout at ``root``.

    ``root`` defaults to the checkout enclosing the current directory (or,
    failing that, the installed package). Suppressions are applied;
    baseline comparison is exposed via :attr:`LintReport.new_findings`.
    """
    resolved = find_root(Path(root) if root is not None else None)
    ctx = LintContext(resolved)
    raw: List[Finding] = []
    for rule in RULES:
        raw.extend(rule.check(ctx))
    active, suppressed = filter_suppressed(ctx, raw)
    return LintReport(
        root=resolved,
        findings=sort_findings(active),
        suppressed=sort_findings(suppressed),
        baseline=load_baseline(resolved),
    )
