"""SARIF 2.1.0 export of a lint report (``repro lint --sarif PATH``).

One run, one tool driver (``repro-lint``), one result per finding. The
mapping keeps CI code-scanning annotations faithful to the gate's
semantics:

* findings beyond the committed baseline are ``level: error`` with
  ``baselineState: new`` — these are what fail the build;
* baselined findings are ``level: warning`` / ``baselineState:
  unchanged`` — visible debt, not gating;
* noqa-suppressed findings are emitted with an ``inSource`` suppression
  object so scanners display them as dismissed rather than dropping
  them silently.

Paths are repo-relative ``artifactLocation.uri`` values against a
``ROOT`` uriBase, so the log is machine-portable across checkouts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis import Finding, LintReport

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "sarif_log", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool identity in the SARIF ``tool.driver`` block.
TOOL_NAME = "repro-lint"


def _result(
    finding: "Finding",
    rule_index: dict,
    level: str,
    baseline_state: Optional[str] = None,
    suppressed: bool = False,
) -> dict:
    result = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "ROOT",
                    },
                    "region": {"startLine": max(1, finding.line)},
                }
            }
        ],
    }
    if finding.hint:
        result["message"]["markdown"] = (
            f"{finding.message}\n\n**hint:** {finding.hint}"
        )
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    if suppressed:
        result["suppressions"] = [
            {"kind": "inSource", "justification": "# repro: noqa marker"}
        ]
    return result


def sarif_log(report: "LintReport") -> dict:
    """The SARIF 2.1.0 log object for one lint report."""
    rule_index = {rule.id: index for index, rule in enumerate(RULES)}
    new_identities = {f.identity for f in report.new_findings}
    results: List[dict] = []
    for finding in report.findings:
        if finding.identity in new_identities:
            results.append(_result(finding, rule_index, "error", "new"))
        else:
            results.append(
                _result(finding, rule_index, "warning", "unchanged")
            )
    for finding in report.suppressed:
        results.append(
            _result(finding, rule_index, "note", suppressed=True)
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": [
                            {
                                "id": rule.id,
                                "shortDescription": {"text": rule.summary},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule in RULES
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "ROOT": {"uri": Path(report.root).as_uri() + "/"}
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def write_sarif(report: "LintReport", path: Path) -> Path:
    """Serialize ``report`` as a SARIF 2.1.0 log at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(sarif_log(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
