"""Digest-purity allowlist: state that may legitimately stay out of
result-cache digests.

Every :class:`~repro.harness.runner.Runner` constructor parameter and
every ``REPRO_*`` environment knob must either be serialized into
:func:`~repro.harness.resultcache.run_digest` (so changing it changes the
cache key) or be registered here with a justification explaining why two
runs differing only in that state still produce bit-identical counters.
The ``digest-purity`` lint rule enforces the dichotomy, flags entries with
empty justifications, and flags stale entries naming parameters or knobs
that no longer exist.

This module must stay a **pure literal**: the analyzer parses it with
:mod:`ast` (it never imports the tree it lints), so computed keys or
imported values would be invisible to the rule. A unit test cross-checks
the knob entries against :mod:`repro.harness.knobs` at import time
instead.
"""

from __future__ import annotations

__all__ = ["DIGEST_EXEMPT"]

#: ``"Runner.<param>"`` / ``"<REPRO_* name>"`` -> justification.
DIGEST_EXEMPT = {
    "Runner.engine": (
        "engine selection is counter-equivalent: the batched and scalar "
        "trace engines are equivalence-tested to identical counters "
        "(tests/cache/test_batchsim.py), so either may serve a digest"
    ),
    "Runner.result_cache": (
        "storage plumbing: decides where results persist, never what "
        "counters a simulation produces"
    ),
    "Runner.telemetry": (
        "observability sink: events describe the run; counters are "
        "computed identically with or without a sink attached"
    ),
    "Runner.fault_policy": (
        "execution strategy: crashed/hung attempts are retried to "
        "bit-identical counters (tests/harness/test_faults.py)"
    ),
    "Runner.trace_store": (
        "storage plumbing: stored traces are content-addressed "
        "materializations served back bit-identical via memory maps "
        "(tests/harness/test_tracestore.py); counters never change"
    ),
    "Runner.trace_chunk": (
        "bit-identical by test across every chunk size, including the "
        "unchunked reference path (tests/harness/test_chunked_pipeline.py)"
    ),
    "REPRO_TRACE_CHUNK": (
        "all chunk sizes produce bit-identical counters "
        "(tests/harness/test_chunked_pipeline.py); one cache entry serves "
        "every setting"
    ),
    "REPRO_BRANCH_BACKEND": (
        "vector and scalar predictor kernels are equivalence-tested to "
        "identical mispredict totals (tests/cpu/test_branch_vectorized.py)"
    ),
    "REPRO_KERNEL_BACKEND": (
        "kernel tiers (numpy dict kernels vs numba flat kernels) are "
        "equivalence-tested to bit-identical counters "
        "(tests/cache/test_kernel_backends.py, tests/des/test_fastloop.py); "
        "one cache entry serves every tier"
    ),
    "REPRO_TRACE_STORE": (
        "store entries are content-addressed materializations of phase "
        "traces, bit-identical to recomputation "
        "(tests/harness/test_tracestore.py); the store only skips "
        "redundant assembly work"
    ),
    "REPRO_RESULT_CACHE": (
        "chooses where results are stored, never what they contain; "
        "entries are addressed by content digest regardless of location"
    ),
    "REPRO_CHECKPOINT_DIR": (
        "chooses where run journals live; journaled counters are verified "
        "against per-point digests on resume"
    ),
    "REPRO_FAULT_INJECT": (
        "injected faults abort attempts before counters exist; retried "
        "points produce identical counters (tests/harness/test_faults.py)"
    ),
    "REPRO_GOLDEN_DIR": (
        "chooses where golden-run entries live; entries are "
        "content-addressed by machine digest + point + mode and replay "
        "verifies them against per-point digests regardless of location"
    ),
    "REPRO_REPLAY_TIME_BAND": (
        "tolerance band for the wall-clock columns of replay reports "
        "only; simulated counters are compared bit-exact and never "
        "scaled or filtered by it (tests/golden/test_replay.py)"
    ),
    "REPRO_SERVICE_PORT": (
        "transport plumbing: selects where the sweep-service daemon "
        "listens; jobs execute through the same Runner and produce the "
        "same counters regardless of port"
    ),
    "REPRO_SERVICE_QUEUE_MAX": (
        "admission control only decides when a job runs, never what its "
        "points simulate; shed submissions retry onto the same "
        "content-addressed job id (tests/service/test_jobqueue.py)"
    ),
    "REPRO_SERVICE_DRAIN_DEADLINE": (
        "shutdown timing only; drained or interrupted jobs resume from "
        "their sweep checkpoints bit-identically "
        "(tests/service/test_jobqueue.py)"
    ),
    "REPRO_DATASET_DIR": (
        "chooses where downloaded dataset files live; every file is "
        "verified against its pinned sha256 before parsing "
        "(tests/graphs/test_ingest.py), so location never changes the "
        "ingested edges"
    ),
    "REPRO_REPLAY_PERTURB": (
        "fault-injection drill that perturbs only the in-memory copy "
        "`repro replay` diffs; simulation, result caches, and golden "
        "entries never see the perturbed counters "
        "(tests/golden/test_replay.py)"
    ),
}
