"""Implementation of the ``repro lint`` CLI subcommand.

Kept out of :mod:`repro.cli` so the top-level parser module stays thin;
:func:`main` receives the parsed ``argparse`` namespace and a print
function (the CLI test seam used across the repo).

Exit codes: 0 — no findings beyond the committed baseline (or baseline
successfully written); 1 — new findings; 2 — the tree could not be
analyzed (no checkout, syntax error, corrupt baseline).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Callable

from repro.analysis import (
    BASELINE_NAME,
    RULES,
    SourceError,
    baseline_identities,
    run_lint,
    write_baseline,
)

__all__ = ["main"]


def main(
    args: argparse.Namespace, print_fn: Callable[..., Any] = print
) -> int:
    """Run the lint pass per the parsed CLI ``args``; returns exit code."""
    try:
        report = run_lint(args.root)
    except (SourceError, ValueError) as exc:
        print_fn(f"repro lint: {exc}")
        return 2

    if getattr(args, "sarif", None):
        from repro.analysis.sarif import write_sarif

        path = write_sarif(report, Path(args.sarif))
        print_fn(f"wrote SARIF log to {path}")

    if args.baseline == "write":
        # The baseline is rewritten wholesale from the current findings,
        # so entries whose (rule, path, message) no longer fires — stale
        # debt — are pruned by construction; report the ratchet delta.
        old = baseline_identities(report.baseline)
        new = {finding.identity for finding in report.findings}
        path = write_baseline(report.root, report.findings)
        print_fn(
            f"wrote {len(report.findings)} finding(s) to {path} "
            f"({len(report.suppressed)} suppressed)"
        )
        print_fn(
            f"ratchet delta: +{len(new - old)} added, "
            f"-{len(old - new)} pruned, {len(new & old)} kept"
        )
        return 0

    if args.json:
        print_fn(json.dumps(report.as_dict(), indent=2))
        return 0 if report.ok else 1

    new = report.new_findings
    baselined = len(report.findings) - len(new)
    for finding in new:
        print_fn(finding.format())
    if args.verbose:
        known = {f.identity for f in new}
        for finding in report.findings:
            if finding.identity not in known:
                print_fn(f"(baselined) {finding.format()}")
        for finding in report.suppressed:
            print_fn(f"(suppressed) {finding.format()}")
    summary = (
        f"repro lint: {len(new)} new finding(s), {baselined} baselined, "
        f"{len(report.suppressed)} suppressed "
        f"({len(RULES)} rules over {report.root})"
    )
    print_fn(summary)
    if new:
        print_fn(
            f"fix the findings, suppress with '# repro: noqa[rule]', or "
            f"re-baseline with 'repro lint --baseline write' "
            f"(updates {BASELINE_NAME})"
        )
        return 1
    return 0
