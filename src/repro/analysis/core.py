"""Core machinery of the ``repro lint`` static-analysis pass.

The analyzer is *purely static*: it parses the target tree's sources with
:mod:`ast` and never imports them, so it can lint any checkout (including
the test fixtures' synthetic mini-trees) without executing repo code.

A :class:`LintContext` holds the parsed tree — every ``src/repro`` module,
the test-suite sources as text (rules cross-reference equivalence tests),
and EXPERIMENTS.md (the knob-registry rule cross-checks documentation).
Rules are callables ``rule(ctx) -> iterable[Finding]`` registered in
:data:`repro.analysis.rules.RULES`.

Suppression
-----------
A finding is suppressed by a trailing marker on the flagged line::

    ts = time.time()  # repro: noqa[nondet] journal metadata, never digested

or by a comment-only marker line, which suppresses the next code line
(room for a longer justification)::

    # repro: noqa[nondet] journal timestamp is observability metadata;
    # resume splices only "counters", verified by digest
    ts = time.time()

``# repro: noqa`` (no rule list) suppresses every rule on that line. The
justification text after the bracket is free-form but encouraged; the
allowlists (:mod:`repro.analysis.digest_exempt`) require one.

Baseline
--------
``repro lint`` compares findings against a committed baseline file
(``lint_baseline.json`` at the repo root) and fails only on *new*
findings, so the gate can be adopted on an imperfect tree and ratcheted.
Baseline identity is ``(rule, path, message)`` — deliberately
line-number-free so unrelated edits do not churn the file.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.callgraph import CallGraph

__all__ = [
    "BASELINE_NAME",
    "Finding",
    "LintContext",
    "SourceFile",
    "SourceError",
    "ast_cache_stats",
    "baseline_identities",
    "find_root",
    "load_baseline",
    "write_baseline",
]

#: Committed baseline file, at the linted tree's root.
BASELINE_NAME = "lint_baseline.json"

#: Baseline schema version.
BASELINE_VERSION = 1

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)


class SourceError(RuntimeError):
    """A target-tree source file failed to parse."""


# ------------------------------------------------------------------ #
# Parsed-AST cache
# ------------------------------------------------------------------ #
#
# Keyed by the sha256 of the source text, so every LintContext built in
# one process (the CLI builds one per run; the test suite builds dozens
# over the same checkout) parses each distinct file exactly once. Rules
# only ever *read* trees, so sharing the parsed modules is safe.

_AST_CACHE: Dict[str, ast.Module] = {}
_AST_CACHE_MAX = 1024
_AST_CACHE_STATS = {"hits": 0, "misses": 0}


def ast_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide parsed-AST cache."""
    return dict(_AST_CACHE_STATS)


def _parse_cached(text: str, filename: str) -> ast.Module:
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    tree = _AST_CACHE.get(digest)
    if tree is not None:
        _AST_CACHE_STATS["hits"] += 1
        return tree
    _AST_CACHE_STATS["misses"] += 1
    tree = ast.parse(text, filename=filename)
    if len(_AST_CACHE) >= _AST_CACHE_MAX:
        _AST_CACHE.clear()
    _AST_CACHE[digest] = tree
    return tree


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # posix path relative to the linted root
    line: int
    message: str
    hint: str = ""

    @property
    def identity(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across line drift."""
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def format(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class SourceFile:
    """One parsed Python source of the linted tree."""

    path: Path
    rel: str  # posix, relative to the linted root
    text: str
    tree: ast.Module
    #: line number -> None (bare noqa: all rules) or a set of rule ids.
    noqa: Dict[int, Optional[frozenset]] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def suppresses(self, line: int, rule: str) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return rules is None or rule in rules

    #: Module-level ``NAME = "literal"`` string constants (used to resolve
    #: indirected knob names like ``_BACKEND_ENV = "REPRO_..."``).
    def string_constants(self) -> Dict[str, str]:
        consts: Dict[str, str] = {}
        for node in self.tree.body:
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = node.value.value
        return consts


def _merge_rules(
    table: Dict[int, Optional[frozenset]],
    lineno: int,
    rules: Optional[frozenset],
) -> None:
    if rules is None or table.get(lineno, frozenset()) is None:
        table[lineno] = None
    else:
        table[lineno] = table.get(lineno, frozenset()) | rules


def _parse_noqa(text: str) -> Dict[int, Optional[frozenset]]:
    table: Dict[int, Optional[frozenset]] = {}
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if "repro" not in line or "noqa" not in line:
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules_text = match.group("rules")
        if rules_text is None:
            rules: Optional[frozenset] = None
        else:
            names = frozenset(
                name.strip() for name in rules_text.split(",") if name.strip()
            )
            # ``# repro: noqa[]`` suppresses nothing (likely a typo); keep
            # it out of the table so the finding still fires.
            if not names:
                continue
            rules = names
        _merge_rules(table, lineno, rules)
        # A comment-only marker also covers the next code line, so long
        # justifications can live above the flagged statement.
        if line.strip().startswith("#"):
            for offset, following in enumerate(lines[lineno:], start=1):
                stripped = following.strip()
                if stripped and not stripped.startswith("#"):
                    _merge_rules(table, lineno + offset, rules)
                    break
    return table


class LintContext:
    """Parsed view of one checkout, shared by every rule."""

    def __init__(self, root: Path):
        self.root = Path(root).resolve()
        self.package_dir = self.root / "src" / "repro"
        self.files: Dict[str, SourceFile] = {}
        self.test_texts: Dict[str, str] = {}
        self.experiments_text = ""
        self._callgraph: Optional["CallGraph"] = None
        self._load()

    def _load(self) -> None:
        if not self.package_dir.is_dir():
            raise SourceError(
                f"{self.root} has no src/repro package to lint "
                "(pass --root at a checkout root)"
            )
        for path in sorted(self.package_dir.rglob("*.py")):
            rel = path.relative_to(self.root).as_posix()
            text = path.read_text(encoding="utf-8")
            try:
                tree = _parse_cached(text, filename=str(path))
            except SyntaxError as exc:
                raise SourceError(f"{rel}: {exc}") from exc
            self.files[rel] = SourceFile(
                path=path,
                rel=rel,
                text=text,
                tree=tree,
                noqa=_parse_noqa(text),
            )
        tests_dir = self.root / "tests"
        if tests_dir.is_dir():
            for path in sorted(tests_dir.rglob("*.py")):
                rel = path.relative_to(self.root).as_posix()
                self.test_texts[rel] = path.read_text(encoding="utf-8")
        experiments = self.root / "EXPERIMENTS.md"
        if experiments.is_file():
            self.experiments_text = experiments.read_text(encoding="utf-8")

    # -------------------------------------------------------------- #
    # Lookup helpers for rules
    # -------------------------------------------------------------- #

    def module(self, rel: str) -> Optional[SourceFile]:
        """The source at ``src/repro/<rel>``, or None if absent."""
        return self.files.get(f"src/repro/{rel}")

    def package_files(
        self, subpackages: Optional[Sequence[str]] = None
    ) -> List[SourceFile]:
        """Package sources, optionally restricted to named subpackages."""
        if subpackages is None:
            return list(self.files.values())
        prefixes = tuple(f"src/repro/{name}/" for name in subpackages)
        return [
            source
            for rel, source in self.files.items()
            if rel.startswith(prefixes)
        ]

    def tests_mentioning(self, *needles: str) -> List[str]:
        """Test files whose text contains every needle."""
        return [
            rel
            for rel, text in self.test_texts.items()
            if all(needle in text for needle in needles)
        ]

    def callgraph(self) -> "CallGraph":
        """The project call graph, built lazily and shared by the
        interprocedural rules (one build serves all of them)."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph.build(self)
        return self._callgraph


def filter_suppressed(
    ctx: LintContext, findings: Iterable[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (active, suppressed) using per-line noqa."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        source = ctx.files.get(finding.path)
        if source is not None and source.suppresses(finding.line, finding.rule):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


# ------------------------------------------------------------------ #
# Root discovery + baseline IO
# ------------------------------------------------------------------ #


def find_root(start: Optional[Path] = None) -> Path:
    """Locate the checkout root: the nearest ancestor of ``start`` (or the
    package source) holding ``src/repro``."""
    candidates = []
    if start is not None:
        candidates.append(Path(start).resolve())
    else:
        candidates.append(Path.cwd().resolve())
        # Fall back to the installed package's checkout, if it is one.
        candidates.append(Path(__file__).resolve())
    for candidate in candidates:
        node = candidate
        while True:
            if (node / "src" / "repro").is_dir():
                return node
            if node.parent == node:
                break
            node = node.parent
    raise SourceError(
        "cannot locate a repro checkout (no src/repro in any parent "
        "directory); pass --root explicitly"
    )


def baseline_path(root: Path) -> Path:
    return Path(root) / BASELINE_NAME


def load_baseline(root: Path) -> List[dict]:
    """The committed baseline entries (empty when the file is absent)."""
    path = baseline_path(root)
    if not path.is_file():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported lint baseline version {payload.get('version')!r}"
        )
    findings = payload.get("findings")
    if not isinstance(findings, list):
        raise ValueError("lint baseline must hold a 'findings' list")
    return findings


def baseline_identities(entries: Iterable[dict]) -> set:
    return {
        (entry["rule"], entry["path"], entry["message"]) for entry in entries
    }


def write_baseline(root: Path, findings: Sequence[Finding]) -> Path:
    """(Re)write the committed baseline from the current findings."""
    path = baseline_path(root)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in sort_findings(findings)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
