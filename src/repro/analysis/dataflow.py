"""Forward data-flow / taint framework over the project call graph.

A :class:`TaintSpec` names *sources* (expressions that introduce taint —
for the digest-flow rule, environment reads) and *sinks* (calls whose
arguments must stay untainted — ``run_digest``/``content_id``). The
analysis is interprocedural and summary-based:

* every expression evaluates to a set of **origins**: a source token
  like ``"<env:REPRO_SALT>"`` when a source value flows in, or a bare
  parameter name when the value derives from one of the enclosing
  function's parameters;
* per-function summaries record which source tokens reach the return
  value, which parameters pass through to the return value, and which
  parameters reach a sink inside the function (transitively);
* a fixpoint iterates until summaries and class-attribute taint sets
  stop changing, then a final pass reports :class:`TaintHit`s — direct
  tainted-argument-at-sink sites plus call sites that feed a tainted
  value into a callee's sink-reaching parameter.

Like the rest of :mod:`repro.analysis` this never imports the linted
tree. Precision limits, by design: unresolvable calls conservatively
propagate their arguments' taint to their result (so ``str(knob)``,
f-strings, and ``"".join`` chains stay tainted) but are never treated
as sinks; flows through *resolved* constructors are containment, not
value flow (storing a tainted path on an object does not taint every
value later read out of that object) — the file-local ``digest-purity``
rule owns the Runner-parameter dichotomy that covers those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo

__all__ = ["TaintAnalysis", "TaintHit", "TaintSpec", "is_source"]

#: Both function-definition node flavours.
_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def is_source(origin: str) -> bool:
    """True for source tokens (``"<...>"``), False for parameter names."""
    return origin.startswith("<")


@dataclass(frozen=True)
class TaintSpec:
    """What counts as a source and what counts as a sink."""

    name: str
    #: Called with (enclosing FunctionInfo, Call node, alias-expanded
    #: dotted name) — returns a source label (e.g. ``"env:REPRO_SALT"``)
    #: when the call's *result* is tainted, else None.
    source_of_call: Callable[[FunctionInfo, ast.Call, str], Optional[str]]
    #: Called with (enclosing FunctionInfo, Subscript node, alias-expanded
    #: dotted base name) — returns a source label when subscripting
    #: yields taint, else None.
    source_of_subscript: Callable[
        [FunctionInfo, ast.Subscript, str], Optional[str]
    ]
    #: Called with (resolved callee qname or None, raw dotted name);
    #: returns a display label when the call is a sink, else None.
    sink_label: Callable[[Optional[str], str], Optional[str]]


@dataclass(frozen=True)
class TaintHit:
    """One tainted value reaching a sink argument."""

    path: str
    line: int
    sink: str  # the sink's display label
    function: str  # qname of the function holding the flagged call
    sources: Tuple[str, ...]  # source labels that reach the sink here
    via: Tuple[str, ...]  # interprocedural chain below this call, if any


@dataclass
class _Summary:
    ret_sources: Set[str] = field(default_factory=set)
    ret_params: Set[str] = field(default_factory=set)
    #: param name -> (sink label, chain of callee qnames to the sink).
    sink_params: Dict[str, Tuple[str, Tuple[str, ...]]] = field(
        default_factory=dict
    )


class TaintAnalysis:
    """Run one :class:`TaintSpec` over a built :class:`CallGraph`."""

    def __init__(self, graph: CallGraph, spec: TaintSpec):
        self.graph = graph
        self.spec = spec
        self.summaries: Dict[str, _Summary] = {
            qname: _Summary() for qname in graph.functions
        }
        #: class qname -> attr -> source tokens proven stored there.
        self.tainted_attrs: Dict[str, Dict[str, Set[str]]] = {}
        self.hits: List[TaintHit] = []
        self._changed = False

    # -------------------------------------------------------------- #
    # Public API
    # -------------------------------------------------------------- #

    def run(self) -> List[TaintHit]:
        for _ in range(10):
            self._changed = False
            for fn in self.graph.functions.values():
                self._analyze(fn, collect=False)
            if not self._changed:
                break
        for fn in self.graph.functions.values():
            self._analyze(fn, collect=True)
        seen: Set[Tuple[str, int, str]] = set()
        unique: List[TaintHit] = []
        for hit in self.hits:
            key = (hit.path, hit.line, hit.sink)
            if key not in seen:
                seen.add(key)
                unique.append(hit)
        return sorted(unique, key=lambda h: (h.path, h.line, h.sink))

    # -------------------------------------------------------------- #
    # Per-function analysis
    # -------------------------------------------------------------- #

    def _params(self, fn: FunctionInfo) -> List[str]:
        node = fn.node
        assert isinstance(node, _FUNC_DEFS)
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        names.extend(a.arg for a in args.kwonlyargs)
        return [n for n in names if n not in ("self", "cls")]

    def _analyze(self, fn: FunctionInfo, collect: bool) -> None:
        env: Dict[str, FrozenSet[str]] = {}
        for name in self._params(fn):
            env[name] = frozenset({name})
        summary = self.summaries[fn.qname]
        node = fn.node
        assert isinstance(node, _FUNC_DEFS)
        for stmt in node.body:
            self._visit_stmt(fn, stmt, env, summary, collect)

    def _visit_stmt(
        self,
        fn: FunctionInfo,
        stmt: ast.AST,
        env: Dict[str, FrozenSet[str]],
        summary: _Summary,
        collect: bool,
    ) -> None:
        if isinstance(stmt, _FUNC_DEFS):
            return  # nested functions are analyzed on their own
        if isinstance(stmt, ast.Assign):
            origins = self._eval(fn, stmt.value, env, summary, collect)
            for target in stmt.targets:
                self._assign(fn, target, origins, env)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            origins = self._eval(fn, stmt.value, env, summary, collect)
            self._assign(fn, stmt.target, origins, env)
            return
        if isinstance(stmt, ast.AugAssign):
            origins = self._eval(fn, stmt.value, env, summary, collect)
            if isinstance(stmt.target, ast.Name):
                prior = env.get(stmt.target.id, frozenset())
                self._assign(fn, stmt.target, origins | prior, env)
            else:
                self._assign(fn, stmt.target, origins, env)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                origins = self._eval(fn, stmt.value, env, summary, collect)
                new_sources = {o for o in origins if is_source(o)}
                if not new_sources <= summary.ret_sources:
                    summary.ret_sources |= new_sources
                    self._changed = True
                new_params = {
                    o for o in origins if not is_source(o)
                } - summary.ret_params
                if new_params:
                    summary.ret_params |= new_params
                    self._changed = True
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            origins = self._eval(fn, stmt.iter, env, summary, collect)
            self._assign(fn, stmt.target, origins, env)
            for child in stmt.body + stmt.orelse:
                self._visit_stmt(fn, child, env, summary, collect)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self._eval(
                    fn, item.context_expr, env, summary, collect
                )
                if item.optional_vars is not None:
                    self._assign(fn, item.optional_vars, origins, env)
            for child in stmt.body:
                self._visit_stmt(fn, child, env, summary, collect)
            return
        # Generic statements: evaluate embedded expressions, then walk
        # nested statement blocks in source order.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._visit_stmt(fn, child, env, summary, collect)
            elif isinstance(child, ast.expr):
                self._eval(fn, child, env, summary, collect)
            elif isinstance(child, ast.excepthandler):
                for grand in child.body:
                    self._visit_stmt(fn, grand, env, summary, collect)

    def _assign(
        self,
        fn: FunctionInfo,
        target: ast.AST,
        origins: FrozenSet[str],
        env: Dict[str, FrozenSet[str]],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = origins
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(fn, element, origins, env)
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and fn.cls is not None
        ):
            sources = {o for o in origins if is_source(o)}
            if not sources:
                return
            attrs = self.tainted_attrs.setdefault(fn.cls, {})
            known = attrs.setdefault(target.attr, set())
            if not sources <= known:
                known |= sources
                self._changed = True

    # -------------------------------------------------------------- #
    # Expression evaluation
    # -------------------------------------------------------------- #

    def _eval(
        self,
        fn: FunctionInfo,
        expr: ast.AST,
        env: Dict[str, FrozenSet[str]],
        summary: _Summary,
        collect: bool,
    ) -> FrozenSet[str]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Constant):
            return frozenset()
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fn.cls is not None
            ):
                stored = self.tainted_attrs.get(fn.cls, {}).get(expr.attr)
                return frozenset(stored) if stored else frozenset()
            return self._eval(fn, expr.value, env, summary, collect)
        if isinstance(expr, ast.Subscript):
            base_raw = self.graph.raw_name(fn, expr.value)
            origins = self._eval(fn, expr.value, env, summary, collect)
            origins |= self._eval(fn, expr.slice, env, summary, collect)
            if base_raw is not None:
                label = self.spec.source_of_subscript(fn, expr, base_raw)
                if label is not None:
                    origins |= {f"<{label}>"}
            return origins
        if isinstance(expr, ast.Call):
            return self._eval_call(fn, expr, env, summary, collect)
        if isinstance(expr, ast.Lambda):
            return frozenset()
        # Everything else: union of child expressions (BinOp, BoolOp,
        # f-strings, comprehensions, ternaries, containers, compares).
        origins: FrozenSet[str] = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                origins |= self._eval(fn, child, env, summary, collect)
            elif isinstance(child, ast.comprehension):
                origins |= self._eval(fn, child.iter, env, summary, collect)
        return origins

    def _eval_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: Dict[str, FrozenSet[str]],
        summary: _Summary,
        collect: bool,
    ) -> FrozenSet[str]:
        raw = self.graph.raw_name(fn, call.func) or (
            call.func.attr if isinstance(call.func, ast.Attribute) else ""
        )
        callee_qname = self.graph.resolve_call_target(fn, call)
        arg_origins: List[FrozenSet[str]] = []
        all_origins: FrozenSet[str] = frozenset()
        for arg in list(call.args) + [k.value for k in call.keywords]:
            origins = self._eval(fn, arg, env, summary, collect)
            arg_origins.append(origins)
            all_origins |= origins
        # Receiver taint flows through method calls (tainted.strip()).
        if isinstance(call.func, ast.Attribute):
            all_origins |= self._eval(
                fn, call.func.value, env, summary, collect
            )

        sink = self.spec.sink_label(callee_qname, raw)
        if sink is not None:
            flagged: FrozenSet[str] = frozenset()
            for origins in arg_origins:
                flagged |= origins
            self._report(fn, call, sink, flagged, summary, (), collect)
            return frozenset()  # a digest of taint is not itself taint

        label = self.spec.source_of_call(fn, call, raw)
        if label is not None:
            return frozenset({f"<{label}>"})

        if callee_qname is not None:
            callee_summary = self.summaries.get(callee_qname)
            callee = self.graph.functions.get(callee_qname)
            if callee_summary is not None and callee is not None:
                params = self._params(callee)
                keyword_names = [k.arg for k in call.keywords]

                def origins_for(name: str) -> FrozenSet[str]:
                    if name not in params:
                        return frozenset()
                    index = params.index(name)
                    if index < len(call.args):
                        return arg_origins[index]
                    if name in keyword_names:
                        return arg_origins[
                            len(call.args) + keyword_names.index(name)
                        ]
                    return frozenset()

                # Arguments reaching the callee's sink-bound parameters.
                for name, (sink_name, chain) in list(
                    callee_summary.sink_params.items()
                ):
                    origins = origins_for(name)
                    if origins:
                        self._report(
                            fn,
                            call,
                            sink_name,
                            origins,
                            summary,
                            (callee_qname,) + chain,
                            collect,
                        )
                result: FrozenSet[str] = frozenset(
                    callee_summary.ret_sources
                )
                for name in callee_summary.ret_params:
                    result |= origins_for(name)
                return result
        # Unresolved call: conservatively pass argument taint through.
        return all_origins

    def _report(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        sink_name: str,
        flagged: FrozenSet[str],
        summary: _Summary,
        chain: Tuple[str, ...],
        collect: bool,
    ) -> None:
        sources = sorted(o[1:-1] for o in flagged if is_source(o))
        if sources and collect:
            self.hits.append(
                TaintHit(
                    path=fn.source.rel,
                    line=call.lineno,
                    sink=sink_name,
                    function=fn.qname,
                    sources=tuple(sources),
                    via=chain,
                )
            )
        for origin in flagged:
            if not is_source(origin) and origin not in summary.sink_params:
                summary.sink_params[origin] = (sink_name, chain)
                self._changed = True
