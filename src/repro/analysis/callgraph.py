"""Project-wide call graph + module-import resolver for ``repro lint``.

Like everything under :mod:`repro.analysis`, the graph is *purely
static*: it is built from the :class:`~repro.analysis.core.LintContext`'s
parsed ASTs and never imports the linted tree, so fixture mini-trees
lint exactly like the real checkout.

The graph answers the questions the interprocedural rules ask:

* **Who calls whom.** Call edges are resolved through the module import
  table (absolute and relative imports, re-export chasing), ``self.``
  method dispatch, single-inheritance base-class lookup, and a small
  flow-insensitive type inference (constructor assignments, classmethod
  factories, helper return types, and parameter types propagated from
  call sites). Dynamic dispatch that cannot be resolved statically is
  kept as an edge with ``callee=None`` — the *unknown context* fallback,
  never a guess.
* **Which execution context a function runs in.** Spawn sites
  (``threading.Thread(target=...)``, ``pool.submit(...)``, process-pool
  ``initializer=``, ``loop.run_in_executor(...)``/``asyncio.to_thread``,
  ``signal.signal(...)``, ``loop.add_signal_handler(...)``) seed
  contexts, ``async def`` seeds the event-loop context, the CLI modules
  seed ``main``, and contexts propagate along resolved call edges.
  Functions reached by no root and no resolved edge stay ``unknown``.
* **Which accesses hold a lock.** Each call site and ``self.<attr>``
  access records whether it is lexically inside a ``with <lock>:``
  block; a fixpoint additionally marks functions *always locked* when
  every resolved caller invokes them with a lock held (the
  journal-under-the-service-lock pattern).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import LintContext, SourceFile

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "SelfAccess",
    "SpawnSite",
    "CONTEXT_ASYNC",
    "CONTEXT_EXECUTOR",
    "CONTEXT_MAIN",
    "CONTEXT_POOL",
    "CONTEXT_SIGNAL",
    "CONTEXT_THREAD",
    "CONTEXT_UNKNOWN",
]

#: Both function-definition node flavours.
FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)

CONTEXT_MAIN = "main"  # the process's main thread (CLI entry points)
CONTEXT_ASYNC = "async"  # the asyncio event loop
CONTEXT_THREAD = "thread"  # a dedicated threading.Thread target
CONTEXT_POOL = "pool"  # a process-pool worker (separate address space)
CONTEXT_EXECUTOR = "executor"  # a run_in_executor/to_thread pool thread
CONTEXT_SIGNAL = "signal"  # a signal.signal handler (interrupts main)
CONTEXT_UNKNOWN = "unknown"  # never reached by a resolved edge or root

#: Modules whose top-level functions seed the ``main`` context.
_MAIN_ROOT_MODULES = ("repro.cli", "repro.__main__")

#: Attribute names treated as locks when no constructor assignment
#: proves it (belt and braces for fixture trees).
_LOCK_NAME_HINTS = ("lock", "mutex", "cond", "wake")

#: Constructors whose instances guard a ``with`` block.
_LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Receiver-name fragments identifying executor/pool ``.submit`` calls
#: (a bare ``.submit`` is too common — the sweep service's job
#: submission API uses the same verb).
_POOL_RECEIVER_HINTS = ("pool", "executor")

#: Methods decorated ``@classmethod`` (or named like factories) are
#: assumed to return an instance of their class for type inference.
_FACTORY_NAME_HINTS = ("from_", "load", "attach", "open", "create")


def module_name(rel: str) -> Optional[str]:
    """``src/repro/a/b.py`` -> ``repro.a.b`` (packages drop __init__)."""
    if not rel.startswith("src/") or not rel.endswith(".py"):
        return None
    parts = rel[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method in the linted tree."""

    qname: str  # module-qualified, e.g. repro.service.jobqueue.SweepService.submit
    module: str
    name: str
    cls: Optional[str]  # owning class qname, None for module functions
    source: SourceFile
    node: ast.AST
    is_async: bool
    #: qnames of functions defined lexically inside this one.
    nested: Dict[str, str] = field(default_factory=dict)
    #: qname of the lexically enclosing function, if any.
    parent: Optional[str] = None
    #: self.<attr> accesses (methods only).
    self_accesses: List["SelfAccess"] = field(default_factory=list)
    #: True when the body acquires a lock via ``with``.
    acquires_lock: bool = False


@dataclass(frozen=True)
class SelfAccess:
    """One ``self.<attr>`` read or write inside a method."""

    attr: str
    kind: str  # "read" | "write"
    line: int
    guarded: bool  # lexically inside a with-lock block


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved where possible."""

    caller: str  # qname of the enclosing function ("" at module level)
    callee: Optional[str]  # resolved qname, None for dynamic dispatch
    raw: str  # alias-qualified dotted text as written
    line: int
    guarded: bool  # lexically inside a with-lock block
    path: str  # rel path of the source file


@dataclass(frozen=True)
class SpawnSite:
    """A site that schedules a function onto another execution context."""

    caller: str
    target: Optional[str]  # resolved qname of the spawned function
    raw: str  # the target expression as written
    context: str  # one of the CONTEXT_* labels
    line: int
    path: str


@dataclass
class ClassInfo:
    """One class definition with resolved method/base/lock tables."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname
    base_qnames: List[str] = field(default_factory=list)
    #: instance attributes proven to hold a lock/condition.
    lock_attrs: Set[str] = field(default_factory=set)
    #: inferred instance-attribute types: attr -> class qname.
    attr_types: Dict[str, str] = field(default_factory=dict)


class _Module:
    """Per-module symbol table used during resolution."""

    def __init__(self, name: str, source: SourceFile, is_package: bool):
        self.name = name
        self.source = source
        self.is_package = is_package
        self.functions: Dict[str, str] = {}  # top-level name -> qname
        self.classes: Dict[str, str] = {}  # top-level name -> class qname
        self.imports: Dict[str, str] = {}  # local name -> dotted target
        self.lock_globals: Set[str] = set()  # module vars holding locks


class CallGraph:
    """The resolved project call graph; build once per lint context."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.modules: Dict[str, _Module] = {}
        self.calls: List[CallSite] = []
        self.spawns: List[SpawnSite] = []
        self.calls_by_caller: Dict[str, List[CallSite]] = {}
        self.calls_by_callee: Dict[str, List[CallSite]] = {}
        #: context labels per function qname (computed in build()).
        self.contexts: Dict[str, FrozenSet[str]] = {}
        #: functions whose every resolved call site holds a lock.
        self.always_locked: Set[str] = set()
        #: inferred return types: fn qname -> class qname.
        self.return_types: Dict[str, str] = {}
        #: inferred parameter types: fn qname -> {param name: class qname}.
        self.param_types: Dict[str, Dict[str, str]] = {}

    # -------------------------------------------------------------- #
    # Construction
    # -------------------------------------------------------------- #

    @classmethod
    def build(cls, ctx: LintContext) -> "CallGraph":
        graph = cls()
        graph._collect_modules(ctx)
        graph._collect_definitions()
        graph._resolve_bases_and_locks()
        graph._infer_types()
        graph._collect_edges()
        graph._propagate_contexts()
        graph._compute_always_locked()
        return graph

    def _collect_modules(self, ctx: LintContext) -> None:
        for rel, source in ctx.files.items():
            name = module_name(rel)
            if name is None:
                continue
            self.modules[name] = _Module(
                name, source, is_package=rel.endswith("/__init__.py")
            )
        for module in self.modules.values():
            self._collect_imports(module)

    def _collect_imports(self, module: _Module) -> None:
        for node in ast.walk(module.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        module.imports.setdefault(head, head)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}"

    def _import_base(
        self, module: _Module, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: resolve against the enclosing package.
        parts = module.name.split(".")
        if not module.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[: len(parts) - drop]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None

    def _collect_definitions(self) -> None:
        for module in self.modules.values():
            for stmt in module.source.tree.body:
                if isinstance(stmt, FuncDef):
                    self._add_function(module, stmt, cls=None, parent=None)
                elif isinstance(stmt, ast.ClassDef):
                    self._add_class(module, stmt)

    def _add_class(self, module: _Module, node: ast.ClassDef) -> None:
        qname = f"{module.name}.{node.name}"
        info = ClassInfo(
            qname=qname, module=module.name, name=node.name, node=node
        )
        self.classes[qname] = info
        module.classes[node.name] = qname
        for stmt in node.body:
            if isinstance(stmt, FuncDef):
                fn = self._add_function(module, stmt, cls=qname, parent=None)
                info.methods[stmt.name] = fn.qname

    def _add_function(
        self,
        module: _Module,
        node: ast.AST,
        cls: Optional[str],
        parent: Optional[str],
    ) -> FunctionInfo:
        assert isinstance(node, FuncDef)
        if parent is not None:
            qname = f"{parent}.{node.name}"
        elif cls is not None:
            qname = f"{cls}.{node.name}"
        else:
            qname = f"{module.name}.{node.name}"
            module.functions[node.name] = qname
        info = FunctionInfo(
            qname=qname,
            module=module.name,
            name=node.name,
            cls=cls,
            source=module.source,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            parent=parent,
        )
        self.functions[qname] = info
        for stmt in node.body:
            self._collect_nested(module, stmt, info)
        return info

    def _collect_nested(
        self, module: _Module, stmt: ast.AST, owner: FunctionInfo
    ) -> None:
        """Register nested defs (one level of statements at a time)."""
        if isinstance(stmt, FuncDef):
            nested = self._add_function(
                module, stmt, cls=owner.cls, parent=owner.qname
            )
            owner.nested[stmt.name] = nested.qname
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._collect_nested(module, child, owner)

    # -------------------------------------------------------------- #
    # Symbol resolution
    # -------------------------------------------------------------- #

    def _expand(self, module: _Module, dotted: str) -> str:
        """Rewrite the leading segment through the import table."""
        first, _, rest = dotted.partition(".")
        target = module.imports.get(first)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_symbol(
        self, dotted: str, depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        """Resolve an absolute dotted name to ("function"|"class", qname).

        Chases re-exports (``from repro.a import f`` imported onward)
        up to a small depth; returns None for anything outside the tree.
        """
        if depth > 8:
            return None
        # Longest project-module prefix wins.
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return None  # a bare module, not a callable
            head, tail = rest[0], rest[1:]
            if head in module.functions and not tail:
                return ("function", module.functions[head])
            if head in module.classes:
                klass = self.classes[module.classes[head]]
                if not tail:
                    return ("class", klass.qname)
                if len(tail) == 1:
                    method = self.lookup_method(klass.qname, tail[0])
                    if method is not None:
                        return ("function", method)
                return None
            if head in module.imports:
                onward = module.imports[head] + (
                    "." + ".".join(tail) if tail else ""
                )
                return self.resolve_symbol(onward, depth + 1)
            return None
        return None

    def lookup_method(self, class_qname: str, name: str) -> Optional[str]:
        """Find ``name`` on the class or its project-resolvable bases."""
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            info = self.classes.get(qname)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(info.base_qnames)
        return None

    def _resolve_bases_and_locks(self) -> None:
        for info in self.classes.values():
            module = self.modules[info.module]
            for base in info.node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                resolved = self.resolve_symbol(self._expand(module, dotted))
                if resolved is not None and resolved[0] == "class":
                    info.base_qnames.append(resolved[1])
            # Lock attributes: ``self.x = threading.Lock()`` in any method.
            for method_qname in info.methods.values():
                node = self.functions[method_qname].node
                for stmt in ast.walk(node):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    value = stmt.value
                    if not isinstance(value, ast.Call):
                        continue
                    ctor = _dotted(value.func)
                    if ctor is None:
                        continue
                    ctor = self._expand(module, ctor)
                    if ctor not in _LOCK_CONSTRUCTORS:
                        continue
                    for target in stmt.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            info.lock_attrs.add(attr)
        for module in self.modules.values():
            for stmt in module.source.tree.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                ctor = _dotted(stmt.value.func)
                if ctor and self._expand(module, ctor) in _LOCK_CONSTRUCTORS:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            module.lock_globals.add(target.id)

    # -------------------------------------------------------------- #
    # Type inference (flow-insensitive, fixpoint over a few rounds)
    # -------------------------------------------------------------- #

    def _infer_types(self) -> None:
        for _ in range(4):
            changed = False
            for fn in self.functions.values():
                changed |= self._infer_in_function(fn)
            if not changed:
                break

    def _value_type(
        self, fn: FunctionInfo, value: ast.AST, local_types: Dict[str, str]
    ) -> Optional[str]:
        """Class qname a value expression evaluates to, if inferable."""
        if isinstance(value, ast.IfExp):
            return self._value_type(
                fn, value.body, local_types
            ) or self._value_type(fn, value.orelse, local_types)
        if isinstance(value, ast.Await):
            return self._value_type(fn, value.value, local_types)
        if isinstance(value, ast.Name):
            if value.id == "self" and fn.cls is not None:
                return fn.cls
            if value.id in local_types:
                return local_types[value.id]
            return self._name_type(fn, value.id)
        if isinstance(value, ast.Attribute):
            attr = _self_attr(value)
            if attr is not None and fn.cls is not None:
                return self._class_attr_type(fn.cls, attr)
            return None
        if not isinstance(value, ast.Call):
            return None
        resolved = self._resolve_callee(fn, value.func, local_types)
        if resolved is None:
            return None
        kind, qname = resolved
        if kind == "class":
            return qname
        callee = self.functions.get(qname)
        if callee is None:
            return None
        if callee.cls is not None and _is_factory(callee):
            return callee.cls
        return self.return_types.get(qname)

    def _name_type(self, fn: FunctionInfo, name: str) -> Optional[str]:
        """Parameter type for ``name``, searching enclosing scopes too."""
        scope: Optional[FunctionInfo] = fn
        while scope is not None:
            typ = self.param_types.get(scope.qname, {}).get(name)
            if typ is not None:
                return typ
            scope = self.functions.get(scope.parent) if scope.parent else None
        return None

    def _class_attr_type(self, class_qname: str, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            info = self.classes.get(qname)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            queue.extend(info.base_qnames)
        return None

    def _infer_in_function(self, fn: FunctionInfo) -> bool:
        changed = False
        local_types: Dict[str, str] = {}
        for node in _ordered_walk(fn.node):
            if isinstance(node, ast.Assign):
                typ = self._value_type(fn, node.value, local_types)
                if typ is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if local_types.get(target.id) != typ:
                            local_types[target.id] = typ
                    attr = _self_attr(target)
                    if attr is not None and fn.cls is not None:
                        info = self.classes[fn.cls]
                        if info.attr_types.get(attr) != typ:
                            info.attr_types[attr] = typ
                            changed = True
            elif isinstance(node, ast.Return) and node.value is not None:
                typ = self._value_type(fn, node.value, local_types)
                if typ is not None and self.return_types.get(fn.qname) != typ:
                    self.return_types[fn.qname] = typ
                    changed = True
            elif isinstance(node, ast.Call):
                changed |= self._infer_param_types(fn, node, local_types)
        return changed

    def _infer_param_types(
        self, fn: FunctionInfo, call: ast.Call, local_types: Dict[str, str]
    ) -> bool:
        resolved = self._resolve_callee(fn, call.func, local_types)
        if resolved is None:
            return False
        kind, qname = resolved
        if kind == "class":
            init = self.lookup_method(qname, "__init__")
            if init is None:
                return False
            callee, skip_self = self.functions[init], True
        else:
            callee = self.functions.get(qname)
            if callee is None:
                return False
            skip_self = callee.cls is not None and not _is_staticmethod(callee)
        params = _param_names(callee.node, skip_self=skip_self)
        changed = False
        table = self.param_types.setdefault(callee.qname, {})
        for index, arg in enumerate(call.args):
            if index >= len(params):
                break
            typ = self._value_type(fn, arg, local_types)
            if typ is not None and table.get(params[index]) != typ:
                table[params[index]] = typ
                changed = True
        names = set(params)
        for keyword in call.keywords:
            if keyword.arg in names:
                typ = self._value_type(fn, keyword.value, local_types)
                if typ is not None and table.get(keyword.arg) != typ:
                    table[keyword.arg] = typ
                    changed = True
        return changed

    # -------------------------------------------------------------- #
    # Callee resolution
    # -------------------------------------------------------------- #

    def _resolve_callee(
        self,
        fn: FunctionInfo,
        func: ast.AST,
        local_types: Dict[str, str],
    ) -> Optional[Tuple[str, str]]:
        module = self.modules[fn.module]
        if isinstance(func, ast.Name):
            # Nested siblings / enclosing scopes first.
            scope: Optional[FunctionInfo] = fn
            while scope is not None:
                if func.id in scope.nested:
                    return ("function", scope.nested[func.id])
                scope = (
                    self.functions.get(scope.parent)
                    if scope.parent
                    else None
                )
            if func.id == "cls" and fn.cls is not None:
                return ("class", fn.cls)
            if func.id in module.functions:
                return ("function", module.functions[func.id])
            if func.id in module.classes:
                return ("class", module.classes[func.id])
            if func.id in module.imports:
                return self.resolve_symbol(module.imports[func.id])
            return None
        if isinstance(func, ast.Attribute):
            base, attr = func.value, func.attr
            # self.method() / cls.method()
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and fn.cls
            ):
                method = self.lookup_method(fn.cls, attr)
                if method is not None:
                    return ("function", method)
                return None
            # self.attr.method() via inferred attribute types
            base_attr = _self_attr(base)
            if base_attr is not None and fn.cls is not None:
                typ = self._class_attr_type(fn.cls, base_attr)
                if typ is not None:
                    method = self.lookup_method(typ, attr)
                    if method is not None:
                        return ("function", method)
                return None
            # local_var.method() via inferred local types
            if isinstance(base, ast.Name):
                typ = local_types.get(base.id) or self._name_type(
                    fn, base.id
                )
                if typ is not None:
                    method = self.lookup_method(typ, attr)
                    if method is not None:
                        return ("function", method)
            # module-qualified (repro.a.b.f / Class.method via imports)
            dotted = _dotted(func)
            if dotted is not None:
                return self.resolve_symbol(self._expand(module, dotted))
            # chained calls: Cls(...).method(), helper().method()
            typ = self._value_type(fn, base, local_types)
            if typ is not None:
                method = self.lookup_method(typ, attr)
                if method is not None:
                    return ("function", method)
        return None

    # -------------------------------------------------------------- #
    # Edge extraction
    # -------------------------------------------------------------- #

    def _collect_edges(self) -> None:
        for fn in list(self.functions.values()):
            self._collect_edges_in(fn)
        for site in self.calls:
            self.calls_by_caller.setdefault(site.caller, []).append(site)
            if site.callee is not None:
                self.calls_by_callee.setdefault(site.callee, []).append(site)

    def _is_lock_expr(self, fn: FunctionInfo, expr: ast.AST) -> bool:
        attr = _self_attr(expr)
        if attr is not None:
            if fn.cls is not None:
                info = self.classes.get(fn.cls)
                if info is not None and attr in info.lock_attrs:
                    return True
            return any(hint in attr.lower() for hint in _LOCK_NAME_HINTS)
        if isinstance(expr, ast.Name):
            module = self.modules[fn.module]
            if expr.id in module.lock_globals:
                return True
            return any(hint in expr.id.lower() for hint in _LOCK_NAME_HINTS)
        return False

    def _collect_edges_in(self, fn: FunctionInfo) -> None:
        module = self.modules[fn.module]
        local_types: Dict[str, str] = {}
        lock_attrs: Set[str] = set()
        if fn.cls is not None:
            info = self.classes.get(fn.cls)
            if info is not None:
                lock_attrs = info.lock_attrs

        def visit(node: ast.AST, guarded: bool) -> None:
            if isinstance(node, FuncDef) and node is not fn.node:
                return  # nested defs are walked as their own functions
            if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
                holds = guarded or any(
                    self._is_lock_expr(fn, item.context_expr)
                    for item in node.items
                )
                if holds and not guarded:
                    fn.acquires_lock = True
                for item in node.items:
                    visit(item.context_expr, guarded)
                for stmt in node.body:
                    visit(stmt, holds)
                return
            if isinstance(node, ast.Assign):
                typ = self._value_type(fn, node.value, local_types)
                for target in node.targets:
                    if typ is not None and isinstance(target, ast.Name):
                        local_types[target.id] = typ
                    self._record_store(fn, target, guarded)
                visit(node.value, guarded)
                return
            if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._record_store(fn, node.target, guarded)
                if node.value is not None:
                    visit(node.value, guarded)
                return
            if isinstance(node, ast.Call):
                self._record_call(fn, module, node, local_types, guarded)
                for child in ast.iter_child_nodes(node):
                    visit(child, guarded)
                return
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                attr = _self_attr(node)
                if attr is not None and fn.cls and attr not in lock_attrs:
                    fn.self_accesses.append(
                        SelfAccess(attr, "read", node.lineno, guarded)
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)

        node = fn.node
        assert isinstance(node, FuncDef)
        for stmt in node.body:
            visit(stmt, False)

    def _record_store(
        self, fn: FunctionInfo, target: ast.AST, guarded: bool
    ) -> None:
        if fn.cls is None:
            return
        attr = _self_attr(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
        if attr is None and isinstance(target, ast.Tuple):
            for element in target.elts:
                self._record_store(fn, element, guarded)
            return
        if attr is None:
            return
        info = self.classes.get(fn.cls)
        if info is not None and attr in info.lock_attrs:
            return
        fn.self_accesses.append(
            SelfAccess(attr, "write", target.lineno, guarded)
        )

    def _record_call(
        self,
        fn: FunctionInfo,
        module: _Module,
        node: ast.Call,
        local_types: Dict[str, str],
        guarded: bool,
    ) -> None:
        dotted = _dotted(node.func)
        raw = self._expand(module, dotted) if dotted else (
            node.func.attr if isinstance(node.func, ast.Attribute) else "?"
        )
        resolved = self._resolve_callee(fn, node.func, local_types)
        callee = None
        if resolved is not None:
            kind, qname = resolved
            if kind == "class":
                callee = self.lookup_method(qname, "__init__")
            else:
                callee = qname
        self.calls.append(
            CallSite(
                caller=fn.qname,
                callee=callee,
                raw=raw,
                line=node.lineno,
                guarded=guarded,
                path=fn.source.rel,
            )
        )
        # Mutator method on a self attribute counts as a write — unless
        # the attribute holds a project class instance, in which case
        # ``self.journal.append(...)`` is a method call, not a container
        # mutation (the callee's own accesses are analyzed separately).
        if isinstance(node.func, ast.Attribute):
            attr = _self_attr(node.func.value)
            if (
                attr is not None
                and fn.cls is not None
                and node.func.attr in _MUTATOR_METHODS
                and self._class_attr_type(fn.cls, attr) is None
            ):
                info = self.classes.get(fn.cls)
                if info is None or attr not in info.lock_attrs:
                    fn.self_accesses.append(
                        SelfAccess(attr, "write", node.lineno, guarded)
                    )
        self._record_spawn(fn, node, raw, local_types, guarded)

    def _spawn_ref(
        self, fn: FunctionInfo, expr: ast.AST, local_types: Dict[str, str]
    ) -> Tuple[Optional[str], str]:
        """Resolve a function *reference* (not call) passed to a spawner."""
        resolved = self._resolve_callee(fn, expr, local_types)
        raw = _dotted(expr) or "<dynamic>"
        if resolved is None:
            return None, raw
        kind, qname = resolved
        if kind == "class":
            return self.lookup_method(qname, "__init__"), raw
        return qname, raw

    def _record_spawn(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        raw: str,
        local_types: Dict[str, str],
        guarded: bool,
    ) -> None:
        del guarded
        target_expr: Optional[ast.AST] = None
        context: Optional[str] = None
        tail = raw.rsplit(".", maxsplit=1)[-1]
        if raw.endswith("threading.Thread") or raw == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target_expr, context = keyword.value, CONTEXT_THREAD
        elif tail == "submit" and isinstance(node.func, ast.Attribute):
            receiver = _dotted(node.func.value) or ""
            if any(h in receiver.lower() for h in _POOL_RECEIVER_HINTS):
                if node.args:
                    target_expr, context = node.args[0], CONTEXT_POOL
        elif tail == "run_in_executor":
            if len(node.args) >= 2:
                target_expr, context = node.args[1], CONTEXT_EXECUTOR
        elif raw.endswith("asyncio.to_thread") or tail == "to_thread":
            if node.args:
                target_expr, context = node.args[0], CONTEXT_EXECUTOR
        elif raw.endswith("signal.signal"):
            if len(node.args) >= 2:
                target_expr, context = node.args[1], CONTEXT_SIGNAL
        elif tail == "add_signal_handler":
            if len(node.args) >= 2:
                target_expr, context = node.args[1], CONTEXT_ASYNC
        elif tail.endswith("PoolExecutor"):
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    target_expr, context = keyword.value, CONTEXT_POOL
        if target_expr is None or context is None:
            return
        if isinstance(target_expr, ast.Constant) and target_expr.value is None:
            return
        target, target_raw = self._spawn_ref(fn, target_expr, local_types)
        self.spawns.append(
            SpawnSite(
                caller=fn.qname,
                target=target,
                raw=target_raw,
                context=context,
                line=node.lineno,
                path=fn.source.rel,
            )
        )

    # -------------------------------------------------------------- #
    # Context propagation
    # -------------------------------------------------------------- #

    def _propagate_contexts(self) -> None:
        contexts: Dict[str, Set[str]] = {q: set() for q in self.functions}
        worklist: List[str] = []

        def seed(qname: Optional[str], context: str) -> None:
            if qname is None or qname not in contexts:
                return
            if context not in contexts[qname]:
                contexts[qname].add(context)
                worklist.append(qname)

        for fn in self.functions.values():
            if fn.is_async:
                seed(fn.qname, CONTEXT_ASYNC)
            if fn.module in _MAIN_ROOT_MODULES and fn.cls is None:
                seed(fn.qname, CONTEXT_MAIN)
        for spawn in self.spawns:
            seed(spawn.target, spawn.context)
        while worklist:
            qname = worklist.pop()
            fn = self.functions.get(qname)
            if fn is None:
                continue
            spread = contexts[qname]
            # An async function's own frame runs on the loop; its sync
            # callees inherit every context, its awaited async callees
            # are already seeded.
            for site in self.calls_by_caller.get(qname, ()):
                if site.callee is None or site.callee not in contexts:
                    continue
                before = set(contexts[site.callee])
                contexts[site.callee] |= spread
                if contexts[site.callee] != before:
                    worklist.append(site.callee)
        self.contexts = {
            qname: frozenset(labels) if labels else frozenset({CONTEXT_UNKNOWN})
            for qname, labels in contexts.items()
        }

    def context_of(self, qname: str) -> FrozenSet[str]:
        return self.contexts.get(qname, frozenset({CONTEXT_UNKNOWN}))

    def async_roots_reaching(self, qname: str) -> List[str]:
        """Async-context roots from which ``qname`` is reachable (sorted)."""
        roots = [
            fn.qname
            for fn in self.functions.values()
            if fn.is_async
            or any(
                s.target == fn.qname and s.context == CONTEXT_ASYNC
                for s in self.spawns
            )
        ]
        reaching = []
        for root in roots:
            if self._reaches(root, qname):
                reaching.append(root)
        return sorted(reaching)

    def _reaches(self, start: str, goal: str) -> bool:
        if start == goal:
            return True
        seen = {start}
        queue = [start]
        while queue:
            current = queue.pop(0)
            for site in self.calls_by_caller.get(current, ()):
                callee = site.callee
                if callee is None or callee in seen:
                    continue
                if callee == goal:
                    return True
                seen.add(callee)
                queue.append(callee)
        return False

    def call_path(self, start: str, goal: str) -> Optional[List[str]]:
        """Shortest resolved call chain start -> goal, inclusive."""
        if start == goal:
            return [start]
        parents: Dict[str, str] = {}
        seen = {start}
        queue = [start]
        while queue:
            current = queue.pop(0)
            for site in self.calls_by_caller.get(current, ()):
                callee = site.callee
                if callee is None or callee in seen:
                    continue
                parents[callee] = current
                if callee == goal:
                    chain = [callee]
                    while chain[-1] != start:
                        chain.append(parents[chain[-1]])
                    return list(reversed(chain))
                seen.add(callee)
                queue.append(callee)
        return None

    # -------------------------------------------------------------- #
    # Public resolution helpers (used by the dataflow framework)
    # -------------------------------------------------------------- #

    def resolve_call_target(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """Resolved function qname of a call inside ``fn`` (or None)."""
        resolved = self._resolve_callee(fn, call.func, {})
        if resolved is None:
            return None
        kind, qname = resolved
        if kind == "class":
            return self.lookup_method(qname, "__init__")
        return qname

    def raw_name(self, fn: FunctionInfo, node: ast.AST) -> Optional[str]:
        """Alias-expanded dotted text of a Name/Attribute chain."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        return self._expand(self.modules[fn.module], dotted)

    # -------------------------------------------------------------- #
    # Lock inheritance
    # -------------------------------------------------------------- #

    def _compute_always_locked(self) -> None:
        """Functions every resolved caller invokes with a lock held.

        Spawn targets and root functions (no resolved callers) never
        qualify; the fixpoint removes any function one of whose call
        sites is unguarded and whose caller is not itself always-locked.
        """
        spawned = {s.target for s in self.spawns if s.target}
        candidates = {
            qname
            for qname in self.functions
            if qname in self.calls_by_callee and qname not in spawned
        }
        changed = True
        while changed:
            changed = False
            for qname in list(candidates):
                for site in self.calls_by_callee.get(qname, ()):
                    if site.guarded:
                        continue
                    if site.caller in candidates:
                        continue
                    candidates.discard(qname)
                    changed = True
                    break
        self.always_locked = candidates

    def is_guarded(self, site_guarded: bool, caller: str) -> bool:
        """A site holds a lock lexically or via an always-locked caller."""
        return site_guarded or caller in self.always_locked


# ------------------------------------------------------------------ #
# Small AST helpers (shared shape with rules.py, kept local so the
# module has no import cycle with it)
# ------------------------------------------------------------------ #


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_factory(fn: FunctionInfo) -> bool:
    node = fn.node
    assert isinstance(node, FuncDef)
    for decorator in node.decorator_list:
        if _dotted(decorator) == "classmethod":
            return True
    return any(fn.name.startswith(hint) for hint in _FACTORY_NAME_HINTS)


def _is_staticmethod(fn: FunctionInfo) -> bool:
    node = fn.node
    assert isinstance(node, FuncDef)
    return any(
        _dotted(decorator) == "staticmethod"
        for decorator in node.decorator_list
    )


def _param_names(node: ast.AST, skip_self: bool) -> List[str]:
    assert isinstance(node, FuncDef)
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if skip_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(a.arg for a in args.kwonlyargs)
    return names


def _ordered_walk(node: ast.AST) -> Iterable[ast.AST]:
    """ast.walk, but skipping nested function bodies."""
    queue: List[ast.AST] = [node]
    root = node
    while queue:
        current = queue.pop(0)
        if isinstance(current, FuncDef) and current is not root:
            continue
        yield current
        queue.extend(ast.iter_child_nodes(current))
