"""The ``repro lint`` rule set: ten repo-specific determinism checkers.

Each rule is a callable ``rule(ctx) -> iterable[Finding]`` over a parsed
:class:`~repro.analysis.core.LintContext`. The first seven are
file-local; the last three run over the project call graph
(:mod:`repro.analysis.callgraph`) and data-flow framework
(:mod:`repro.analysis.dataflow`), so they reason about reachability
across module boundaries. Rules encode the reproduction invariants the
earlier PRs established informally:

``unseeded-random``
    Module-level randomness in simulation packages must flow from an
    explicitly seeded generator.
``digest-purity``
    Runner/machine configuration and env knobs must be digested or
    allowlisted in :mod:`repro.analysis.digest_exempt` with justification.
``knob-registry``
    Every ``REPRO_*`` environment read goes through
    :mod:`repro.harness.knobs` and is documented in EXPERIMENTS.md.
``backend-pairing``
    Vector kernels keep their scalar reference path and an equivalence
    test referencing both; compiled-kernel modules (a ``kernels/``
    package, ``@njit``/``@maybe_jit`` functions, or a declared
    ``SCALAR_ORACLE``) name their scalar oracle and are equivalence-
    tested against it.
``nondet``
    Nondeterminism hazards: mutable default arguments, wall-clock reads
    and wall-clock *subtraction* in digest/journal and golden/replay
    modules (durations must come from monotonic clocks), float equality
    on counters, bare set iteration, ``id()``-keyed caches.
``worker-safety``
    Process-pool submissions take module-level, lambda-free functions;
    only documented initializer hooks may touch process-global state.
``workload-registry``
    Workload kernels named in the registry's ``REGISTERED_CLASSES``
    literal are constructed only through
    :mod:`repro.workloads.registry` (outside the workloads package
    itself), and raw dataset files (``.mtx``/``.snap``/``.el``) are read
    only by the digest-pinned ingester in :mod:`repro.graphs.ingest`.
``concurrency-safety``
    Every function is classified by execution context (main, asyncio
    loop, worker thread, executor thread, pool process, signal handler)
    via call-graph reachability; instance state written from one
    concurrent context and touched from another must hold a lock,
    blocking calls (fsync/sleep/subprocess) must not be reachable from
    the event loop, and signal handlers must only set flags.
``digest-flow``
    Interprocedural digest purity: environment/knob values must not
    flow into ``run_digest``/``content_id`` through helper chains —
    digests are pure functions of declared config.
``telemetry-schema``
    Every statically-extractable ``telemetry.emit``/``emit_timed``
    event name and field set is cross-checked against the
    EXPERIMENTS.md event table in both directions (undocumented
    emissions and documented-but-never-emitted rows both flag).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.analysis.core import Finding, LintContext, SourceFile

__all__ = ["Rule", "RULES", "RULE_IDS"]

#: Both function-definition node flavours (rules treat them alike).
FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Simulation subpackages where module-level randomness is forbidden.
RANDOM_CHECKED_PACKAGES = (
    "cache",
    "cpu",
    "core",
    "pb",
    "sparse",
    "dram",
    "noc",
    "des",
    "graphs",
    "workloads",
)

#: Seeded-generator constructors: fine *with* an explicit seed argument.
_SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "random.Random",
}

#: Modules on digest/journal paths where wall-clock reads are hazards.
_CLOCK_SENSITIVE_MODULES = (
    "src/repro/harness/resultcache.py",
    "src/repro/harness/checkpoint.py",
    "src/repro/harness/telemetry.py",
    "src/repro/harness/benchhistory.py",
)

#: Package prefixes with the same clock sensitivity (every module under
#: the golden capture/replay subsystem compares runs across time, so a
#: wall-clock-derived duration there silently corrupts drift verdicts;
#: the sweep service journals job state across restarts, so wall-clock
#: there must stay display-only).
_CLOCK_SENSITIVE_PREFIXES = ("src/repro/golden/", "src/repro/service/")

#: Attribute/subscript names that hold wall-clock stamps; subtracting two
#: of them derives a duration from a steppable clock.
_WALLCLOCK_FIELDS = frozenset({"ts", "recorded", "updated", "created"})

#: Float-valued counter attributes that must never be compared with ==.
_FLOAT_COUNTER_ATTRS = frozenset(
    {
        "cycles",
        "total_cycles",
        "branch_mispredicts",
        "stall_fraction",
        "coherence_cycles",
        "parallel_cycles",
        "single_core_cycles",
    }
)

#: Cross-module vector/scalar engine pairs (module, vector class,
#: scalar module, scalar class).
_BACKEND_PAIRS = (
    ("cache/batchsim.py", "BatchHierarchy", "cache/fastsim.py", "FastHierarchy"),
    ("des/eviction_model.py", "EvictionBufferModel", "des/engine.py", "Simulator"),
)

#: Directory name marking a compiled-kernel package: every module inside
#: one is held to the SCALAR_ORACLE contract even without jit decorators
#: (the C tier, for instance, has no Python-visible kernel functions).
_KERNEL_PACKAGE_DIR = "kernels"

#: Module attribute through which a compiled-kernel module names the
#: scalar engine it is equivalence-tested against.
_ORACLE_MARKER = "SCALAR_ORACLE"

#: Decorators that mark a function as a compiled kernel (alias-resolved;
#: matched on the trailing attribute so package-qualified imports count).
_KERNEL_JIT_DECORATORS = frozenset({"maybe_jit", "njit", "numba.njit"})

#: Initializer hooks documented as the one sanctioned way to reset
#: per-process global state in pool workers.
_RESET_HOOK_SUFFIXES = ("_worker_init",)

#: Package prefix inside which workload classes may be constructed
#: directly (the registry's builders and the kernels themselves).
_WORKLOADS_PACKAGE_PREFIX = "src/repro/workloads/"

#: The one module allowed to open raw dataset files: every read there is
#: sha256-verified against the DATASETS pin table before parsing.
_INGEST_MODULE = "src/repro/graphs/ingest.py"

#: File suffixes of raw graph datasets (Matrix Market, SNAP edge lists).
_DATASET_SUFFIXES = (".mtx", ".snap", ".el")

#: Attribute-call names that read file contents (``Path.read_text`` and
#: friends); paired with a dataset-suffixed literal they bypass the
#: ingester's checksum gate.
_DATASET_READERS = frozenset({"read_text", "read_bytes", "open"})


# ------------------------------------------------------------------ #
# Shared AST helpers
# ------------------------------------------------------------------ #


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    """Import alias -> fully qualified name, for the whole module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _qualified(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted name of a call target, alias-resolved."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    first, _, rest = dotted.partition(".")
    if first in aliases:
        resolved = aliases[first]
        return f"{resolved}.{rest}" if rest else resolved
    return dotted


def _str_arg(
    call: ast.Call, consts: Dict[str, str], index: int = 0
) -> Optional[str]:
    """The call's ``index``-th positional argument as a string, resolving
    module-level string constants."""
    if len(call.args) <= index:
        return None
    arg = call.args[index]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name):
        return consts.get(arg.id)
    return None


@dataclass(frozen=True)
class EnvRead:
    """One environment-variable read site found in the tree."""

    source: SourceFile
    line: int
    name: Optional[str]  # resolved variable name, None if dynamic
    via: str  # "os" (raw read) or "knobs" (registry read)


def _env_reads(ctx: LintContext) -> List[EnvRead]:
    """Every ``os.environ``/``os.getenv``/knob-registry read in the tree."""
    reads: List[EnvRead] = []
    for source in ctx.package_files():
        aliases = _alias_map(source.tree)
        consts = source.string_constants()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                target = _qualified(node.func, aliases)
                if target in ("os.environ.get", "os.getenv"):
                    reads.append(
                        EnvRead(
                            source,
                            node.lineno,
                            _str_arg(node, consts),
                            "os",
                        )
                    )
                elif target is not None and (
                    target.endswith("knobs.read") or target.endswith("knobs.get")
                ):
                    reads.append(
                        EnvRead(
                            source,
                            node.lineno,
                            _str_arg(node, consts),
                            "knobs",
                        )
                    )
            elif isinstance(node, ast.Subscript):
                if _qualified(node.value, aliases) == "os.environ":
                    name = None
                    if isinstance(node.slice, ast.Constant) and isinstance(
                        node.slice.value, str
                    ):
                        name = node.slice.value
                    elif isinstance(node.slice, ast.Name):
                        name = consts.get(node.slice.id)
                    reads.append(EnvRead(source, node.lineno, name, "os"))
    return reads


def _registered_knobs(ctx: LintContext) -> Dict[str, int]:
    """Knob names declared in the tree's ``harness/knobs.py`` -> line."""
    source = ctx.module("harness/knobs.py")
    if source is None:
        return {}
    names: Dict[str, int] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _dotted(node.func)
        if callee is None or callee.split(".")[-1] not in ("Knob", "_knob"):
            continue
        name: Optional[str] = None
        first = node.args[0] if node.args else None
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = first.value
        for keyword in node.keywords:
            if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    name = keyword.value.value
        if name is not None:
            names[name] = node.lineno
    return names


def _class_methods(klass: ast.ClassDef) -> Dict[str, FuncDef]:
    return {
        stmt.name: stmt
        for stmt in klass.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _init_params(klass: ast.ClassDef) -> Tuple[List[str], int]:
    """``__init__`` parameter names (minus self) and its line number."""
    init = _class_methods(klass).get("__init__")
    if init is None:
        return [], klass.lineno
    args = init.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [name for name in names if name != "self"], init.lineno


# ------------------------------------------------------------------ #
# Rule 1: unseeded-random
# ------------------------------------------------------------------ #


def check_unseeded_random(ctx: LintContext) -> Iterator[Finding]:
    hint = (
        "thread an explicitly seeded generator through the call site "
        "(np.random.default_rng(seed) / random.Random(seed)); "
        "module-level randomness breaks bit-identical reproduction"
    )
    for source in ctx.package_files(RANDOM_CHECKED_PACKAGES):
        aliases = _alias_map(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _qualified(node.func, aliases)
            if target is None:
                continue
            stdlib_random = target.startswith("random.")
            numpy_random = target.startswith("numpy.random.")
            if not (stdlib_random or numpy_random):
                continue
            if target in _SEEDED_CONSTRUCTORS:
                if node.args or any(k.arg == "seed" for k in node.keywords):
                    continue
                yield Finding(
                    rule="unseeded-random",
                    path=source.rel,
                    line=node.lineno,
                    message=f"{target}() constructed without an explicit seed",
                    hint=hint,
                )
                continue
            yield Finding(
                rule="unseeded-random",
                path=source.rel,
                line=node.lineno,
                message=(
                    f"call to {target} uses module-level random state"
                ),
                hint=hint,
            )


# ------------------------------------------------------------------ #
# Rule 2: digest-purity
# ------------------------------------------------------------------ #


def _digest_exempt_entries(
    ctx: LintContext,
) -> Tuple[Dict[str, Tuple[int, str]], List[Finding]]:
    """Parse the tree's allowlist: key -> (line, justification)."""
    source = ctx.module("analysis/digest_exempt.py")
    if source is None:
        return {}, []
    entries: Dict[str, Tuple[int, str]] = {}
    findings: List[Finding] = []
    for node in source.tree.body:
        if not (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "DIGEST_EXEMPT"
                for t in node.targets
            )
        ):
            continue
        if not isinstance(node.value, ast.Dict):
            findings.append(
                Finding(
                    rule="digest-purity",
                    path=source.rel,
                    line=node.lineno,
                    message="DIGEST_EXEMPT must be a literal dict "
                    "(the analyzer parses it statically)",
                )
            )
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                findings.append(
                    Finding(
                        rule="digest-purity",
                        path=source.rel,
                        line=(key or node).lineno,
                        message="DIGEST_EXEMPT entries must be literal "
                        "string -> string pairs",
                    )
                )
                continue
            entries[key.value] = (key.lineno, value.value)
            if not value.value.strip():
                findings.append(
                    Finding(
                        rule="digest-purity",
                        path=source.rel,
                        line=key.lineno,
                        message=(
                            f"allowlist entry {key.value!r} has an empty "
                            "justification"
                        ),
                        hint="say why the state cannot change counters "
                        "(cite the equivalence test)",
                    )
                )
    return entries, findings


def _digest_keys(runner_class: ast.ClassDef) -> set:
    """String keys of the dict ``_digest_params`` returns."""
    keys = set()
    method = _class_methods(runner_class).get("_digest_params")
    if method is None:
        return keys
    for node in ast.walk(method):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


def check_digest_purity(ctx: LintContext) -> Iterator[Finding]:
    exempt, parse_findings = _digest_exempt_entries(ctx)
    yield from parse_findings

    runner_params: List[str] = []
    runner_src = ctx.module("harness/runner.py")
    if runner_src is not None:
        for node in runner_src.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "Runner":
                params, line = _init_params(node)
                runner_params = params
                digested = _digest_keys(node) | {"machine"}
                for param in params:
                    if param in digested:
                        continue
                    if f"Runner.{param}" in exempt:
                        continue
                    yield Finding(
                        rule="digest-purity",
                        path=runner_src.rel,
                        line=line,
                        message=(
                            f"Runner parameter {param!r} is neither part of "
                            "the run_digest serialization nor allowlisted "
                            "in analysis/digest_exempt.py"
                        ),
                        hint="add it to _digest_params() if it can change "
                        "counters, or register it with a justification",
                    )

    machine_src = ctx.module("harness/machine.py")
    if machine_src is not None:
        for node in machine_src.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "MachineConfig":
                decorated = any(
                    (_dotted(d) or _dotted(getattr(d, "func", ast.Pass())))
                    in ("dataclass", "dataclasses.dataclass")
                    for d in node.decorator_list
                )
                if not decorated:
                    yield Finding(
                        rule="digest-purity",
                        path=machine_src.rel,
                        line=node.lineno,
                        message=(
                            "MachineConfig is not a dataclass: run_digest "
                            "serializes the machine with dataclasses.asdict, "
                            "so ad-hoc attributes would silently escape the "
                            "digest"
                        ),
                    )

    registry = _registered_knobs(ctx)
    seen_knobs = set()
    for read in _env_reads(ctx):
        name = read.name
        if name is None or not name.startswith("REPRO_"):
            continue
        seen_knobs.add(name)
        if read.source.rel == "src/repro/harness/knobs.py":
            continue
        if name not in exempt:
            yield Finding(
                rule="digest-purity",
                path=read.source.rel,
                line=read.line,
                message=(
                    f"environment knob {name!r} is read but not "
                    "digest-allowlisted in analysis/digest_exempt.py"
                ),
                hint="knobs must provably not change counters; register "
                "the knob with a justification citing its equivalence test",
            )

    exempt_src = ctx.module("analysis/digest_exempt.py")
    if exempt_src is None:
        return
    for key, (line, _justification) in exempt.items():
        if key.startswith("Runner."):
            if runner_src is not None and key[len("Runner."):] not in runner_params:
                yield Finding(
                    rule="digest-purity",
                    path=exempt_src.rel,
                    line=line,
                    message=f"stale allowlist entry {key!r}: no such "
                    "Runner parameter",
                )
        elif key.startswith("REPRO_"):
            if key not in seen_knobs and key not in registry:
                yield Finding(
                    rule="digest-purity",
                    path=exempt_src.rel,
                    line=line,
                    message=f"stale allowlist entry {key!r}: the knob is "
                    "neither read nor registered anywhere",
                )
        else:
            yield Finding(
                rule="digest-purity",
                path=exempt_src.rel,
                line=line,
                message=(
                    f"allowlist key {key!r} is neither 'Runner.<param>' "
                    "nor a 'REPRO_*' knob name"
                ),
            )


# ------------------------------------------------------------------ #
# Rule 3: knob-registry
# ------------------------------------------------------------------ #


def check_knob_registry(ctx: LintContext) -> Iterator[Finding]:
    registry = _registered_knobs(ctx)
    documented = ctx.experiments_text
    for read in _env_reads(ctx):
        name = read.name
        if name is None or not name.startswith("REPRO_"):
            continue
        if read.source.rel == "src/repro/harness/knobs.py":
            continue
        if read.via == "os":
            yield Finding(
                rule="knob-registry",
                path=read.source.rel,
                line=read.line,
                message=(
                    f"raw environment read of {name!r} outside the knob "
                    "registry"
                ),
                hint="read it through repro.harness.knobs.read(...) so the "
                "registry stays the single source of truth",
            )
        if name not in registry:
            yield Finding(
                rule="knob-registry",
                path=read.source.rel,
                line=read.line,
                message=(
                    f"environment knob {name!r} is not registered in "
                    "harness/knobs.py"
                ),
                hint="declare it in the KNOBS registry with a default and "
                "a one-line contract",
            )
        elif name not in documented:
            yield Finding(
                rule="knob-registry",
                path=read.source.rel,
                line=read.line,
                message=(
                    f"environment knob {name!r} is not documented in "
                    "EXPERIMENTS.md"
                ),
                hint="add it to the environment-knob table",
            )
    knobs_src = ctx.module("harness/knobs.py")
    if knobs_src is None:
        return
    for name, line in registry.items():
        if name not in documented:
            yield Finding(
                rule="knob-registry",
                path=knobs_src.rel,
                line=line,
                message=(
                    f"registered knob {name!r} is not documented in "
                    "EXPERIMENTS.md"
                ),
                hint="add it to the environment-knob table",
            )


# ------------------------------------------------------------------ #
# Rule 4: backend-pairing
# ------------------------------------------------------------------ #


def _compiled_kernel_line(source: SourceFile) -> Optional[int]:
    """Line of the first compiled-kernel marker in ``source``, else None.

    A module is a compiled-kernel module when it defines a function
    decorated with a jit decorator (``maybe_jit``/``njit``), or when it
    lives inside a ``kernels/`` package directory.
    """
    aliases = _alias_map(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _qualified(target, aliases) or _dotted(target)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if name in _KERNEL_JIT_DECORATORS or tail in _KERNEL_JIT_DECORATORS:
                return node.lineno
    if _KERNEL_PACKAGE_DIR in source.rel.split("/")[:-1]:
        return 1
    return None


def _module_str_constant(
    tree: ast.Module, name: str
) -> Tuple[Optional[str], Optional[int]]:
    """``(value, lineno)`` of a module-level string assignment, else Nones."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target.id]
            value = node.value
        else:
            continue
        if name in targets and isinstance(value, ast.Constant) and isinstance(
            value.value, str
        ):
            return value.value, node.lineno
    return None, None


def check_backend_pairing(ctx: LintContext) -> Iterator[Finding]:
    for source in ctx.package_files():
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _class_methods(node)
            if "simulate_array" not in methods:
                continue
            vector = methods["simulate_array"]
            if "simulate" not in methods:
                yield Finding(
                    rule="backend-pairing",
                    path=source.rel,
                    line=vector.lineno,
                    message=(
                        f"{node.name}.simulate_array has no scalar "
                        "reference path ({0}.simulate)".format(node.name)
                    ),
                    hint="keep the scalar loop as the oracle; digest "
                    "purity rests on the engines being interchangeable",
                )
                continue
            tests = [
                rel
                for rel in ctx.tests_mentioning(node.name, "simulate_array")
                if ".simulate(" in ctx.test_texts[rel]
            ]
            if not tests:
                yield Finding(
                    rule="backend-pairing",
                    path=source.rel,
                    line=vector.lineno,
                    message=(
                        f"no test under tests/ exercises both "
                        f"{node.name}.simulate_array and {node.name}"
                        ".simulate (equivalence is unasserted)"
                    ),
                    hint="add an equivalence test that replays one stream "
                    "through both paths and asserts identical output",
                )
    for module_rel, vector_cls, scalar_rel, scalar_cls in _BACKEND_PAIRS:
        source = ctx.module(module_rel)
        if source is None:
            continue
        class_names = {
            node.name
            for node in source.tree.body
            if isinstance(node, ast.ClassDef)
        }
        if vector_cls not in class_names:
            continue
        line = next(
            node.lineno
            for node in source.tree.body
            if isinstance(node, ast.ClassDef) and node.name == vector_cls
        )
        scalar_src = ctx.module(scalar_rel)
        scalar_names = (
            {
                node.name
                for node in scalar_src.tree.body
                if isinstance(node, ast.ClassDef)
            }
            if scalar_src is not None
            else set()
        )
        if scalar_cls not in scalar_names:
            yield Finding(
                rule="backend-pairing",
                path=source.rel,
                line=line,
                message=(
                    f"vector backend {vector_cls} lost its scalar "
                    f"reference engine {scalar_cls} ({scalar_rel})"
                ),
            )
            continue
        if not ctx.tests_mentioning(vector_cls, scalar_cls):
            yield Finding(
                rule="backend-pairing",
                path=source.rel,
                line=line,
                message=(
                    f"no test under tests/ references both {vector_cls} "
                    f"and {scalar_cls} (engine equivalence is unasserted)"
                ),
                hint="add an equivalence test replaying one trace through "
                "both engines and asserting identical counters",
            )
    for source in ctx.package_files():
        if source.rel.endswith("/__init__.py"):
            continue
        kernel_line = _compiled_kernel_line(source)
        oracle, oracle_line = _module_str_constant(source.tree, _ORACLE_MARKER)
        if kernel_line is None and oracle is None:
            continue
        if oracle is None:
            yield Finding(
                rule="backend-pairing",
                path=source.rel,
                line=kernel_line,
                message=(
                    f"compiled-kernel module {source.rel} names no "
                    f"scalar oracle ({_ORACLE_MARKER} is missing)"
                ),
                hint=(
                    f'declare {_ORACLE_MARKER} = "<ScalarEngine>" naming '
                    "the scalar engine these kernels are equivalence-"
                    "tested against"
                ),
            )
            continue
        stem = source.rel.rsplit("/", 1)[-1][: -len(".py")]
        anchors = [stem]
        if _KERNEL_PACKAGE_DIR in source.rel.split("/")[:-1]:
            anchors.append(_KERNEL_PACKAGE_DIR)
        if not any(ctx.tests_mentioning(oracle, a) for a in anchors):
            yield Finding(
                rule="backend-pairing",
                path=source.rel,
                line=oracle_line or kernel_line or 1,
                message=(
                    f"no test under tests/ references both the compiled-"
                    f"kernel module {stem!r} (or its kernels package) and "
                    f"its scalar oracle {oracle} (equivalence is "
                    "unasserted)"
                ),
                hint="add an equivalence test replaying one stream "
                "through the compiled kernels and the oracle and "
                "asserting identical counters",
            )


# ------------------------------------------------------------------ #
# Rule 5: nondet hazards
# ------------------------------------------------------------------ #


def _mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = _dotted(node.func)
        return callee in ("list", "dict", "set", "bytearray")
    return False


def _wallclock_operand(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Why ``node`` carries a wall-clock value, or None.

    Flags ``time.time()`` calls and reads of stamp-named fields
    (``.ts`` attributes, ``["ts"]`` subscripts, and friends): subtracting
    any of them derives a duration from a clock that steps.
    """
    if isinstance(node, ast.Call) and _qualified(node.func, aliases) == "time.time":
        return "time.time()"
    if isinstance(node, ast.Attribute) and node.attr in _WALLCLOCK_FIELDS:
        return f"a .{node.attr} wall-clock stamp"
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value in _WALLCLOCK_FIELDS
    ):
        return f"a [{node.slice.value!r}] wall-clock stamp"
    return None


def check_nondet(ctx: LintContext) -> Iterator[Finding]:
    for source in ctx.package_files():
        aliases = _alias_map(source.tree)
        clock_sensitive = source.rel in _CLOCK_SENSITIVE_MODULES or source.rel.startswith(
            _CLOCK_SENSITIVE_PREFIXES
        )
        for node in ast.walk(source.tree):
            if clock_sensitive and isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Sub
            ):
                for operand in (node.left, node.right):
                    reason = _wallclock_operand(operand, aliases)
                    if reason is not None:
                        yield Finding(
                            rule="nondet",
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"wall-clock subtraction ({reason}) in a "
                                "golden/replay or journal module: wall "
                                "clocks step, so ts-derived durations are "
                                "non-monotonic"
                            ),
                            hint="measure durations with time.perf_counter"
                            " / time.monotonic pairs (emit_timed's "
                            "duration_s); ts stamps are display-only",
                        )
                        break
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _mutable_default(default):
                        yield Finding(
                            rule="nondet",
                            path=source.rel,
                            line=default.lineno,
                            message=(
                                f"mutable default argument in "
                                f"{node.name}() is shared across calls"
                            ),
                            hint="default to None and initialize inside "
                            "the function (or use an immutable tuple/"
                            "frozenset)",
                        )
            elif isinstance(node, ast.Call):
                target = _qualified(node.func, aliases)
                if clock_sensitive and target == "time.time":
                    yield Finding(
                        rule="nondet",
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            "wall-clock time.time() in a digest/journal "
                            "module"
                        ),
                        hint="timestamps must never reach digested "
                        "payloads; if this is observability metadata "
                        "only, suppress with a justification",
                    )
                elif target == "id" and not node.keywords and len(node.args) == 1:
                    yield Finding(
                        rule="nondet",
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            "id() used as identity: CPython reuses "
                            "addresses after collection, so id-keyed "
                            "state can silently alias distinct objects"
                        ),
                        hint="key caches/memos by content (hash the "
                        "bytes) or by a stable identifier",
                    )
            elif isinstance(node, ast.Compare):
                if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    continue
                for side in [node.left] + list(node.comparators):
                    if (
                        isinstance(side, ast.Attribute)
                        and side.attr in _FLOAT_COUNTER_ATTRS
                    ):
                        yield Finding(
                            rule="nondet",
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"float equality on counter attribute "
                                f"'.{side.attr}'"
                            ),
                            hint="compare via math.isclose / a tolerance, "
                            "or compare the exact integer inputs instead",
                        )
                        break
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterator = node.iter
                is_set = isinstance(iterator, ast.Set) or (
                    isinstance(iterator, ast.Call)
                    and _dotted(iterator.func) in ("set", "frozenset")
                )
                if is_set:
                    line = (
                        node.lineno
                        if isinstance(node, ast.For)
                        else iterator.lineno
                    )
                    yield Finding(
                        rule="nondet",
                        path=source.rel,
                        line=line,
                        message=(
                            "iteration over a set feeds order-sensitive "
                            "output"
                        ),
                        hint="wrap in sorted(...) to fix the order",
                    )


# ------------------------------------------------------------------ #
# Rule 6: worker-safety
# ------------------------------------------------------------------ #


def _module_level_callables(source: SourceFile) -> Dict[str, FuncDef]:
    return {
        node.name: node
        for node in source.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def check_worker_safety(ctx: LintContext) -> Iterator[Finding]:
    for source in ctx.package_files():
        if not source.rel.startswith(
            ("src/repro/harness/", "src/repro/service/")
        ):
            continue
        module_defs = _module_level_callables(source)
        aliases = _alias_map(source.tree)
        imported = set(aliases)
        submitted: List[Tuple[ast.AST, int]] = []
        initializers: List[Tuple[ast.AST, int]] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                submitted.append((node.args[0], node.lineno))
            callee = _qualified(node.func, aliases) or ""
            if callee.endswith("ProcessPoolExecutor"):
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        initializers.append((keyword.value, node.lineno))

        def _validate(target: ast.AST, line: int, role: str) -> Iterator[Finding]:
            if isinstance(target, ast.Lambda):
                yield Finding(
                    rule="worker-safety",
                    path=source.rel,
                    line=line,
                    message=f"lambda passed as pool {role}",
                    hint="process pools pickle by qualified name; use a "
                    "module-level function",
                )
                return
            if isinstance(target, ast.Name):
                if target.id in module_defs or target.id in imported:
                    return
                yield Finding(
                    rule="worker-safety",
                    path=source.rel,
                    line=line,
                    message=(
                        f"pool {role} {target.id!r} is not a module-level "
                        "function (nested functions and closures do not "
                        "survive pickling)"
                    ),
                )
                return
            yield Finding(
                rule="worker-safety",
                path=source.rel,
                line=line,
                message=(
                    f"pool {role} is not a plain module-level function "
                    "reference (bound methods capture unpicklable or "
                    "process-local state)"
                ),
            )

        for target, line in submitted:
            yield from _validate(target, line, "worker")
        for target, line in initializers:
            yield from _validate(target, line, "initializer")

        worker_names = {
            target.id
            for target, _ in submitted
            if isinstance(target, ast.Name) and target.id in module_defs
        }
        for name in worker_names:
            func = module_defs[name]
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield Finding(
                        rule="worker-safety",
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            f"pool worker {name!r} mutates module-global "
                            "state"
                        ),
                        hint="global telemetry/counters in workers are "
                        "invisible to the parent and unsafe under fork; "
                        "reset per-process state only in a documented "
                        "*_worker_init initializer hook",
                    )


# ------------------------------------------------------------------ #
# Rule 7: workload-registry
# ------------------------------------------------------------------ #


def _registered_workload_classes(ctx: LintContext) -> Dict[str, int]:
    """Class names in the registry's ``REGISTERED_CLASSES`` literal -> line.

    The tuple in ``workloads/registry.py`` is kept a pure literal so this
    parse stays static; a unit test cross-checks it against the live
    registry so the two cannot drift.
    """
    source = ctx.module("workloads/registry.py")
    if source is None:
        return {}
    names: Dict[str, int] = {}
    for node in source.tree.body:
        if not (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "REGISTERED_CLASSES"
                for t in node.targets
            )
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, str
                ):
                    names[elt.value] = elt.lineno
    return names


def _dataset_path_literal(
    call: ast.Call, consts: Dict[str, str]
) -> Optional[str]:
    """A dataset-suffixed string literal anywhere in ``call``, else None.

    Walks the whole call (arguments *and* the receiver chain) so both
    ``open("karate.mtx")`` and ``Path("karate.mtx").read_text()`` match.
    """
    for sub in ast.walk(call):
        value: Optional[str] = None
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            value = sub.value
        elif isinstance(sub, ast.Name):
            value = consts.get(sub.id)
        if value is not None and value.endswith(_DATASET_SUFFIXES):
            return value
    return None


def check_workload_registry(ctx: LintContext) -> Iterator[Finding]:
    registered = _registered_workload_classes(ctx)
    for source in ctx.package_files():
        consts = source.string_constants()
        aliases = _alias_map(source.tree)
        in_workloads = source.rel.startswith(_WORKLOADS_PACKAGE_PREFIX)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not in_workloads:
                target = _qualified(node.func, aliases)
                tail = target.rsplit(".", 1)[-1] if target else None
                if tail in registered:
                    yield Finding(
                        rule="workload-registry",
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            f"workload class {tail} constructed outside "
                            "the registry; ad-hoc instances carry no "
                            "canonical cache_key, so their results dodge "
                            "the result cache and golden pins"
                        ),
                        hint="resolve the point through "
                        "repro.workloads.registry (resolve / resolve_spec "
                        "/ workload_instances), or register a new "
                        "WorkloadSpec if this is a genuinely new kernel",
                    )
                    continue
            if source.rel == _INGEST_MODULE:
                continue
            reader: Optional[str] = None
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                reader = "open()"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _DATASET_READERS
            ):
                reader = f".{node.func.attr}()"
            if reader is None:
                continue
            path_literal = _dataset_path_literal(node, consts)
            if path_literal is not None:
                yield Finding(
                    rule="workload-registry",
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"raw dataset read of {path_literal!r} via "
                        f"{reader} bypasses the digest-pinned ingester"
                    ),
                    hint="load datasets through repro.graphs.ingest."
                    "load_dataset so the bytes are sha256-verified "
                    "against the DATASETS pin table first",
                )


# ------------------------------------------------------------------ #
# Interprocedural rules (call-graph / data-flow layer)
# ------------------------------------------------------------------ #
#
# The three rules below run on the project call graph built by
# :mod:`repro.analysis.callgraph` (one lazy build per lint context,
# shared), so they see *reachability*, not just file-local syntax: which
# execution context a function runs in, which helper chains an env value
# flows through, which telemetry events a call tree can emit.

#: Context labels that share the process address space concurrently.
#: Pool workers run in their own process and "main" is where everything
#: else is sequenced from, so neither joins a shared-state conflict.
_CONCURRENT_CONTEXTS = frozenset({"async", "thread", "executor", "signal"})

#: Methods that run before the instance is published to another context
#: (or during pickling, when no other context holds a reference), so
#: their unguarded writes are construction, not races.
_CONSTRUCTION_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__post_init__",
        "__setstate__",
        "__getstate__",
        "__reduce__",
    }
)

#: Fully-qualified callables that block the calling thread long enough
#: to stall an event loop or wedge a signal handler. ``os.write`` is
#: deliberately absent: single buffered-line writes to journal fds are
#: sub-millisecond, while fsync waits on the disk.
_BLOCKING_EXACT = frozenset(
    {"time.sleep", "os.fsync", "os.fdatasync", "select.select"}
)
_BLOCKING_PREFIXES = ("subprocess.",)


def _blocking_callable(raw: str) -> Optional[str]:
    if raw in _BLOCKING_EXACT:
        return raw
    for prefix in _BLOCKING_PREFIXES:
        if raw.startswith(prefix):
            return raw
    return None


def _short(qname: str) -> str:
    """Drop the ``repro.`` prefix for readable call chains."""
    return qname[len("repro."):] if qname.startswith("repro.") else qname


def _shared_state_findings(ctx: LintContext, graph) -> Iterator[Finding]:
    """Instance attributes written from one concurrent context and
    touched from another without a consistent lock."""
    # A class participates when a spawn target is one of its methods,
    # when it declares its own lock attributes, or when a participating
    # class holds an instance of it in an attribute (closure below).
    shared = {
        fn.cls
        for spawn in graph.spawns
        if spawn.target is not None
        and (fn := graph.functions.get(spawn.target)) is not None
        and fn.cls is not None
    }
    shared |= {
        info.qname for info in graph.classes.values() if info.lock_attrs
    }
    changed = True
    while changed:
        changed = False
        for info in graph.classes.values():
            if info.qname not in shared:
                continue
            for typ in info.attr_types.values():
                if typ in graph.classes and typ not in shared:
                    shared.add(typ)
                    changed = True

    for class_qname in sorted(shared):
        info = graph.classes.get(class_qname)
        if info is None:
            continue
        # attr -> (contexts, has_write, first unguarded access)
        table: Dict[str, list] = {}
        for method_qname in info.methods.values():
            fn = graph.functions.get(method_qname)
            if fn is None or fn.name in _CONSTRUCTION_METHODS:
                continue
            contexts = graph.context_of(method_qname) & _CONCURRENT_CONTEXTS
            locked_caller = method_qname in graph.always_locked
            for access in fn.self_accesses:
                if access.attr in info.lock_attrs:
                    continue
                entry = table.setdefault(access.attr, [set(), False, None])
                entry[0] |= contexts
                if access.kind == "write":
                    entry[1] = True
                if not access.guarded and not locked_caller:
                    if entry[2] is None or access.line < entry[2][1]:
                        entry[2] = (fn.source.rel, access.line)
        for attr in sorted(table):
            contexts, has_write, unguarded = table[attr]
            if len(contexts) < 2 or not has_write or unguarded is None:
                continue
            path, line = unguarded
            yield Finding(
                rule="concurrency-safety",
                path=path,
                line=line,
                message=(
                    f"{info.name}.{attr} is written in one of the "
                    f"{'+'.join(sorted(contexts))} contexts and accessed "
                    "from another without a consistent lock"
                ),
                hint="guard every access with the owning lock (or a "
                "locked accessor); display-only state can be suppressed "
                "with '# repro: noqa[concurrency-safety]'",
            )


def _blocking_async_findings(ctx: LintContext, graph) -> Iterator[Finding]:
    """Blocking calls whose enclosing function runs on the event loop."""
    for site in graph.calls:
        blocking = _blocking_callable(site.raw)
        if blocking is None:
            continue
        caller = graph.functions.get(site.caller)
        if caller is None:
            continue
        if "async" not in graph.context_of(site.caller):
            continue
        roots = graph.async_roots_reaching(site.caller)
        chain = ""
        if roots:
            path = graph.call_path(roots[0], site.caller)
            if path:
                chain = " via " + " -> ".join(_short(q) for q in path)
        yield Finding(
            rule="concurrency-safety",
            path=site.path,
            line=site.line,
            message=(
                f"blocking call {blocking} is reachable on the asyncio "
                f"event loop{chain}"
            ),
            hint="hand the blocking work to a thread with "
            "loop.run_in_executor(...) / asyncio.to_thread(...), or cut "
            "the call edge from the coroutine",
        )


def _signal_reentrancy_findings(ctx: LintContext, graph) -> Iterator[Finding]:
    """Non-reentrant work (locks, blocking IO) inside signal handlers.

    A signal handler interrupts the main thread at an arbitrary bytecode
    boundary: taking a non-reentrant lock there deadlocks if the
    interrupted frame holds it, and blocking IO stretches the window in
    which a second signal kills the process.
    """
    for qname, fn in sorted(graph.functions.items()):
        if "signal" not in graph.context_of(qname):
            continue
        if fn.acquires_lock:
            yield Finding(
                rule="concurrency-safety",
                path=fn.source.rel,
                line=fn.node.lineno,
                message=(
                    f"{_short(qname)} acquires a lock but is reachable "
                    "from a signal handler"
                ),
                hint="signal handlers must only set flags; move the "
                "locked work to the interrupted loop's next iteration",
            )
        for site in graph.calls_by_caller.get(qname, ()):
            blocking = _blocking_callable(site.raw)
            tail = site.raw.rsplit(".", maxsplit=1)[-1]
            if blocking is None and tail != "acquire":
                continue
            what = blocking or site.raw
            yield Finding(
                rule="concurrency-safety",
                path=site.path,
                line=site.line,
                message=(
                    f"non-reentrant call {what} in {_short(qname)} is "
                    "reachable from a signal handler"
                ),
                hint="signal handlers must only set flags; defer the "
                "work to the interrupted loop",
            )


def check_concurrency_safety(ctx: LintContext) -> Iterator[Finding]:
    graph = ctx.callgraph()
    yield from _shared_state_findings(ctx, graph)
    yield from _blocking_async_findings(ctx, graph)
    yield from _signal_reentrancy_findings(ctx, graph)


# ------------------------------------------------------------------ #
# Rule 9: digest-flow (interprocedural digest purity)
# ------------------------------------------------------------------ #

#: Call tails that name a digest sink anywhere in the tree.
_DIGEST_SINKS = ("run_digest", "content_id")


def _digest_sink_label(qname: Optional[str], raw: str) -> Optional[str]:
    for name in _DIGEST_SINKS:
        if qname is not None and qname.rsplit(".", 1)[-1] == name:
            return name
        if raw == name or raw.endswith("." + name):
            return name
    return None


def _env_arg_label(fn, call: ast.Call) -> str:
    """``env:<NAME>`` for the first argument of an env/knob read."""
    if call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return f"env:{arg.value}"
        if isinstance(arg, ast.Name):
            consts = fn.source.string_constants()
            if arg.id in consts:
                return f"env:{consts[arg.id]}"
    return "env:?"


def _digest_source_of_call(fn, call: ast.Call, raw: str) -> Optional[str]:
    if raw == "os.getenv" or raw.endswith(".environ.get"):
        return _env_arg_label(fn, call)
    if raw in ("knobs.read", "knobs.get") or raw.endswith(
        (".knobs.read", ".knobs.get")
    ):
        return _env_arg_label(fn, call)
    return None


def _digest_source_of_subscript(fn, sub: ast.Subscript, raw: str) -> Optional[str]:
    if raw == "os.environ" or raw.endswith(".environ"):
        key = sub.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return f"env:{key.value}"
        return "env:?"
    return None


def check_digest_flow(ctx: LintContext) -> Iterator[Finding]:
    from repro.analysis.dataflow import TaintAnalysis, TaintSpec

    exempt, _parse_findings = _digest_exempt_entries(ctx)
    spec = TaintSpec(
        name="digest-flow",
        source_of_call=_digest_source_of_call,
        source_of_subscript=_digest_source_of_subscript,
        sink_label=_digest_sink_label,
    )
    graph = ctx.callgraph()
    for hit in TaintAnalysis(graph, spec).run():
        sources = ", ".join(hit.sources)
        chain = (
            " via " + " -> ".join(_short(q) for q in hit.via)
            if hit.via
            else ""
        )
        exempted = sorted(
            s[len("env:"):]
            for s in hit.sources
            if s.startswith("env:") and s[len("env:"):] in exempt
        )
        contradiction = (
            f"; {', '.join(exempted)} is digest-allowlisted as unable to "
            "affect digests" if exempted else ""
        )
        yield Finding(
            rule="digest-flow",
            path=hit.path,
            line=hit.line,
            message=(
                f"environment input ({sources}) flows into {hit.sink} in "
                f"{_short(hit.function)}{chain}{contradiction}"
            ),
            hint="digests must be pure functions of declared config "
            "(machine, _digest_params, cache_key, mode); break the flow "
            "or justify with '# repro: noqa[digest-flow]'",
        )


# ------------------------------------------------------------------ #
# Rule 10: telemetry-schema
# ------------------------------------------------------------------ #

#: Method names that emit a telemetry event.
_EMIT_METHODS = ("emit", "emit_timed")

#: Fields every ``emit_timed`` event carries implicitly (the monotonic
#: duration and its legacy alias), documented once in the prose above
#: the EXPERIMENTS.md table rather than per row.
_IMPLICIT_TIMED_FIELDS = frozenset({"duration_s", "seconds"})

_EVENT_TABLE_HEADER = re.compile(r"\|\s*event\s*\|\s*fields\s*\|")
_BACKTICKED = re.compile(r"`([^`]+)`")


def _telemetry_table(ctx: LintContext):
    """Rows of the EXPERIMENTS.md event-schema table.

    Returns ``[(lineno, [event, ...], {field token, ...}), ...]`` — the
    second cell's backticked tokens include enum *values* as well as
    field names, which is fine: the checker only requires emitted fields
    to appear among them (a superset check), so extra tokens never flag.
    """
    rows = []
    in_table = False
    for lineno, line in enumerate(
        ctx.experiments_text.splitlines(), start=1
    ):
        stripped = line.strip()
        if not in_table:
            if _EVENT_TABLE_HEADER.fullmatch(stripped):
                in_table = True
            continue
        if not stripped.startswith("|"):
            break
        if set(stripped) <= set("|-: "):
            continue  # the header separator row
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if len(cells) < 2:
            continue
        events = _BACKTICKED.findall(cells[0])
        fields = set(_BACKTICKED.findall(cells[1]))
        if events:
            rows.append((lineno, events, fields))
    return rows


def _emit_sites(ctx: LintContext):
    """Every static telemetry emission in the package.

    Yields ``(source, node, method, name, prefix, fields)`` where
    exactly one of ``name`` (a literal event name) and ``prefix`` (the
    literal head of a concatenated/f-string name) is set; fully dynamic
    names yield neither and are skipped by the caller.
    """
    for source in ctx.package_files():
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _EMIT_METHODS:
                continue
            receiver = _dotted(func.value)
            if receiver is None:
                continue
            if receiver.rsplit(".", maxsplit=1)[-1] != "telemetry":
                continue
            if not node.args:
                continue
            event = node.args[0]
            name: Optional[str] = None
            prefix: Optional[str] = None
            if isinstance(event, ast.Constant) and isinstance(
                event.value, str
            ):
                name = event.value
            elif (
                isinstance(event, ast.BinOp)
                and isinstance(event.op, ast.Add)
                and isinstance(event.left, ast.Constant)
                and isinstance(event.left.value, str)
            ):
                prefix = event.left.value
            elif (
                isinstance(event, ast.JoinedStr)
                and event.values
                and isinstance(event.values[0], ast.Constant)
                and isinstance(event.values[0].value, str)
            ):
                prefix = event.values[0].value
            fields = {kw.arg for kw in node.keywords if kw.arg is not None}
            yield source, node, func.attr, name, prefix, fields


def check_telemetry_schema(ctx: LintContext) -> Iterator[Finding]:
    rows = _telemetry_table(ctx)
    if not rows:
        return  # no event table to check against (e.g. fixture trees)
    documented: Dict[str, set] = {}
    for _lineno, events, fields in rows:
        for event in events:
            documented.setdefault(event, set()).update(fields)

    emitted_names: set = set()
    emitted_prefixes: set = set()
    for source, node, method, name, prefix, fields in _emit_sites(ctx):
        if method == "emit_timed":
            fields = fields - _IMPLICIT_TIMED_FIELDS
        if name is not None:
            emitted_names.add(name)
            if name not in documented:
                yield Finding(
                    rule="telemetry-schema",
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"telemetry event {name!r} is not documented in "
                        "the EXPERIMENTS.md event table"
                    ),
                    hint="add a `| event | fields |` row (the table is "
                    "machine-checked against the emitting code)",
                )
                continue
            for field_name in sorted(
                fields - documented[name] - _IMPLICIT_TIMED_FIELDS
            ):
                yield Finding(
                    rule="telemetry-schema",
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"field {field_name!r} of telemetry event "
                        f"{name!r} is missing from its EXPERIMENTS.md row"
                    ),
                    hint="document the field (or drop it from the "
                    "emission)",
                )
        elif prefix is not None:
            emitted_prefixes.add(prefix)
            if not any(event.startswith(prefix) for event in documented):
                yield Finding(
                    rule="telemetry-schema",
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"telemetry events {prefix!r}* are not documented "
                        "in the EXPERIMENTS.md event table"
                    ),
                    hint="add rows for every concrete event name this "
                    "site can emit",
                )

    for lineno, events, _fields in rows:
        for event in events:
            if event in emitted_names:
                continue
            if any(event.startswith(p) for p in emitted_prefixes):
                continue
            yield Finding(
                rule="telemetry-schema",
                path="EXPERIMENTS.md",
                line=lineno,
                message=(
                    f"documented telemetry event {event!r} is never "
                    "emitted by the package"
                ),
                hint="remove the stale row, or restore the emission it "
                "documents",
            )


# ------------------------------------------------------------------ #
# Registry
# ------------------------------------------------------------------ #


@dataclass(frozen=True)
class Rule:
    """One registered checker."""

    id: str
    summary: str
    check: Callable[[LintContext], Iterable[Finding]]


RULES: Tuple[Rule, ...] = (
    Rule(
        "unseeded-random",
        "randomness in simulation packages must flow from explicit seeds",
        check_unseeded_random,
    ),
    Rule(
        "digest-purity",
        "runner/machine config and env knobs are digested or allowlisted",
        check_digest_purity,
    ),
    Rule(
        "knob-registry",
        "REPRO_* reads go through harness/knobs.py and EXPERIMENTS.md",
        check_knob_registry,
    ),
    Rule(
        "backend-pairing",
        "vector kernels keep a scalar oracle and an equivalence test",
        check_backend_pairing,
    ),
    Rule(
        "nondet",
        "nondeterminism hazards (mutable defaults, clocks, wall-clock "
        "subtraction, float ==, set order, id() keys)",
        check_nondet,
    ),
    Rule(
        "worker-safety",
        "pool workers are module-level, lambda-free, and global-clean",
        check_worker_safety,
    ),
    Rule(
        "workload-registry",
        "workload kernels resolve through the registry; raw dataset "
        "reads go through the digest-pinned ingester",
        check_workload_registry,
    ),
    Rule(
        "concurrency-safety",
        "call-graph contexts: no unlocked cross-context state, no "
        "blocking calls on the event loop, flag-only signal handlers",
        check_concurrency_safety,
    ),
    Rule(
        "digest-flow",
        "env/knob values must not flow into run_digest/content_id, "
        "even through helper chains",
        check_digest_flow,
    ),
    Rule(
        "telemetry-schema",
        "emitted telemetry events/fields match the EXPERIMENTS.md "
        "event table in both directions",
        check_telemetry_schema,
    ),
)

RULE_IDS: Tuple[str, ...] = tuple(rule.id for rule in RULES)
