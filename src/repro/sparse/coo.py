"""Coordinate-format (COO) sparse matrices.

COO is the input format for the sparse kernels the paper draws from
SuiteSparse (Transpose, SymPerm) and the natural "edge list of a matrix";
it is what the sparse workloads stream through during Binning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_index_array, check_positive

__all__ = ["COOMatrix"]


@dataclass(frozen=True)
class COOMatrix:
    """A sparse matrix as parallel (row, col, val) arrays.

    Duplicate coordinates are allowed (they sum on conversion to CSR, as in
    standard sparse libraries), though the generators never emit them.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    shape: tuple

    def __post_init__(self):
        rows = as_index_array(self.rows, "rows")
        cols = as_index_array(self.cols, "cols")
        vals = np.asarray(self.vals, dtype=np.float64)
        if vals.ndim != 1:
            raise ValueError("vals must be one-dimensional")
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("rows, cols, vals must have equal length")
        if len(self.shape) != 2:
            raise ValueError("shape must be (num_rows, num_cols)")
        num_rows, num_cols = self.shape
        check_positive("num_rows", num_rows)
        check_positive("num_cols", num_cols)
        if len(rows) and (rows.min() < 0 or rows.max() >= num_rows):
            raise ValueError("row indices out of range")
        if len(cols) and (cols.min() < 0 or cols.max() >= num_cols):
            raise ValueError("column indices out of range")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "vals", vals)
        object.__setattr__(self, "shape", (int(num_rows), int(num_cols)))

    @property
    def nnz(self):
        """Number of stored entries."""
        return len(self.rows)

    def to_csr(self):
        """Convert to :class:`repro.sparse.csr_matrix.CSRMatrix`."""
        from repro.sparse.csr_matrix import CSRMatrix

        return CSRMatrix.from_coo(self)

    def transpose(self):
        """COO of the transpose (rows and cols swapped)."""
        return COOMatrix(
            self.cols.copy(),
            self.rows.copy(),
            self.vals.copy(),
            (self.shape[1], self.shape[0]),
        )

    def to_dense(self):
        """Dense ndarray (tests only; O(rows * cols) memory)."""
        dense = np.zeros(self.shape)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    def upper_triangular(self):
        """COO restricted to entries with ``col >= row`` (SymPerm's domain)."""
        keep = self.cols >= self.rows
        return COOMatrix(
            self.rows[keep], self.cols[keep], self.vals[keep], self.shape
        )

    def __repr__(self):
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
