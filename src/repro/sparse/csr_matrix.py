"""Compressed Sparse Row matrices (the SpMV substrate)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_index_array

__all__ = ["CSRMatrix"]


@dataclass(frozen=True)
class CSRMatrix:
    """A sparse matrix in CSR form.

    Row ``r``'s entries live at ``indptr[r]:indptr[r + 1]`` in ``indices``
    (column IDs) and ``data`` (values). Column IDs within a row follow
    insertion order — like the graph CSR, any order is semantically equal.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    num_cols: int

    def __post_init__(self):
        indptr = as_index_array(self.indptr, "indptr")
        indices = as_index_array(self.indices, "indices")
        data = np.asarray(self.data, dtype=np.float64)
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) != len(data):
            raise ValueError("indices and data must have equal length")
        if len(indices) and (indices.min() < 0 or indices.max() >= self.num_cols):
            raise ValueError("column indices out of range")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "data", data)

    @classmethod
    def from_coo(cls, coo):
        """Build from a :class:`~repro.sparse.coo.COOMatrix`.

        Stable sort by row keeps each row's entries in COO order, matching
        what a sequential scatter loop produces.
        """
        num_rows, num_cols = coo.shape
        counts = np.bincount(coo.rows, minlength=num_rows)
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(coo.rows, kind="stable")
        return cls(indptr, coo.cols[order].copy(), coo.vals[order].copy(), num_cols)

    @property
    def num_rows(self):
        """Number of rows."""
        return len(self.indptr) - 1

    @property
    def shape(self):
        """(num_rows, num_cols)."""
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self):
        """Number of stored entries."""
        return len(self.indices)

    def row(self, r):
        """(column IDs, values) views for row ``r``."""
        lo, hi = self.indptr[r], self.indptr[r + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def matvec(self, x):
        """Sparse matrix-vector product ``A @ x`` (reference SpMV)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_cols,):
            raise ValueError(f"x must have shape ({self.num_cols},)")
        row_ids = np.repeat(np.arange(self.num_rows), np.diff(self.indptr))
        y = np.zeros(self.num_rows)
        np.add.at(y, row_ids, self.data * x[self.indices])
        return y

    def rmatvec(self, x):
        """Transpose product ``A.T @ x`` — the irregular-update form of SpMV.

        Streaming rows of A while scattering into ``y[col]`` is exactly the
        irregular-update pattern PB optimizes (the paper's SpMV variant
        processes the transpose representation).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_rows,):
            raise ValueError(f"x must have shape ({self.num_rows},)")
        row_ids = np.repeat(np.arange(self.num_rows), np.diff(self.indptr))
        y = np.zeros(self.num_cols)
        np.add.at(y, self.indices, self.data * x[row_ids])
        return y

    def to_coo(self):
        """Convert back to COO (row-major entry order)."""
        from repro.sparse.coo import COOMatrix

        row_ids = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), np.diff(self.indptr)
        )
        return COOMatrix(row_ids, self.indices.copy(), self.data.copy(), self.shape)

    def transpose(self):
        """CSR of the transpose (reference for the Transpose workload)."""
        return self.to_coo().transpose().to_csr()

    def to_dense(self):
        """Dense ndarray (tests only)."""
        return self.to_coo().to_dense()

    def canonical(self):
        """Copy with each row's entries sorted by column ID.

        Used to compare results of kernels that may emit rows in different
        within-row orders (e.g. PB-reordered Transpose).
        """
        indices = self.indices.copy()
        data = self.data.copy()
        for r in range(self.num_rows):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            order = np.argsort(indices[lo:hi], kind="stable")
            indices[lo:hi] = indices[lo:hi][order]
            data[lo:hi] = data[lo:hi][order]
        return CSRMatrix(self.indptr.copy(), indices, data, self.num_cols)

    def __repr__(self):
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
