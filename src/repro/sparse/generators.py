"""Synthetic sparse-matrix generators.

Stand-ins for the paper's Table III matrices ("representative of simulation
and optimization problems"): a Poisson-stencil matrix with shuffled labels
(simulation), a random sparse matrix (optimization), and symmetric variants
for SymPerm.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive, rng_from_seed
from repro.sparse.coo import COOMatrix

__all__ = [
    "poisson2d",
    "random_sparse",
    "random_symmetric",
    "random_permutation",
    "MATRIX_GENERATORS",
]


def poisson2d(side, seed=None, shuffle=True):
    """5-point Poisson stencil on a ``side x side`` grid (HPCG-style).

    With ``shuffle=True`` the row/column labels are randomly permuted so the
    access pattern of transpose-SpMV is irregular, matching how reordered
    simulation matrices behave.
    """
    check_positive("side", side)
    n = side * side
    idx = np.arange(n, dtype=np.int64).reshape(side, side)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    vals = [np.full(n, 4.0)]
    for shift_rows, shift_cols in [(idx[:, :-1], idx[:, 1:]), (idx[:-1, :], idx[1:, :])]:
        a, b = shift_rows.ravel(), shift_cols.ravel()
        rows += [a, b]
        cols += [b, a]
        vals += [np.full(len(a), -1.0), np.full(len(b), -1.0)]
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = np.concatenate(vals)
    if shuffle:
        rng = rng_from_seed(seed)
        perm = rng.permutation(n)
        rows, cols = perm[rows], perm[cols]
        order = rng.permutation(len(rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
    return COOMatrix(rows, cols, vals, (n, n))


def random_sparse(num_rows, num_cols, nnz, seed=None):
    """Random sparse matrix with ``nnz`` entries at distinct coordinates."""
    check_positive("num_rows", num_rows)
    check_positive("num_cols", num_cols)
    check_positive("nnz", nnz)
    if nnz > num_rows * num_cols:
        raise ValueError("nnz exceeds matrix capacity")
    rng = rng_from_seed(seed)
    flat = rng.choice(num_rows * num_cols, size=nnz, replace=False)
    rows = (flat // num_cols).astype(np.int64)
    cols = (flat % num_cols).astype(np.int64)
    vals = rng.standard_normal(nnz)
    return COOMatrix(rows, cols, vals, (num_rows, num_cols))


def random_symmetric(n, nnz_upper, seed=None):
    """Random symmetric matrix given by ``nnz_upper`` upper-triangular entries.

    Returns the full symmetric COO (both triangles plus diagonal), the form
    SymPerm consumes (it then restricts itself to the upper triangle).
    """
    check_positive("n", n)
    check_positive("nnz_upper", nnz_upper)
    rng = rng_from_seed(seed)
    rows = rng.integers(0, n, size=nnz_upper * 2, dtype=np.int64)
    cols = rng.integers(0, n, size=nnz_upper * 2, dtype=np.int64)
    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    coords = np.unique(lo * n + hi)[:nnz_upper]
    lo, hi = coords // n, coords % n
    vals = rng.standard_normal(len(coords))
    off_diag = lo != hi
    rows = np.concatenate([lo, hi[off_diag]])
    cols = np.concatenate([hi, lo[off_diag]])
    vals = np.concatenate([vals, vals[off_diag]])
    order = rng.permutation(len(rows))
    return COOMatrix(rows[order], cols[order], vals[order], (n, n))


def random_permutation(n, seed=None):
    """A random permutation vector (input to PINV and SymPerm)."""
    check_positive("n", n)
    return rng_from_seed(seed).permutation(n).astype(np.int64)


#: Name → generator mapping used by the harness input suite.
MATRIX_GENERATORS = {
    "poisson2d": poisson2d,
    "random_sparse": random_sparse,
    "random_symmetric": random_symmetric,
}
