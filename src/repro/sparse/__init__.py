"""Sparse linear algebra substrate: COO/CSR matrices and generators."""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr_matrix import CSRMatrix
from repro.sparse.generators import (
    MATRIX_GENERATORS,
    poisson2d,
    random_permutation,
    random_sparse,
    random_symmetric,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "MATRIX_GENERATORS",
    "poisson2d",
    "random_permutation",
    "random_sparse",
    "random_symmetric",
]
