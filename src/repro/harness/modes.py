"""Execution-mode identifiers used throughout the harness."""

from __future__ import annotations

__all__ = [
    "BASELINE",
    "PB_SW",
    "PB_SW_IDEAL",
    "COBRA",
    "COBRA_COMM",
    "PHI",
    "CHARACTERIZATION",
    "ALL_MODES",
    "COMMUTATIVE_ONLY_MODES",
]

#: Direct irregular-update execution (no blocking).
BASELINE = "baseline"
#: Software Propagation Blocking at the compromise bin count.
PB_SW = "pb-sw"
#: Unrealizable ideal: Binning at its best bin count, Accumulate at its
#: best bin count (Figure 5's headroom bound).
PB_SW_IDEAL = "pb-sw-ideal"
#: Hardware-assisted PB (this paper).
COBRA = "cobra"
#: COBRA specialized with LLC update coalescing (commutative only).
COBRA_COMM = "cobra-comm"
#: Hierarchical coalescing baseline (commutative only, idealized).
PHI = "phi"
#: Irregular-update locality characterization (Figure 2); not a real
#: execution mode, but addressable as one so sweeps can mix it in.
CHARACTERIZATION = "characterization"

ALL_MODES = (BASELINE, PB_SW, PB_SW_IDEAL, COBRA, COBRA_COMM, PHI)
COMMUTATIVE_ONLY_MODES = frozenset({COBRA_COMM, PHI})
