"""Execution-mode identifiers used throughout the harness.

Modes are members of :class:`ExecutionMode`, a :class:`~enum.StrEnum`:
every member *is* its mode string (``ExecutionMode.COBRA == "cobra"``,
``json.dumps`` emits the bare string), so code and serialized artifacts
that predate the enum — result-cache digests, checkpoint manifests,
telemetry events — are unchanged. The bare-string module constants
(``modes.BASELINE`` etc.) remain as aliases of the members.
"""

from __future__ import annotations

from enum import StrEnum

__all__ = [
    "ExecutionMode",
    "BASELINE",
    "PB_SW",
    "PB_SW_IDEAL",
    "COBRA",
    "COBRA_COMM",
    "PHI",
    "CHARACTERIZATION",
    "ALL_MODES",
    "COMMUTATIVE_ONLY_MODES",
]


class ExecutionMode(StrEnum):
    """Every execution mode the harness can run.

    String-compatible: members compare and hash as their values, so they
    interoperate with plain mode strings everywhere (dict keys, frozensets,
    JSON payloads). Use :meth:`coerce` to validate untrusted input.
    """

    #: Direct irregular-update execution (no blocking).
    BASELINE = "baseline"
    #: Software Propagation Blocking at the compromise bin count.
    PB_SW = "pb-sw"
    #: Unrealizable ideal: Binning at its best bin count, Accumulate at its
    #: best bin count (Figure 5's headroom bound).
    PB_SW_IDEAL = "pb-sw-ideal"
    #: Hardware-assisted PB (this paper).
    COBRA = "cobra"
    #: COBRA specialized with LLC update coalescing (commutative only).
    COBRA_COMM = "cobra-comm"
    #: Hierarchical coalescing baseline (commutative only, idealized).
    PHI = "phi"
    #: Irregular-update locality characterization (Figure 2); not a real
    #: execution mode, but addressable as one so sweeps can mix it in.
    CHARACTERIZATION = "characterization"

    # hash by value (not member identity) so plain strings keep working as
    # lookup keys in sets/dicts built from members, on every Python version
    __hash__ = str.__hash__

    @classmethod
    def coerce(cls, value):
        """Validate ``value`` (mode string or member) into a member.

        Raises ``ValueError`` naming the valid modes for anything else.
        """
        try:
            return cls(value)
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown mode {value!r}; valid modes: {valid}"
            ) from None


BASELINE = ExecutionMode.BASELINE
PB_SW = ExecutionMode.PB_SW
PB_SW_IDEAL = ExecutionMode.PB_SW_IDEAL
COBRA = ExecutionMode.COBRA
COBRA_COMM = ExecutionMode.COBRA_COMM
PHI = ExecutionMode.PHI
CHARACTERIZATION = ExecutionMode.CHARACTERIZATION

ALL_MODES = (BASELINE, PB_SW, PB_SW_IDEAL, COBRA, COBRA_COMM, PHI)
COMMUTATIVE_ONLY_MODES = frozenset({COBRA_COMM, PHI})
