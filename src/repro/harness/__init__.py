"""Experiment harness: machine config, inputs, runner, reports, drivers."""

from repro.harness.checkpoint import (
    SweepCheckpoint,
    default_checkpoint_dir,
    list_runs,
)
from repro.harness.faults import (
    FaultInjector,
    FaultPolicy,
    GracefulShutdown,
    PointFailure,
    SweepInterrupted,
    SweepOutcome,
    run_sweep_resilient,
)
from repro.harness.machine import DEFAULT_MACHINE, MachineConfig
from repro.harness.modes import (
    ALL_MODES,
    BASELINE,
    COBRA,
    COBRA_COMM,
    COMMUTATIVE_ONLY_MODES,
    PB_SW,
    PB_SW_IDEAL,
    PHI,
    ExecutionMode,
)
from repro.harness.report import format_series, format_table, geomean, speedup
from repro.harness.runner import Runner
from repro.harness.telemetry import NULL_TELEMETRY, JsonlTelemetry, Telemetry

__all__ = [
    "ALL_MODES",
    "BASELINE",
    "COBRA",
    "COBRA_COMM",
    "COMMUTATIVE_ONLY_MODES",
    "DEFAULT_MACHINE",
    "ExecutionMode",
    "FaultInjector",
    "FaultPolicy",
    "GracefulShutdown",
    "JsonlTelemetry",
    "MachineConfig",
    "NULL_TELEMETRY",
    "PB_SW",
    "PB_SW_IDEAL",
    "PHI",
    "PointFailure",
    "Runner",
    "SweepCheckpoint",
    "SweepInterrupted",
    "SweepOutcome",
    "Telemetry",
    "default_checkpoint_dir",
    "format_series",
    "format_table",
    "geomean",
    "speedup",
    "list_runs",
    "run_sweep_resilient",
]
