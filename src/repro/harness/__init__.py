"""Experiment harness: machine config, inputs, runner, reports, drivers."""

from repro.harness.machine import DEFAULT_MACHINE, MachineConfig
from repro.harness.modes import (
    ALL_MODES,
    BASELINE,
    COBRA,
    COBRA_COMM,
    COMMUTATIVE_ONLY_MODES,
    PB_SW,
    PB_SW_IDEAL,
    PHI,
)
from repro.harness.report import format_series, format_table, geomean, speedup
from repro.harness.runner import Runner

__all__ = [
    "ALL_MODES",
    "BASELINE",
    "COBRA",
    "COBRA_COMM",
    "COMMUTATIVE_ONLY_MODES",
    "DEFAULT_MACHINE",
    "MachineConfig",
    "PB_SW",
    "PB_SW_IDEAL",
    "PHI",
    "Runner",
    "format_series",
    "format_table",
    "geomean",
    "speedup",
]
