"""Plain-text table/series formatting shared by experiments and benches."""

from __future__ import annotations

import math

__all__ = [
    "geomean",
    "format_table",
    "format_series",
    "format_replay",
    "speedup",
]


def geomean(values):
    """Geometric mean (ignores non-positive values defensively)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_cycles, new_cycles):
    """Speedup of ``new`` over ``baseline`` (>1 means faster)."""
    return baseline_cycles / new_cycles if new_cycles else float("inf")


def format_table(headers, rows, title=None, floatfmt="{:.2f}"):
    """Render an aligned text table. ``rows`` hold str/int/float cells."""
    rendered = [
        [
            floatfmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered
        else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[c].rjust(widths[c]) for c in range(len(row))))
    return "\n".join(lines)


def format_series(name, xs, ys, xlabel="x", ylabel="y", floatfmt="{:.3f}"):
    """Render an (x, y) series as the rows a figure would plot."""
    rows = [[x, float(y)] for x, y in zip(xs, ys)]
    return format_table([xlabel, ylabel], rows, title=name, floatfmt=floatfmt)


def format_replay(payload):
    """Render a ``ReplayReport.as_dict()`` payload as plain text.

    Takes the serialized dict (not the dataclass) so ``repro report
    --replay saved.json`` renders an artifact from another machine/CI run
    identically to a live ``repro replay``.
    """
    rows = []
    for point in payload.get("points", []):
        drift = point.get("time_drift")
        rows.append(
            [
                str(point.get("point")),
                str(point.get("mode")),
                str(point.get("status")),
                str(point.get("failure") or "-"),
                "-" if drift is None else f"{drift:+.1%}",
                str(len(point.get("counter_drift", []))),
            ]
        )
    summary = payload.get("summary", {})
    band = payload.get("policy", {}).get("time_rel_band")
    lines = [
        format_table(
            ["point", "mode", "status", "failure", "time drift", "drifts"],
            rows,
            title=(
                f"Replay vs golden (machine "
                f"{str(payload.get('machine_digest'))[:12]}, "
                f"time band ±{band:.0%})"
                if band is not None
                else "Replay vs golden"
            ),
        ),
        "  "
        + "  ".join(
            f"{bucket} {summary.get(bucket, 0)}"
            for bucket in ("pass", "fail", "stale", "missing", "corrupt")
        ),
    ]
    for point in payload.get("points", []):
        for drift in point.get("counter_drift", []):
            lines.append(
                f"  COUNTER DRIFT {point.get('point')} ({point.get('mode')}) "
                f"{drift.get('field')}: golden={drift.get('golden')!r} "
                f"replay={drift.get('replay')!r}"
            )
    verdict = (
        "counters bit-identical"
        if payload.get("ok_counters")
        else "COUNTER DRIFT DETECTED"
    )
    lines.append(f"  gate: {verdict}")
    return "\n".join(lines)
