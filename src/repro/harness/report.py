"""Plain-text table/series formatting shared by experiments and benches."""

from __future__ import annotations

import math

__all__ = ["geomean", "format_table", "format_series", "speedup"]


def geomean(values):
    """Geometric mean (ignores non-positive values defensively)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_cycles, new_cycles):
    """Speedup of ``new`` over ``baseline`` (>1 means faster)."""
    return baseline_cycles / new_cycles if new_cycles else float("inf")


def format_table(headers, rows, title=None, floatfmt="{:.2f}"):
    """Render an aligned text table. ``rows`` hold str/int/float cells."""
    rendered = [
        [
            floatfmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered
        else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[c].rjust(widths[c]) for c in range(len(row))))
    return "\n".join(lines)


def format_series(name, xs, ys, xlabel="x", ylabel="y", floatfmt="{:.3f}"):
    """Render an (x, y) series as the rows a figure would plot."""
    rows = [[x, float(y)] for x, y in zip(xs, ys)]
    return format_table([xlabel, ylabel], rows, title=name, floatfmt=floatfmt)
