"""Append-only history for ``benchmarks/results/BENCH_*.json`` records.

The first three perf PRs each landed a ``BENCH_*.json``, and each suite
re-run *overwrote* its file — so the repository's perf trajectory silently
collapsed to whichever suite ran last, and nothing could ever compare runs
over time. This module is the fix: every BENCH file is now a versioned
envelope holding an append-only list of entries, each keyed by the git
commit and an ISO-8601 UTC date::

    {
      "version": 1,
      "bench": "compiled_kernels",
      "entries": [
        {"recorded": "2026-08-08T12:00:00Z", "git_sha": "99d2816...",
         "record": { ...the suite's measurement dict... }},
        ...
      ]
    }

:func:`append_bench_record` migrates a surviving legacy file (a bare
record dict) into the envelope on first touch, so history accumulated
before this schema is preserved as entry zero. Writers go through the
fsync-hardened atomic JSON writer shared with the checkpoint layer, so a
crash mid-append can never tear the accumulated history.

The golden/replay trend renderer (:mod:`repro.golden.trend`) reads these
files back through :func:`load_history` to build the per-figure perf
trajectory table.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

from repro.harness.checkpoint import _atomic_write_json

__all__ = [
    "FORMAT_VERSION",
    "append_bench_record",
    "bench_name_for",
    "current_git_sha",
    "iso_utc",
    "load_history",
]

#: Bumped when the envelope layout changes incompatibly.
FORMAT_VERSION = 1


def bench_name_for(path):
    """Logical bench name of a results file (``BENCH_foo.json`` -> ``foo``)."""
    stem = Path(path).stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def current_git_sha(cwd=None):
    """The checkout's HEAD commit, or ``"unknown"`` outside a git repo.

    Best-effort by design: bench records must still append when the suite
    runs from an exported tarball or a CI shallow clone without git.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def iso_utc(seconds=None):
    """ISO-8601 UTC stamp (second resolution) for entry/golden metadata."""
    # repro: noqa[nondet] recorded-at stamps are history metadata; entries
    # are keyed for humans/trend rendering, never digested or replayed
    seconds = time.time() if seconds is None else seconds
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(seconds))


def _empty_history(bench):
    return {"version": FORMAT_VERSION, "bench": bench, "entries": []}


def load_history(path):
    """The envelope stored at ``path`` (legacy bare records are wrapped).

    Returns an empty envelope for a missing file; raises ``ValueError``
    for files that are neither an envelope nor a legacy record (corrupt
    JSON), so callers can decide whether to skip or fail loudly.
    """
    path = Path(path)
    bench = bench_name_for(path)
    if not path.is_file():
        return _empty_history(bench)
    payload = json.loads(path.read_text("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: BENCH payload is not a JSON object")
    if "entries" in payload and isinstance(payload["entries"], list):
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: BENCH history version {payload.get('version')!r} "
                f"!= {FORMAT_VERSION}"
            )
        payload.setdefault("bench", bench)
        return payload
    # Legacy schema: the file *is* one bare measurement record, written by
    # a pre-history suite run. Wrap it as the oldest entry; its commit and
    # date were never recorded, which is exactly the loss this schema fixes.
    history = _empty_history(bench)
    history["entries"].append(
        {"recorded": None, "git_sha": None, "record": payload}
    )
    return history


def append_bench_record(path, record, git_sha=None, recorded=None):
    """Append one measurement ``record`` to the history at ``path``.

    Returns the updated envelope. ``git_sha``/``recorded`` default to the
    checkout's HEAD and the current UTC time; tests pass explicit values.
    A legacy bare-record file is migrated into the envelope first, so the
    pre-schema measurement survives as entry zero.
    """
    path = Path(path)
    try:
        history = load_history(path)
    except ValueError:
        # A corrupt history must not block recording fresh measurements;
        # start a new envelope (the corrupt bytes are unreadable anyway).
        history = _empty_history(bench_name_for(path))
    history["entries"].append(
        {
            "recorded": iso_utc() if recorded is None else recorded,
            "git_sha": current_git_sha(path.parent) if git_sha is None else git_sha,
            "record": record,
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_json(path, history)
    return history
