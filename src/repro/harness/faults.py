"""Fault-tolerant sweep execution: timeouts, retries, crash isolation.

The plain process-pool executor (:func:`repro.harness.parallel.run_sweep`)
is fast but brittle: one crashed worker raises ``BrokenProcessPool`` and
aborts the whole sweep, and a hung worker stalls it forever. For multi-hour
figure suites that is the wrong trade — partition-centric runtimes treat a
lost binning partition as recoverable, and so does this layer:

* every (workload, mode) point is dispatched individually with a bounded
  number of retries and exponential backoff between attempts,
* a per-point wall-clock **timeout** detects hung workers; the pool is torn
  down and rebuilt, and only the lost points are requeued,
* a **crashed** worker (``BrokenProcessPool``) likewise triggers a pool
  rebuild; in-flight points that were collateral damage are requeued
  without a retry penalty (the points whose futures surfaced the breakage
  are charged one attempt — the executor cannot tell which of them died),
* after ``max_pool_rebuilds`` rebuilds the executor stops trusting process
  pools and drains the remaining points **serially in-process** (no
  timeout enforcement there — a genuinely wedged simulation would also
  wedge the serial path, which is the best pure Python can do).

The sweep therefore *always returns*: :class:`SweepOutcome` carries every
completable point's counters (bit-identical to a serial run — each point
is an independent simulation) plus a structured :class:`PointFailure` list
for the rest, instead of raising.

Beyond worker faults, this layer also survives faults of the *parent*:

* a :class:`GracefulShutdown` latch turns SIGINT/SIGTERM into a cooperative
  stop — the dispatch loop stops submitting, drains in-flight points
  against ``FaultPolicy.drain_seconds``, flushes the checkpoint journal
  and telemetry, and returns a partial :class:`SweepOutcome` marked
  ``interrupted`` instead of dying with a stack trace,
* a :class:`~repro.harness.checkpoint.SweepCheckpoint` journals every
  completed point's counters so a killed sweep (``SIGTERM`` *or*
  ``kill -9``) resumes by re-running only the unfinished points,
* a **heartbeat** channel (``FaultPolicy.heartbeat_timeout``) lets the
  watchdog distinguish a *stalled* worker (point started, then went
  silent) from a merely *slow* point long before the blanket per-point
  timeout: workers touch a per-point heartbeat file at point start and at
  every phase boundary, and a file whose mtime goes quiet trips the same
  teardown path as a timeout, recorded as ``stall_detected`` telemetry.

Deterministic fault injection (tests, chaos drills) is driven by a
:class:`FaultInjector` — or the ``REPRO_FAULT_INJECT`` environment
variable — which kills (``SIGKILL``) or stalls chosen points *inside the
worker process*, optionally only on their first attempt (``state_dir``
markers make "crash once, then succeed" reproducible across the rebuilt
pools). Injection never fires in-process, so the serial fallback and
``jobs=1`` paths cannot take down the caller.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro._util import check_positive
from repro.harness import knobs
from repro.harness.telemetry import NULL_TELEMETRY

__all__ = [
    "FaultPolicy",
    "FaultInjector",
    "GracefulShutdown",
    "PointFailure",
    "SweepInterrupted",
    "SweepOutcome",
    "run_sweep_resilient",
]

#: Poll interval of the dispatch loop (seconds).
_TICK = 0.05

#: Exit signal used by the kill injector (mirrors an OOM-killed worker).
_KILL_SIGNAL = signal.SIGKILL if hasattr(signal, "SIGKILL") else signal.SIGTERM


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of the fault-tolerant executor.

    ``timeout``
        Per-point wall-clock budget in seconds (None disables hang
        detection). Measured from dispatch; because at most ``jobs``
        points are in flight, a dispatched point is running immediately.
    ``retries``
        Extra attempts after the first (total attempts = ``retries + 1``).
    ``backoff``
        Base delay before a retry; attempt ``k`` waits ``backoff * 2**(k-1)``.
    ``max_pool_rebuilds``
        Pool rebuilds tolerated before falling back to in-process serial
        execution of the remaining points.
    ``heartbeat_timeout``
        Seconds a dispatched point's heartbeat file may go quiet before the
        watchdog declares the worker stalled (None disables the channel).
        Workers beat at point start and every phase boundary, so this can
        be far tighter than ``timeout``: a slow point keeps beating, a
        stalled one goes silent. Only armed once the point's first beat
        has landed — a worker still booting is not a stall.
    ``drain_seconds``
        Grace period a signal-driven shutdown waits for in-flight points
        to finish before cancelling them (they stay unjournaled and are
        re-run on resume).
    """

    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.25
    max_pool_rebuilds: int = 3
    heartbeat_timeout: float | None = None
    drain_seconds: float = 5.0


@dataclass(frozen=True)
class FaultInjector:
    """Deterministically kill or stall chosen sweep points in workers.

    ``kill`` and ``stall`` hold ``"<cache_key>|<mode>"`` tokens. With a
    ``state_dir``, each fault fires exactly once per directory (atomic
    ``O_EXCL`` marker files shared by every worker process), so a killed
    point's retry succeeds; without one, the fault fires on every attempt.

    ``torn`` extends injection to the *service layer*: it holds journal
    names (the sweep service's job journal registers as ``"jobs"``) whose
    next append should be torn mid-write, exercising the
    seal-and-rewrite recovery of :class:`repro.service.journal.JobJournal`.
    """

    kill: frozenset = frozenset()
    stall: frozenset = frozenset()
    torn: frozenset = frozenset()
    stall_seconds: float = 3600.0
    state_dir: str = ""

    @staticmethod
    def token(cache_key, mode):
        """The injection token addressing one sweep point."""
        return f"{cache_key}|{mode}"

    @classmethod
    def from_env(cls, environ=None):
        """Build from ``REPRO_FAULT_INJECT``, or None when unset.

        Format: semicolon-separated directives, e.g.
        ``kill=pagerank:KRON:13|baseline;stall=spmv:POIS:13|cobra;``
        ``stall_seconds=60;state=/tmp/faults``. ``kill``/``stall`` take
        comma-separated point tokens; ``torn`` takes comma-separated
        journal names (``torn=jobs`` tears the sweep service's next job
        journal append).
        """
        raw = (knobs.read("REPRO_FAULT_INJECT", environ) or "").strip()
        if not raw:
            return None
        kill, stall, torn = set(), set(), set()
        stall_seconds = 3600.0
        state_dir = ""
        for directive in raw.split(";"):
            directive = directive.strip()
            if not directive:
                continue
            name, _, value = directive.partition("=")
            name = name.strip()
            if name == "kill":
                kill.update(t for t in value.split(",") if t)
            elif name == "stall":
                stall.update(t for t in value.split(",") if t)
            elif name == "torn":
                torn.update(t for t in value.split(",") if t)
            elif name == "stall_seconds":
                stall_seconds = float(value)
            elif name == "state":
                state_dir = value.strip()
            else:
                raise ValueError(
                    f"unknown REPRO_FAULT_INJECT directive {name!r}"
                )
        return cls(
            kill=frozenset(kill),
            stall=frozenset(stall),
            torn=frozenset(torn),
            stall_seconds=stall_seconds,
            state_dir=state_dir,
        )

    def _arm(self, kind, token):
        """True when this fault should fire (once per state_dir marker)."""
        if not self.state_dir:
            return True
        safe = "".join(c if c.isalnum() else "_" for c in token)
        directory = Path(self.state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                directory / f"{kind}-{safe}", os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def maybe_inject(self, cache_key, mode):
        """Called inside the worker before simulating a point."""
        token = self.token(cache_key, mode)
        if token in self.kill and self._arm("kill", token):
            os.kill(os.getpid(), _KILL_SIGNAL)
        if token in self.stall and self._arm("stall", token):
            time.sleep(self.stall_seconds)

    def maybe_tear(self, journal):
        """Called by journal writers before an append; True = tear it.

        ``journal`` is the journal's registered name, not a point token.
        With a ``state_dir`` the tear fires once per directory, so exactly
        one append exercises the writer's seal-and-rewrite recovery path.
        """
        return journal in self.torn and self._arm("torn", journal)


@dataclass(frozen=True)
class PointFailure:
    """One sweep point that exhausted its attempts."""

    index: int
    point: str
    mode: str
    reason: str
    attempts: int


@dataclass
class SweepOutcome:
    """Everything a fault-tolerant sweep produced.

    ``results`` is in input order with ``None`` at failed points;
    ``failures`` explains each ``None`` — except under ``interrupted``,
    where remaining ``None`` points were simply never run (a graceful
    shutdown stopped the sweep) and ``run_id`` names the checkpoint to
    resume.
    """

    results: list
    failures: list = field(default_factory=list)
    interrupted: bool = False
    run_id: str | None = None

    @property
    def completed(self):
        """Number of points that produced counters."""
        return sum(result is not None for result in self.results)

    @property
    def ok(self):
        """True when every point completed."""
        return not self.failures and not self.interrupted


class SweepInterrupted(RuntimeError):
    """A sweep stopped early on SIGINT/SIGTERM.

    Raised by callers with a list-of-counters contract
    (:meth:`Runner.run_many`, the experiment drivers) that cannot return a
    partial result; carries the partial :class:`SweepOutcome`, so every
    completed (and journaled) point is still reachable.
    """

    def __init__(self, outcome):
        self.outcome = outcome
        self.run_id = outcome.run_id
        message = (
            f"sweep interrupted with {outcome.completed}/"
            f"{len(outcome.results)} points complete"
        )
        if outcome.run_id:
            message += f"; resume with `repro resume {outcome.run_id}`"
        super().__init__(message)


class GracefulShutdown:
    """Cooperative SIGINT/SIGTERM latch for the sweep dispatch loop.

    ``install()`` (a no-op outside the main thread, where signal handlers
    cannot be set) replaces the handlers with one that only sets
    :attr:`requested`; the dispatch loop notices, stops submitting, drains
    in-flight points, and returns a partial outcome. A *second* signal
    raises ``KeyboardInterrupt`` — the escape hatch when the drain itself
    wedges.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self):
        self.requested = False
        self.signum = None
        self._previous = {}

    def install(self):
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in self.SIGNALS:
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):
                pass
        return self

    def restore(self):
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()

    def _handle(self, signum, frame):
        if self.requested:
            raise KeyboardInterrupt
        self.requested = True
        self.signum = signum

    def __enter__(self):
        return self.install()

    def __exit__(self, *exc):
        self.restore()


def _beat(path):
    """Touch a heartbeat file (best-effort; never fails the simulation)."""
    if path is None:
        return
    try:
        fd = os.open(path, os.O_CREAT | os.O_WRONLY, 0o644)
        os.close(fd)
        os.utime(path, None)
    except OSError:
        pass


def _clear_beat(path):
    if path is None:
        return
    try:
        os.unlink(path)
    except OSError:
        pass


class _HeartbeatTelemetry:
    """Worker-side telemetry wrapper that beats on every runner event.

    The runner emits at phase boundaries (``phase_timed``), engine
    selection, and cache activity — frequent enough that a healthy point's
    heartbeat file keeps a fresh mtime while a wedged one goes quiet.
    ``enabled`` is True so the runner actually produces those events; the
    wrapped sink still decides whether they are persisted.
    """

    enabled = True

    def __init__(self, inner, path):
        self._inner = inner
        self._path = path

    def emit(self, event, **fields):
        _beat(self._path)
        if self._inner is not None and self._inner.enabled:
            self._inner.emit(event, **fields)

    def emit_timed(self, event, duration_s, **fields):
        _beat(self._path)
        if self._inner is not None and self._inner.enabled:
            self._inner.emit_timed(event, duration_s, **fields)

    def flush(self):
        if self._inner is not None:
            self._inner.flush()

    def close(self):
        if self._inner is not None:
            self._inner.close()


def _pool_worker_init():
    """Reset signal dispositions in freshly spawned/forked pool workers.

    Workers forked while a :class:`GracefulShutdown` latch is installed
    would inherit its SIGTERM/SIGINT handler — a flag-setting no-op in the
    worker — making them unkillable by ``process.terminate()`` and leaving
    a stalled worker alive past parent exit. SIGTERM goes back to the
    default (die, so teardown works); SIGINT is ignored (a terminal Ctrl-C
    signals the whole foreground group, and the *parent* owns the drain —
    workers must keep running until it finishes or tears them down).
    """
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass


def _point_worker(spec, task, injector, heartbeat_path=None):
    """Simulate one (cache_key, mode) point in a worker process."""
    from repro.harness.runner import Runner
    from repro.workloads.registry import resolve_point

    cache_key, mode, use_cache = task
    # Beat before injection: an injected stall then looks exactly like a
    # real wedged simulation (point started, heartbeat frozen).
    _beat(heartbeat_path)
    if injector is not None:
        injector.maybe_inject(cache_key, mode)
    runner = Runner.from_spec(spec)
    if heartbeat_path is not None:
        runner.telemetry = _HeartbeatTelemetry(
            runner.telemetry, heartbeat_path
        )
    workload = resolve_point(cache_key)
    return runner.run(workload, mode, use_cache=use_cache)


def _terminate_pool(pool):
    """Hard-stop a (possibly hung) process pool.

    Escalates from SIGTERM to SIGKILL: a worker wedged in uninterruptible
    state (or one that somehow ignores SIGTERM) must still die, or the
    executor's management thread would wait on its result forever and hang
    the interpreter at exit.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    deadline = time.monotonic() + 2.0
    for process in processes:
        try:
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
        except Exception:
            pass


def run_sweep_resilient(
    runner,
    points,
    jobs,
    use_cache=True,
    policy=None,
    telemetry=None,
    injector=None,
    checkpoint=None,
    shutdown=None,
    handle_signals=False,
):
    """Run a sweep that survives crashed and hung workers — and the parent.

    Like :func:`repro.harness.parallel.run_sweep` but never raises for a
    point's failure: returns a :class:`SweepOutcome` whose ``results`` are
    in input order (``None`` where a point failed) with completed results
    folded back into ``runner``'s in-memory memo. ``injector`` defaults to
    :meth:`FaultInjector.from_env` so tests and chaos drills can steer the
    recovery paths without touching call sites.

    ``checkpoint`` (a :class:`~repro.harness.checkpoint.SweepCheckpoint`)
    splices previously journaled counters back bit-identically — only the
    unfinished points are dispatched — and journals every new completion.
    ``handle_signals=True`` installs a :class:`GracefulShutdown` latch for
    the duration of the sweep (``shutdown`` supplies an external latch
    instead): on SIGINT/SIGTERM the sweep stops submitting, drains
    in-flight points for ``policy.drain_seconds``, flushes the journal and
    telemetry, and returns a partial outcome with ``interrupted=True``.
    """
    check_positive("jobs", jobs)
    policy = policy or FaultPolicy()
    if telemetry is None:
        telemetry = getattr(runner, "telemetry", NULL_TELEMETRY)
    if injector is None:
        injector = FaultInjector.from_env()
    points = list(points)
    tasks = []
    for workload, mode in points:
        cache_key = getattr(workload, "cache_key", None)
        if cache_key is None:
            raise ValueError(
                f"workload {workload.name!r} has no cache_key; the sweep "
                "executor rebuilds workloads from keys in worker processes"
            )
        tasks.append((cache_key, mode, use_cache))
    results = [None] * len(points)
    failures = []
    restored = {}
    if checkpoint is not None:
        restored = checkpoint.completed_counters()
        for index, counters in restored.items():
            results[index] = counters
        if restored:
            telemetry.emit(
                "points_restored",
                run_id=checkpoint.run_id,
                restored=len(restored),
            )
    todo = [index for index, result in enumerate(results) if result is None]
    record = checkpoint.record if checkpoint is not None else None
    own_shutdown = None
    if shutdown is None and handle_signals:
        shutdown = own_shutdown = GracefulShutdown().install()
    hb_dir = None
    hb_tmp = None
    if policy.heartbeat_timeout is not None:
        if checkpoint is not None:
            hb_dir = checkpoint.run_dir / "heartbeats"
        else:
            hb_dir = hb_tmp = Path(tempfile.mkdtemp(prefix="repro-hb-"))
        hb_dir.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    telemetry.emit(
        "sweep_started",
        points=len(points),
        jobs=jobs,
        timeout=policy.timeout,
        retries=policy.retries,
        executor="resilient",
        restored=len(restored),
        run_id=checkpoint.run_id if checkpoint is not None else None,
    )
    interrupted = False
    try:
        pool_jobs = min(jobs, len(todo))
        if pool_jobs <= 1:
            pending = deque((index, 1) for index in todo)
        else:
            pending, interrupted = _pooled_phase(
                runner, tasks, todo, results, failures, pool_jobs, policy,
                telemetry, injector, shutdown, record, hb_dir,
            )
        if not interrupted:
            interrupted = _serial_phase(
                runner, points, tasks, results, failures, pending, policy,
                telemetry, shutdown, record,
            )
    finally:
        if own_shutdown is not None:
            own_shutdown.restore()
        if hb_tmp is not None:
            shutil.rmtree(hb_tmp, ignore_errors=True)
    for (cache_key, mode, _), counters in zip(tasks, results):
        if counters is not None:
            runner._store((cache_key, mode), counters, persist=False)
    if checkpoint is not None:
        checkpoint.flush()
        if interrupted:
            checkpoint.mark_interrupted()
        elif failures:
            checkpoint.mark_failed()
        else:
            checkpoint.mark_completed()
    telemetry.emit_timed(
        "sweep_completed",
        time.monotonic() - started,
        completed=sum(r is not None for r in results),
        failed=len(failures),
        interrupted=interrupted,
    )
    if interrupted:
        telemetry.flush()
    return SweepOutcome(
        results=results,
        failures=failures,
        interrupted=interrupted,
        run_id=checkpoint.run_id if checkpoint is not None else None,
    )


def _pooled_phase(
    runner, tasks, todo, results, failures, jobs, policy, telemetry,
    injector, shutdown=None, record=None, hb_dir=None,
):
    """Process-pool dispatch loop; returns ``(left_for_serial, interrupted)``.

    A crashed worker breaks the whole pool, and ``concurrent.futures``
    cannot say which in-flight point the dead worker was running — every
    lost future raises ``BrokenProcessPool``. Charging them all a retry
    would let one poisoned point starve its innocent pool-mates, so lost
    points instead go on **probation**: each re-runs *solo* in the fresh
    pool, where a second crash implicates exactly that point (and costs it
    an attempt), while a success exonerates it at the price of one
    serialized run. Hung points need no probation — the per-future timeout
    already names them — so only their innocent pool-mates are requeued
    unpenalized after the teardown.

    ``shutdown.requested`` flips the loop into **drain** mode: no further
    submissions, in-flight points get ``policy.drain_seconds`` to finish
    (their results are still journaled via ``record``), then the pool is
    torn down and the phase reports ``interrupted=True`` — the unfinished
    points simply stay out of the journal for a later resume. ``hb_dir``
    enables the heartbeat watchdog (see ``FaultPolicy.heartbeat_timeout``).
    """
    spec = runner.spawn_spec()
    # Queue entries: (index, attempt, earliest dispatch time). ``probation``
    # points are dispatched solo; ``pending`` points fill the whole pool.
    pending = deque((index, 1, 0.0) for index in todo)
    probation = deque()
    inflight = {}
    probing = False  # the single in-flight future is a probation run
    rebuilds = 0
    draining = False
    drain_deadline = 0.0
    pool = ProcessPoolExecutor(
        max_workers=jobs, initializer=_pool_worker_init
    )

    def retry_or_fail(index, attempt, reason, queue):
        cache_key, mode, _ = tasks[index]
        if attempt <= policy.retries:
            delay = policy.backoff * (2 ** (attempt - 1))
            queue.append((index, attempt + 1, time.monotonic() + delay))
            telemetry.emit(
                "point_retried",
                point=cache_key,
                mode=mode,
                attempt=attempt,
                reason=reason,
                delay=delay,
            )
        else:
            failures.append(
                PointFailure(
                    index=index,
                    point=cache_key,
                    mode=mode,
                    reason=reason,
                    attempts=attempt,
                )
            )
            telemetry.emit(
                "point_failed",
                point=cache_key,
                mode=mode,
                attempts=attempt,
                reason=reason,
            )

    def requeue_unpenalized(index, attempt, reason, queue):
        """Reschedule an innocent casualty without spending a retry."""
        cache_key, mode, _ = tasks[index]
        queue.append((index, attempt, 0.0))
        telemetry.emit(
            "point_retried",
            point=cache_key,
            mode=mode,
            attempt=attempt,
            reason=reason,
            delay=0.0,
        )

    def submit(entry, solo):
        nonlocal probing
        index, attempt, _ = entry
        hb_path = (
            str(hb_dir / f"{index}-{attempt}") if hb_dir is not None else None
        )
        try:
            future = pool.submit(
                _point_worker, spec, tasks[index], injector, hb_path
            )
        except BrokenExecutor:
            return False
        inflight[future] = (index, attempt, time.monotonic(), hb_path)
        probing = solo
        cache_key, mode, _ = tasks[index]
        telemetry.emit(
            "point_scheduled",
            point=cache_key,
            mode=mode,
            attempt=attempt,
            probation=solo,
        )
        return True

    try:
        while pending or probation or inflight:
            now = time.monotonic()
            if shutdown is not None and shutdown.requested and not draining:
                draining = True
                drain_deadline = now + max(0.0, policy.drain_seconds)
                telemetry.emit(
                    "sweep_interrupted",
                    signal=shutdown.signum,
                    inflight=len(inflight),
                    queued=len(pending) + len(probation),
                )
            broken = False
            if draining:
                if not inflight:
                    break  # drained; queued points stay for resume
                if now >= drain_deadline:
                    telemetry.emit("drain_timeout", cancelled=len(inflight))
                    for _, _, _, hb_path in inflight.values():
                        _clear_beat(hb_path)
                    inflight.clear()
                    break
            elif probation:
                # Probation runs are solo: wait out the pool, then dispatch
                # exactly one suspect.
                if not inflight:
                    index, attempt, ready_at = probation.popleft()
                    if ready_at > now:
                        probation.appendleft((index, attempt, ready_at))
                        time.sleep(_TICK)
                    elif not submit((index, attempt, ready_at), solo=True):
                        probation.appendleft((index, attempt, 0.0))
                        broken = True
            elif not probing:
                deferred = []
                while pending and len(inflight) < jobs and not broken:
                    entry = pending.popleft()
                    if entry[2] > now:
                        deferred.append(entry)
                    elif not submit(entry, solo=False):
                        pending.appendleft((entry[0], entry[1], 0.0))
                        broken = True
                pending.extend(deferred)
            if not inflight and not broken:
                time.sleep(_TICK)  # every queued point is in backoff
                continue
            done = set()
            if inflight:
                done, _ = wait(
                    set(inflight), timeout=_TICK, return_when=FIRST_COMPLETED
                )
            now = time.monotonic()
            was_probe = probing
            for future in done:
                index, attempt, dispatched, hb_path = inflight.pop(future)
                _clear_beat(hb_path)
                cache_key, mode, _ = tasks[index]
                try:
                    counters = future.result()
                except BrokenExecutor:
                    broken = True
                    if draining:
                        # Stay unfinished; resume re-runs it.
                        pending.append((index, attempt, 0.0))
                    elif was_probe:
                        # Solo run: the crash is unambiguously this point's.
                        retry_or_fail(
                            index, attempt, "worker crashed", probation
                        )
                    else:
                        # Collateral suspects re-run solo, unpenalized.
                        requeue_unpenalized(
                            index,
                            attempt,
                            "pool lost (crashed peer); probation re-run",
                            probation,
                        )
                except Exception as exc:
                    if draining:
                        pending.append((index, attempt, 0.0))
                    else:
                        retry_or_fail(
                            index,
                            attempt,
                            f"{type(exc).__name__}: {exc}",
                            probation if was_probe else pending,
                        )
                else:
                    results[index] = counters
                    if record is not None:
                        record(index, counters)
                    telemetry.emit_timed(
                        "point_completed",
                        now - dispatched,
                        point=cache_key,
                        mode=mode,
                        attempt=attempt,
                    )
            if not inflight:
                probing = False
            if draining:
                continue  # no teardown/retry bookkeeping while draining
            hung = []
            if policy.timeout is not None:
                hung = [
                    future
                    for future, (_, _, dispatched, _) in inflight.items()
                    if now - dispatched > policy.timeout
                ]
            stalled = []
            if policy.heartbeat_timeout is not None and hb_dir is not None:
                wall_now = time.time()
                for future, entry in inflight.items():
                    index, attempt, dispatched, hb_path = entry
                    if future in hung or hb_path is None or future.done():
                        continue
                    try:
                        quiet = wall_now - os.stat(hb_path).st_mtime
                    except OSError:
                        # No first beat yet: the worker is still booting
                        # or queued; the blanket timeout covers it.
                        continue
                    if quiet > policy.heartbeat_timeout:
                        stalled.append(future)
                        cache_key, mode, _ = tasks[index]
                        telemetry.emit(
                            "stall_detected",
                            point=cache_key,
                            mode=mode,
                            attempt=attempt,
                            quiet_seconds=quiet,
                        )
            if not (broken or hung or stalled):
                continue
            # The pool is compromised. Hung and stalled points are
            # individually identified (timeout / frozen heartbeat), so they
            # are charged an attempt directly; the other in-flight points
            # are innocent — crashes send them to probation, teardowns for
            # a hang requeue them.
            for future in hung:
                index, attempt, _, hb_path = inflight.pop(future)
                _clear_beat(hb_path)
                retry_or_fail(
                    index,
                    attempt,
                    f"timeout after {policy.timeout:.1f}s",
                    probation if probing else pending,
                )
            for future in stalled:
                index, attempt, _, hb_path = inflight.pop(future)
                _clear_beat(hb_path)
                retry_or_fail(
                    index,
                    attempt,
                    (
                        "stalled: no heartbeat within "
                        f"{policy.heartbeat_timeout:.1f}s"
                    ),
                    probation if probing else pending,
                )
            lost = len(inflight)
            for index, attempt, _, hb_path in inflight.values():
                _clear_beat(hb_path)
                if broken:
                    requeue_unpenalized(
                        index,
                        attempt,
                        "pool lost (crashed peer); probation re-run",
                        probation,
                    )
                else:
                    requeue_unpenalized(
                        index, attempt, "pool torn down (hung peer)", pending
                    )
            inflight.clear()
            probing = False
            _terminate_pool(pool)
            rebuilds += 1
            telemetry.emit(
                "pool_rebuilt",
                rebuilds=rebuilds,
                lost_points=lost,
                hung=len(hung),
                stalled=len(stalled),
                crashed=broken,
            )
            if rebuilds > policy.max_pool_rebuilds:
                remaining = list(probation) + list(pending)
                telemetry.emit("serial_fallback", remaining=len(remaining))
                return (
                    deque((index, attempt) for index, attempt, _ in remaining),
                    False,
                )
            pool = ProcessPoolExecutor(
                max_workers=jobs, initializer=_pool_worker_init
            )
    finally:
        _terminate_pool(pool)
    return deque(), draining


def _serial_phase(
    runner, points, tasks, results, failures, pending, policy, telemetry,
    shutdown=None, record=None,
):
    """In-process drain of points the pooled phase gave up on.

    No timeout is enforceable here; fault injection never fires in-process,
    so this path cannot take down the caller short of a genuine bug in the
    simulation itself (which the serial executor would hit identically).
    Returns True when a shutdown request stopped the drain early (the
    remaining points stay unfinished for a later resume).
    """
    pending = list(pending)
    for position, (index, attempt) in enumerate(pending):
        if shutdown is not None and shutdown.requested:
            telemetry.emit(
                "sweep_interrupted",
                signal=shutdown.signum,
                inflight=0,
                queued=len(pending) - position,
            )
            return True
        cache_key, mode, use_cache = tasks[index]
        workload, _ = points[index]
        while True:
            dispatched = time.monotonic()
            telemetry.emit(
                "point_scheduled", point=cache_key, mode=mode, attempt=attempt
            )
            try:
                results[index] = runner.run(workload, mode, use_cache=use_cache)
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
                if attempt <= policy.retries:
                    telemetry.emit(
                        "point_retried",
                        point=cache_key,
                        mode=mode,
                        attempt=attempt,
                        reason=reason,
                        delay=0.0,
                    )
                    attempt += 1
                    continue
                failures.append(
                    PointFailure(
                        index=index,
                        point=cache_key,
                        mode=mode,
                        reason=reason,
                        attempts=attempt,
                    )
                )
                telemetry.emit(
                    "point_failed",
                    point=cache_key,
                    mode=mode,
                    attempts=attempt,
                    reason=reason,
                )
            else:
                if record is not None:
                    record(index, results[index])
                telemetry.emit_timed(
                    "point_completed",
                    time.monotonic() - dispatched,
                    point=cache_key,
                    mode=mode,
                    attempt=attempt,
                )
            break
    return False
