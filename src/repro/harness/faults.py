"""Fault-tolerant sweep execution: timeouts, retries, crash isolation.

The plain process-pool executor (:func:`repro.harness.parallel.run_sweep`)
is fast but brittle: one crashed worker raises ``BrokenProcessPool`` and
aborts the whole sweep, and a hung worker stalls it forever. For multi-hour
figure suites that is the wrong trade — partition-centric runtimes treat a
lost binning partition as recoverable, and so does this layer:

* every (workload, mode) point is dispatched individually with a bounded
  number of retries and exponential backoff between attempts,
* a per-point wall-clock **timeout** detects hung workers; the pool is torn
  down and rebuilt, and only the lost points are requeued,
* a **crashed** worker (``BrokenProcessPool``) likewise triggers a pool
  rebuild; in-flight points that were collateral damage are requeued
  without a retry penalty (the points whose futures surfaced the breakage
  are charged one attempt — the executor cannot tell which of them died),
* after ``max_pool_rebuilds`` rebuilds the executor stops trusting process
  pools and drains the remaining points **serially in-process** (no
  timeout enforcement there — a genuinely wedged simulation would also
  wedge the serial path, which is the best pure Python can do).

The sweep therefore *always returns*: :class:`SweepOutcome` carries every
completable point's counters (bit-identical to a serial run — each point
is an independent simulation) plus a structured :class:`PointFailure` list
for the rest, instead of raising.

Deterministic fault injection (tests, chaos drills) is driven by a
:class:`FaultInjector` — or the ``REPRO_FAULT_INJECT`` environment
variable — which kills (``SIGKILL``) or stalls chosen points *inside the
worker process*, optionally only on their first attempt (``state_dir``
markers make "crash once, then succeed" reproducible across the rebuilt
pools). Injection never fires in-process, so the serial fallback and
``jobs=1`` paths cannot take down the caller.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro._util import check_positive
from repro.harness.telemetry import NULL_TELEMETRY

__all__ = [
    "FaultPolicy",
    "FaultInjector",
    "PointFailure",
    "SweepOutcome",
    "run_sweep_resilient",
]

#: Poll interval of the dispatch loop (seconds).
_TICK = 0.05

#: Exit signal used by the kill injector (mirrors an OOM-killed worker).
_KILL_SIGNAL = signal.SIGKILL if hasattr(signal, "SIGKILL") else signal.SIGTERM


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of the fault-tolerant executor.

    ``timeout``
        Per-point wall-clock budget in seconds (None disables hang
        detection). Measured from dispatch; because at most ``jobs``
        points are in flight, a dispatched point is running immediately.
    ``retries``
        Extra attempts after the first (total attempts = ``retries + 1``).
    ``backoff``
        Base delay before a retry; attempt ``k`` waits ``backoff * 2**(k-1)``.
    ``max_pool_rebuilds``
        Pool rebuilds tolerated before falling back to in-process serial
        execution of the remaining points.
    """

    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.25
    max_pool_rebuilds: int = 3


@dataclass(frozen=True)
class FaultInjector:
    """Deterministically kill or stall chosen sweep points in workers.

    ``kill`` and ``stall`` hold ``"<cache_key>|<mode>"`` tokens. With a
    ``state_dir``, each fault fires exactly once per directory (atomic
    ``O_EXCL`` marker files shared by every worker process), so a killed
    point's retry succeeds; without one, the fault fires on every attempt.
    """

    kill: frozenset = frozenset()
    stall: frozenset = frozenset()
    stall_seconds: float = 3600.0
    state_dir: str = ""

    @staticmethod
    def token(cache_key, mode):
        """The injection token addressing one sweep point."""
        return f"{cache_key}|{mode}"

    @classmethod
    def from_env(cls, environ=None):
        """Build from ``REPRO_FAULT_INJECT``, or None when unset.

        Format: semicolon-separated directives, e.g.
        ``kill=pagerank:KRON:13|baseline;stall=spmv:POIS:13|cobra;``
        ``stall_seconds=60;state=/tmp/faults``. ``kill``/``stall`` take
        comma-separated tokens.
        """
        environ = os.environ if environ is None else environ
        raw = environ.get("REPRO_FAULT_INJECT", "").strip()
        if not raw:
            return None
        kill, stall = set(), set()
        stall_seconds = 3600.0
        state_dir = ""
        for directive in raw.split(";"):
            directive = directive.strip()
            if not directive:
                continue
            name, _, value = directive.partition("=")
            name = name.strip()
            if name == "kill":
                kill.update(t for t in value.split(",") if t)
            elif name == "stall":
                stall.update(t for t in value.split(",") if t)
            elif name == "stall_seconds":
                stall_seconds = float(value)
            elif name == "state":
                state_dir = value.strip()
            else:
                raise ValueError(
                    f"unknown REPRO_FAULT_INJECT directive {name!r}"
                )
        return cls(
            kill=frozenset(kill),
            stall=frozenset(stall),
            stall_seconds=stall_seconds,
            state_dir=state_dir,
        )

    def _arm(self, kind, token):
        """True when this fault should fire (once per state_dir marker)."""
        if not self.state_dir:
            return True
        safe = "".join(c if c.isalnum() else "_" for c in token)
        directory = Path(self.state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                directory / f"{kind}-{safe}", os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def maybe_inject(self, cache_key, mode):
        """Called inside the worker before simulating a point."""
        token = self.token(cache_key, mode)
        if token in self.kill and self._arm("kill", token):
            os.kill(os.getpid(), _KILL_SIGNAL)
        if token in self.stall and self._arm("stall", token):
            time.sleep(self.stall_seconds)


@dataclass(frozen=True)
class PointFailure:
    """One sweep point that exhausted its attempts."""

    index: int
    point: str
    mode: str
    reason: str
    attempts: int


@dataclass
class SweepOutcome:
    """Everything a fault-tolerant sweep produced.

    ``results`` is in input order with ``None`` at failed points;
    ``failures`` explains each ``None``.
    """

    results: list
    failures: list = field(default_factory=list)

    @property
    def completed(self):
        """Number of points that produced counters."""
        return sum(result is not None for result in self.results)

    @property
    def ok(self):
        """True when every point completed."""
        return not self.failures


def _point_worker(spec, task, injector):
    """Simulate one (cache_key, mode) point in a worker process."""
    from repro.harness.inputs import make_workload
    from repro.harness.runner import Runner

    cache_key, mode, use_cache = task
    if injector is not None:
        injector.maybe_inject(cache_key, mode)
    runner = Runner.from_spec(spec)
    workload_name, input_name, scale = cache_key.split(":")
    workload = make_workload(workload_name, input_name, int(scale))
    return runner.run(workload, mode, use_cache=use_cache)


def _terminate_pool(pool):
    """Hard-stop a (possibly hung) process pool without waiting."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def run_sweep_resilient(
    runner,
    points,
    jobs,
    use_cache=True,
    policy=None,
    telemetry=None,
    injector=None,
):
    """Run a sweep that survives crashed and hung workers.

    Like :func:`repro.harness.parallel.run_sweep` but never raises for a
    point's failure: returns a :class:`SweepOutcome` whose ``results`` are
    in input order (``None`` where a point failed) with completed results
    folded back into ``runner``'s in-memory memo. ``injector`` defaults to
    :meth:`FaultInjector.from_env` so tests and chaos drills can steer the
    recovery paths without touching call sites.
    """
    check_positive("jobs", jobs)
    policy = policy or FaultPolicy()
    if telemetry is None:
        telemetry = getattr(runner, "telemetry", NULL_TELEMETRY)
    if injector is None:
        injector = FaultInjector.from_env()
    points = list(points)
    tasks = []
    for workload, mode in points:
        cache_key = getattr(workload, "cache_key", None)
        if cache_key is None:
            raise ValueError(
                f"workload {workload.name!r} has no cache_key; the sweep "
                "executor rebuilds workloads from keys in worker processes"
            )
        tasks.append((cache_key, mode, use_cache))
    results = [None] * len(points)
    failures = []
    started = time.monotonic()
    telemetry.emit(
        "sweep_started",
        points=len(points),
        jobs=jobs,
        timeout=policy.timeout,
        retries=policy.retries,
        executor="resilient",
    )
    jobs = min(jobs, len(points))
    if jobs <= 1:
        pending = deque((index, 1) for index in range(len(points)))
    else:
        pending = _pooled_phase(
            runner, points, tasks, results, failures, jobs, policy,
            telemetry, injector,
        )
    _serial_phase(
        runner, points, tasks, results, failures, pending, policy, telemetry
    )
    for (cache_key, mode, _), counters in zip(tasks, results):
        if counters is not None:
            runner._store((cache_key, mode), counters, persist=False)
    telemetry.emit(
        "sweep_completed",
        completed=sum(r is not None for r in results),
        failed=len(failures),
        seconds=time.monotonic() - started,
    )
    return SweepOutcome(results=results, failures=failures)


def _pooled_phase(
    runner, points, tasks, results, failures, jobs, policy, telemetry,
    injector,
):
    """Process-pool dispatch loop; returns points left for the serial phase.

    A crashed worker breaks the whole pool, and ``concurrent.futures``
    cannot say which in-flight point the dead worker was running — every
    lost future raises ``BrokenProcessPool``. Charging them all a retry
    would let one poisoned point starve its innocent pool-mates, so lost
    points instead go on **probation**: each re-runs *solo* in the fresh
    pool, where a second crash implicates exactly that point (and costs it
    an attempt), while a success exonerates it at the price of one
    serialized run. Hung points need no probation — the per-future timeout
    already names them — so only their innocent pool-mates are requeued
    unpenalized after the teardown.
    """
    spec = runner.spawn_spec()
    # Queue entries: (index, attempt, earliest dispatch time). ``probation``
    # points are dispatched solo; ``pending`` points fill the whole pool.
    pending = deque((index, 1, 0.0) for index in range(len(tasks)))
    probation = deque()
    inflight = {}
    probing = False  # the single in-flight future is a probation run
    rebuilds = 0
    pool = ProcessPoolExecutor(max_workers=jobs)

    def retry_or_fail(index, attempt, reason, queue):
        cache_key, mode, _ = tasks[index]
        if attempt <= policy.retries:
            delay = policy.backoff * (2 ** (attempt - 1))
            queue.append((index, attempt + 1, time.monotonic() + delay))
            telemetry.emit(
                "point_retried",
                point=cache_key,
                mode=mode,
                attempt=attempt,
                reason=reason,
                delay=delay,
            )
        else:
            failures.append(
                PointFailure(
                    index=index,
                    point=cache_key,
                    mode=mode,
                    reason=reason,
                    attempts=attempt,
                )
            )
            telemetry.emit(
                "point_failed",
                point=cache_key,
                mode=mode,
                attempts=attempt,
                reason=reason,
            )

    def requeue_unpenalized(index, attempt, reason, queue):
        """Reschedule an innocent casualty without spending a retry."""
        cache_key, mode, _ = tasks[index]
        queue.append((index, attempt, 0.0))
        telemetry.emit(
            "point_retried",
            point=cache_key,
            mode=mode,
            attempt=attempt,
            reason=reason,
            delay=0.0,
        )

    def submit(entry, solo):
        nonlocal probing
        index, attempt, _ = entry
        try:
            future = pool.submit(_point_worker, spec, tasks[index], injector)
        except BrokenExecutor:
            return False
        inflight[future] = (index, attempt, time.monotonic())
        probing = solo
        cache_key, mode, _ = tasks[index]
        telemetry.emit(
            "point_scheduled",
            point=cache_key,
            mode=mode,
            attempt=attempt,
            probation=solo,
        )
        return True

    try:
        while pending or probation or inflight:
            now = time.monotonic()
            broken = False
            if probation:
                # Probation runs are solo: wait out the pool, then dispatch
                # exactly one suspect.
                if not inflight:
                    index, attempt, ready_at = probation.popleft()
                    if ready_at > now:
                        probation.appendleft((index, attempt, ready_at))
                        time.sleep(_TICK)
                    elif not submit((index, attempt, ready_at), solo=True):
                        probation.appendleft((index, attempt, 0.0))
                        broken = True
            elif not probing:
                deferred = []
                while pending and len(inflight) < jobs and not broken:
                    entry = pending.popleft()
                    if entry[2] > now:
                        deferred.append(entry)
                    elif not submit(entry, solo=False):
                        pending.appendleft((entry[0], entry[1], 0.0))
                        broken = True
                pending.extend(deferred)
            if not inflight and not broken:
                time.sleep(_TICK)  # every queued point is in backoff
                continue
            done = set()
            if inflight:
                done, _ = wait(
                    set(inflight), timeout=_TICK, return_when=FIRST_COMPLETED
                )
            now = time.monotonic()
            was_probe = probing
            for future in done:
                index, attempt, dispatched = inflight.pop(future)
                cache_key, mode, _ = tasks[index]
                try:
                    counters = future.result()
                except BrokenExecutor:
                    broken = True
                    if was_probe:
                        # Solo run: the crash is unambiguously this point's.
                        retry_or_fail(
                            index, attempt, "worker crashed", probation
                        )
                    else:
                        # Collateral suspects re-run solo, unpenalized.
                        requeue_unpenalized(
                            index,
                            attempt,
                            "pool lost (crashed peer); probation re-run",
                            probation,
                        )
                except Exception as exc:
                    retry_or_fail(
                        index,
                        attempt,
                        f"{type(exc).__name__}: {exc}",
                        probation if was_probe else pending,
                    )
                else:
                    results[index] = counters
                    telemetry.emit(
                        "point_completed",
                        point=cache_key,
                        mode=mode,
                        attempt=attempt,
                        seconds=now - dispatched,
                    )
            if not inflight:
                probing = False
            hung = []
            if policy.timeout is not None:
                hung = [
                    future
                    for future, (_, _, dispatched) in inflight.items()
                    if now - dispatched > policy.timeout
                ]
            if not (broken or hung):
                continue
            # The pool is compromised. Hung points are individually
            # identified by their timeout, so they are charged an attempt
            # directly; the other in-flight points are innocent — crashes
            # send them to probation, teardowns for a hang requeue them.
            for future in hung:
                index, attempt, _ = inflight.pop(future)
                retry_or_fail(
                    index,
                    attempt,
                    f"timeout after {policy.timeout:.1f}s",
                    probation if probing else pending,
                )
            lost = len(inflight)
            for index, attempt, _ in inflight.values():
                if broken:
                    requeue_unpenalized(
                        index,
                        attempt,
                        "pool lost (crashed peer); probation re-run",
                        probation,
                    )
                else:
                    requeue_unpenalized(
                        index, attempt, "pool torn down (hung peer)", pending
                    )
            inflight.clear()
            probing = False
            _terminate_pool(pool)
            rebuilds += 1
            telemetry.emit(
                "pool_rebuilt",
                rebuilds=rebuilds,
                lost_points=lost,
                hung=len(hung),
                crashed=broken,
            )
            if rebuilds > policy.max_pool_rebuilds:
                remaining = list(probation) + list(pending)
                telemetry.emit("serial_fallback", remaining=len(remaining))
                return deque(
                    (index, attempt) for index, attempt, _ in remaining
                )
            pool = ProcessPoolExecutor(max_workers=jobs)
    finally:
        _terminate_pool(pool)
    return deque()


def _serial_phase(
    runner, points, tasks, results, failures, pending, policy, telemetry
):
    """In-process drain of points the pooled phase gave up on.

    No timeout is enforceable here; fault injection never fires in-process,
    so this path cannot take down the caller short of a genuine bug in the
    simulation itself (which the serial executor would hit identically).
    """
    for index, attempt in pending:
        cache_key, mode, use_cache = tasks[index]
        workload, _ = points[index]
        while True:
            dispatched = time.monotonic()
            telemetry.emit(
                "point_scheduled", point=cache_key, mode=mode, attempt=attempt
            )
            try:
                results[index] = runner.run(workload, mode, use_cache=use_cache)
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
                if attempt <= policy.retries:
                    telemetry.emit(
                        "point_retried",
                        point=cache_key,
                        mode=mode,
                        attempt=attempt,
                        reason=reason,
                        delay=0.0,
                    )
                    attempt += 1
                    continue
                failures.append(
                    PointFailure(
                        index=index,
                        point=cache_key,
                        mode=mode,
                        reason=reason,
                        attempts=attempt,
                    )
                )
                telemetry.emit(
                    "point_failed",
                    point=cache_key,
                    mode=mode,
                    attempts=attempt,
                    reason=reason,
                )
            else:
                telemetry.emit(
                    "point_completed",
                    point=cache_key,
                    mode=mode,
                    attempt=attempt,
                    seconds=time.monotonic() - dispatched,
                )
            break
