"""Persistent on-disk cache for :class:`Runner` results.

A :class:`Runner`'s in-memory memo dies with the instance, so every figure
suite re-simulates identical (machine, workload, mode) points. This module
promotes that memo to a content-addressed JSON store (default:
``benchmarks/results/.cache/``): the key is a SHA-256 digest over the full
machine configuration, the runner's simulation parameters, the workload's
``cache_key``, and the mode — any change to any of them changes the digest,
so stale entries can never be returned, and ``clear()`` is only ever a
space optimization.

Entries serialize :class:`RunCounters` to JSON. Ints are exact and Python's
float repr round-trips, so a warm read reconstructs counters bit-identical
to the original run (asserted by the test suite).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

from repro.cache.stats import MemoryTraffic, ServiceCounts
from repro.cpu.counters import PhaseCounters, RunCounters

__all__ = [
    "ResultCache",
    "default_cache_dir",
    "run_digest",
    "counters_to_dict",
    "counters_from_dict",
]

#: Bumped whenever the serialized layout or simulation semantics change in a
#: way that should invalidate previously stored results.
FORMAT_VERSION = 1


def default_cache_dir():
    """Cache directory: ``$REPRO_RESULT_CACHE`` or the in-repo default."""
    env = os.environ.get("REPRO_RESULT_CACHE")
    if env:
        return Path(env)
    repo_root = Path(__file__).resolve().parents[3]
    return repo_root / "benchmarks" / "results" / ".cache"


def run_digest(machine, runner_params, cache_key, mode):
    """Content hash identifying one simulation result.

    ``machine`` is a :class:`MachineConfig`; ``runner_params`` the runner's
    simulation-affecting knobs; ``cache_key`` the workload's identity string
    (``name:input:scale``); ``mode`` the execution mode. The engine choice is
    deliberately *not* part of the key: the batched and scalar engines are
    equivalence-tested to produce identical counters, so either may serve a
    result computed by the other.
    """
    payload = {
        "version": FORMAT_VERSION,
        "machine": dataclasses.asdict(machine),
        "runner": dict(sorted(runner_params.items())),
        "workload": cache_key,
        "mode": mode,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def counters_to_dict(counters):
    """Serialize :class:`RunCounters` to a JSON-safe dict."""
    return {
        "version": FORMAT_VERSION,
        "workload": counters.workload,
        "mode": counters.mode,
        "phases": [
            {
                "name": p.name,
                "instructions": int(p.instructions),
                "branches": int(p.branches),
                "branch_mispredicts": float(p.branch_mispredicts),
                "irregular_service": _service_to_list(p.irregular_service),
                "streaming_service": _service_to_list(p.streaming_service),
                "streaming_bytes": int(p.streaming_bytes),
                "traffic": [
                    int(p.traffic.reads),
                    int(p.traffic.writes),
                    int(p.traffic.prefetch_reads),
                    int(p.traffic.line_bytes),
                ],
                "cycles": float(p.cycles),
            }
            for p in counters.phases
        ],
    }


def counters_from_dict(payload):
    """Rebuild :class:`RunCounters` from :func:`counters_to_dict` output."""
    if payload["version"] != FORMAT_VERSION:
        raise ValueError(f"cache format {payload['version']} != {FORMAT_VERSION}")
    counters = RunCounters(workload=payload["workload"], mode=payload["mode"])
    for p in payload["phases"]:
        reads, writes, prefetch_reads, line_bytes = p["traffic"]
        counters.phases.append(
            PhaseCounters(
                name=p["name"],
                instructions=p["instructions"],
                branches=p["branches"],
                branch_mispredicts=p["branch_mispredicts"],
                irregular_service=ServiceCounts(*p["irregular_service"]),
                streaming_service=ServiceCounts(*p["streaming_service"]),
                streaming_bytes=p["streaming_bytes"],
                traffic=MemoryTraffic(
                    reads=reads,
                    writes=writes,
                    prefetch_reads=prefetch_reads,
                    line_bytes=line_bytes,
                ),
                cycles=p["cycles"],
            )
        )
    return counters


def _service_to_list(service):
    return [
        int(service.l1),
        int(service.l2),
        int(service.llc),
        int(service.dram),
    ]


class ResultCache:
    """Digest-addressed JSON store of :class:`RunCounters`.

    Writes are atomic (tmp file + :func:`os.replace`), so a killed sweep
    never leaves a truncated entry; unreadable or corrupt files simply count
    as misses and are overwritten by the next store.
    """

    def __init__(self, directory=None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, digest):
        return self.directory / f"{digest}.json"

    def get(self, digest):
        """Cached :class:`RunCounters` for ``digest``, or ``None``."""
        try:
            payload = json.loads(self._path(digest).read_text("utf-8"))
            counters = counters_from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return counters

    def put(self, digest, counters):
        """Store ``counters`` under ``digest`` (atomic, last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(digest)
        tmp = path.with_name(f"{digest}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(counters_to_dict(counters)), "utf-8")
        os.replace(tmp, path)

    def clear(self):
        """Delete every stored entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self):
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
