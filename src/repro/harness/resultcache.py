"""Persistent on-disk cache for :class:`Runner` results.

A :class:`Runner`'s in-memory memo dies with the instance, so every figure
suite re-simulates identical (machine, workload, mode) points. This module
promotes that memo to a content-addressed JSON store (default:
``benchmarks/results/.cache/``): the key is a SHA-256 digest over the full
machine configuration, the runner's simulation parameters, the workload's
``cache_key``, and the mode — any change to any of them changes the digest,
so stale entries can never be returned, and ``clear()`` is only ever a
space optimization.

Entries serialize run results to JSON. Ints are exact and Python's float
repr round-trips, so a warm read reconstructs a
:class:`~repro.api.RunResult` bit-identical to the original run (asserted
by the test suite), tagged with ``provenance="disk"``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.cache.stats import MemoryTraffic, ServiceCounts
from repro.harness import knobs
from repro.harness.telemetry import NULL_TELEMETRY

__all__ = [
    "ResultCache",
    "default_cache_dir",
    "run_digest",
    "counters_to_dict",
    "counters_from_dict",
]

#: Bumped whenever the serialized layout or simulation semantics change in a
#: way that should invalidate previously stored results.
FORMAT_VERSION = 1


def _is_repo_checkout(root):
    """True when ``root`` looks like this repository's working tree.

    The in-repo cache default is only valid when the package actually runs
    from a checkout; a pip-installed copy resolves its "repo root" into
    ``site-packages``' parent, and silently dropping cache entries there is
    exactly the kind of bug this guard exists for.
    """
    return (root / "pyproject.toml").is_file() and (root / "src" / "repro").is_dir()


def _user_cache_dir():
    """Per-user cache directory (XDG on Linux, ``~/.cache`` fallback)."""
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


def default_cache_dir(package_file=None):
    """Cache directory: ``$REPRO_RESULT_CACHE``, the in-repo default, or —
    when the package is installed outside a checkout — a per-user cache dir.

    ``package_file`` is this module's path (overridable for tests).
    """
    env = knobs.read("REPRO_RESULT_CACHE")
    if env:
        return Path(env)
    source = Path(package_file if package_file else __file__).resolve()
    try:
        repo_root = source.parents[3]
    except IndexError:
        return _user_cache_dir()
    if _is_repo_checkout(repo_root):
        return repo_root / "benchmarks" / "results" / ".cache"
    return _user_cache_dir()


def _digest_default(value):
    """Strict JSON fallback for digest payloads.

    Only types with a process-independent canonical form are allowed.
    ``default=repr`` was the original fallback and silently hashed reprs
    like ``<object at 0x7f...>`` — unique per process, so the digest never
    matched again and the cache permanently missed. Unknown types now fail
    loudly at digest time instead.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, Path):
        return str(value)
    raise TypeError(
        f"run_digest payload contains non-canonical type "
        f"{type(value).__name__}: {value!r}; digests must not depend on "
        f"object reprs (memory addresses vary per process)"
    )


def run_digest(machine, runner_params, cache_key, mode):
    """Content hash identifying one simulation result.

    ``machine`` is a :class:`MachineConfig`; ``runner_params`` the runner's
    simulation-affecting knobs; ``cache_key`` the workload's identity string
    (``name:input:scale``); ``mode`` the execution mode. The engine choice is
    deliberately *not* part of the key: the batched and scalar engines are
    equivalence-tested to produce identical counters, so either may serve a
    result computed by the other. Serialization is strict — see
    :func:`_digest_default` — so a digest computed today matches the same
    configuration in any other process, ever.
    """
    payload = {
        "version": FORMAT_VERSION,
        "machine": dataclasses.asdict(machine),
        "runner": dict(sorted(runner_params.items())),
        "workload": cache_key,
        "mode": mode,
    }
    blob = json.dumps(payload, sort_keys=True, default=_digest_default)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def counters_to_dict(counters):
    """Serialize a run result to a JSON-safe dict.

    Accepts a :class:`~repro.api.RunResult` or the legacy
    :class:`RunCounters` (any field-compatible object). The layout is the
    pre-``repro.api`` format plus an optional per-phase ``engine`` tag, so
    previously stored entries stay readable.
    """
    return {
        "version": FORMAT_VERSION,
        "workload": counters.workload,
        "mode": str(counters.mode),
        "phases": [
            {
                "name": p.name,
                "instructions": int(p.instructions),
                "branches": int(p.branches),
                "branch_mispredicts": float(p.branch_mispredicts),
                "irregular_service": _service_to_list(p.irregular_service),
                "streaming_service": _service_to_list(p.streaming_service),
                "streaming_bytes": int(p.streaming_bytes),
                "traffic": [
                    int(p.traffic.reads),
                    int(p.traffic.writes),
                    int(p.traffic.prefetch_reads),
                    int(p.traffic.line_bytes),
                ],
                "cycles": float(p.cycles),
                "engine": getattr(p, "engine", None),
            }
            for p in counters.phases
        ],
    }


def counters_from_dict(payload, provenance=None):
    """Rebuild a :class:`~repro.api.RunResult` from
    :func:`counters_to_dict` output.

    ``provenance`` defaults to :data:`~repro.api.PROVENANCE_DISK` (the
    caller is usually a cache read); checkpoint replay passes
    :data:`~repro.api.PROVENANCE_JOURNAL`.
    """
    from repro.api import PROVENANCE_DISK, PhaseResult, RunResult

    if payload["version"] != FORMAT_VERSION:
        raise ValueError(f"cache format {payload['version']} != {FORMAT_VERSION}")
    phases = []
    for p in payload["phases"]:
        reads, writes, prefetch_reads, line_bytes = p["traffic"]
        phases.append(
            PhaseResult(
                name=p["name"],
                instructions=p["instructions"],
                branches=p["branches"],
                branch_mispredicts=p["branch_mispredicts"],
                irregular_service=ServiceCounts(*p["irregular_service"]),
                streaming_service=ServiceCounts(*p["streaming_service"]),
                streaming_bytes=p["streaming_bytes"],
                traffic=MemoryTraffic(
                    reads=reads,
                    writes=writes,
                    prefetch_reads=prefetch_reads,
                    line_bytes=line_bytes,
                ),
                cycles=p["cycles"],
                engine=p.get("engine"),
            )
        )
    return RunResult(
        workload=payload["workload"],
        mode=payload["mode"],
        phases=tuple(phases),
        provenance=PROVENANCE_DISK if provenance is None else provenance,
    )


def _service_to_list(service):
    return [
        int(service.l1),
        int(service.l2),
        int(service.llc),
        int(service.dram),
    ]


class ResultCache:
    """Digest-addressed JSON store of run results.

    Writes are atomic (tmp file + :func:`os.replace`), so a killed sweep
    never leaves a truncated entry; unreadable or corrupt files simply count
    as misses and are overwritten by the next store. Writes are best-effort:
    a failed store (disk full, read-only mount) cleans up its tmp file,
    counts in ``write_errors``/telemetry, and never aborts the simulation
    that produced the counters.
    """

    def __init__(self, directory=None, telemetry=None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.hits = 0
        self.misses = 0
        self.write_errors = 0

    def _path(self, digest):
        return self.directory / f"{digest}.json"

    def get(self, digest):
        """Cached :class:`~repro.api.RunResult` for ``digest`` (with
        ``provenance="disk"``), or ``None``."""
        try:
            payload = json.loads(self._path(digest).read_text("utf-8"))
            counters = counters_from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            self.misses += 1
            self.telemetry.emit("cache_miss", digest=digest)
            return None
        self.hits += 1
        self.telemetry.emit("cache_hit", digest=digest)
        return counters

    def put(self, digest, counters):
        """Store ``counters`` under ``digest`` (atomic, last writer wins).

        Returns True on success. A tmp file never outlives a failed write
        — ``clear()``/``__len__`` ignore strays regardless, but leaking one
        per failed store would still fill the directory on a sick disk.
        """
        path = self._path(digest)
        tmp = path.with_name(f"{digest}.{os.getpid()}.tmp")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(counters_to_dict(counters)), "utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            self.write_errors += 1
            self.telemetry.emit(
                "cache_write_error", digest=digest, error=str(exc)
            )
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    def clear(self):
        """Delete every stored entry; returns the number removed.

        Stray ``*.tmp`` files from interrupted writers are swept too but do
        not count toward the removed-entry total. Safe against concurrent
        clears/iterators: a file (or the directory itself) vanishing
        mid-scan is another process's delete, not an error.
        """
        removed = 0
        try:
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        except OSError:
            pass
        return removed

    def __len__(self):
        count = 0
        try:
            for _ in self.directory.glob("*.json"):
                count += 1
        except OSError:
            pass
        return count
