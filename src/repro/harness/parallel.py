"""Multicore execution model (16-core Table II machine).

The paper's parallel PB duplicates bins and C-Buffers per thread, so PB
and COBRA scale by partitioning the update stream with *no* inter-thread
communication; the baseline's threads instead scatter into shared data
and pay MESI invalidation traffic on top of a shared DRAM-bandwidth pool.
This module layers those effects on the single-representative-core runner:

* per-core work = an even slice of the update stream (edge-parallel
  kernels), with the measured slice-size imbalance applied,
* DRAM-bandwidth share per core shrinks as cores grow (the default
  machine's ``stream_bytes_per_cycle`` is the 16-core share),
* baseline writes to shared data run through :class:`DirectoryMESI` on a
  round-robin interleaving to measure invalidations per update, each
  costing a remote transfer.

This is an *extension* of the paper's evaluation (which fixes 16 cores);
the scalability curves it produces are reported as such in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.cache.coherence import DirectoryMESI
from repro.harness import modes

__all__ = ["ParallelEstimate", "ParallelModel"]

#: Total cores the default machine's per-core parameters assume.
BASE_CORES = 16


@dataclass(frozen=True)
class ParallelEstimate:
    """Modeled parallel execution of one workload/mode."""

    mode: str
    num_cores: int
    single_core_cycles: float
    parallel_cycles: float
    imbalance: float
    invalidations_per_update: float
    coherence_cycles: float

    @property
    def speedup_vs_one_core(self):
        """Parallel speedup over the same mode on one core."""
        return self.single_core_cycles / self.parallel_cycles

    @property
    def efficiency(self):
        """Parallel efficiency (speedup / cores)."""
        return self.speedup_vs_one_core / self.num_cores


class ParallelModel:
    """Estimates multicore behaviour from single-core runs."""

    def __init__(self, runner, coherence_sample=60_000):
        self.runner = runner
        self.coherence_sample = coherence_sample

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #

    def slice_imbalance(self, workload, num_cores):
        """Max-over-mean work across even stream slices.

        Edge-parallel loops divide the update stream evenly, so imbalance
        comes only from rounding; dynamic scheduling in the paper's
        OpenMP-style loops keeps it near 1.0.
        """
        check_positive("num_cores", num_cores)
        n = workload.num_updates
        if n == 0 or num_cores == 1:
            return 1.0
        per_core = -(-n // num_cores)
        return per_core * num_cores / n

    def invalidation_rate(self, workload, num_cores, line_elems=16):
        """Invalidations per update when cores share the data structure.

        Round-robin-interleaves a sample of the update stream across cores
        and replays the *line-level* writes through the MESI directory
        (the probability that another core recently wrote the same line is
        what drives ping-ponging).
        """
        if num_cores == 1:
            return 0.0
        sample = workload.update_indices[: self.coherence_sample]
        if len(sample) == 0:
            return 0.0
        lines = (np.asarray(sample) // line_elems).tolist()
        directory = DirectoryMESI(num_cores)
        for position, line in enumerate(lines):
            directory.write(position % num_cores, line)
        return directory.stats.invalidations / len(lines)

    # ------------------------------------------------------------------ #
    # Estimates
    # ------------------------------------------------------------------ #

    def estimate(self, workload, mode, num_cores=BASE_CORES):
        """Parallel cycles for ``workload`` under ``mode`` on ``num_cores``.

        The per-core DRAM-bandwidth share scales inversely with the core
        count relative to the 16-core default; per-core cache capacities
        are per-core resources and stay fixed.
        """
        check_positive("num_cores", num_cores)
        from repro.harness.runner import Runner

        machine = self.runner.machine.with_core(
            stream_bytes_per_cycle=(
                self.runner.machine.core.stream_bytes_per_cycle
                * BASE_CORES
                / num_cores
            )
        )
        scaled_runner = Runner(
            machine=machine,
            max_sim_events=self.runner.max_sim_events,
            model_eviction_stalls=self.runner.model_eviction_stalls,
            des_sample=self.runner.des_sample,
        )
        one_core_total = scaled_runner.run(
            workload, mode, use_cache=False
        ).cycles

        imbalance = self.slice_imbalance(workload, num_cores)
        per_core = one_core_total / num_cores * imbalance

        invalidations_per_update = 0.0
        coherence_cycles = 0.0
        if mode == modes.BASELINE and num_cores > 1:
            invalidations_per_update = self.invalidation_rate(
                workload, num_cores
            )
            transfer = self.runner.machine.core.llc_remote_latency
            mlp = self.runner.machine.core.mlp_irregular
            coherence_cycles = (
                invalidations_per_update
                * workload.num_updates
                / num_cores
                * transfer
                / mlp
            )
        return ParallelEstimate(
            mode=mode,
            num_cores=num_cores,
            single_core_cycles=one_core_total,
            parallel_cycles=per_core + coherence_cycles,
            imbalance=imbalance,
            invalidations_per_update=invalidations_per_update,
            coherence_cycles=coherence_cycles,
        )

    def scaling_curve(self, workload, mode, core_counts=(1, 2, 4, 8, 16)):
        """Estimates across core counts (the scalability extension)."""
        return [
            self.estimate(workload, mode, num_cores)
            for num_cores in core_counts
        ]
