"""Multicore execution model (16-core Table II machine).

The paper's parallel PB duplicates bins and C-Buffers per thread, so PB
and COBRA scale by partitioning the update stream with *no* inter-thread
communication; the baseline's threads instead scatter into shared data
and pay MESI invalidation traffic on top of a shared DRAM-bandwidth pool.
This module layers those effects on the single-representative-core runner:

* per-core work = an even slice of the update stream (edge-parallel
  kernels), with the measured slice-size imbalance applied,
* DRAM-bandwidth share per core shrinks as cores grow (the default
  machine's ``stream_bytes_per_cycle`` is the 16-core share),
* baseline writes to shared data run through :class:`DirectoryMESI` on a
  round-robin interleaving to measure invalidations per update, each
  costing a remote transfer.

This is an *extension* of the paper's evaluation (which fixes 16 cores);
the scalability curves it produces are reported as such in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.harness import modes
from repro.harness.telemetry import NULL_TELEMETRY

__all__ = ["ParallelEstimate", "ParallelModel", "run_sweep"]

#: Total cores the default machine's per-core parameters assume.
BASE_CORES = 16


@dataclass(frozen=True)
class ParallelEstimate:
    """Modeled parallel execution of one workload/mode."""

    mode: str
    num_cores: int
    single_core_cycles: float
    parallel_cycles: float
    imbalance: float
    invalidations_per_update: float
    coherence_cycles: float

    @property
    def speedup_vs_one_core(self):
        """Parallel speedup over the same mode on one core."""
        return self.single_core_cycles / self.parallel_cycles

    @property
    def efficiency(self):
        """Parallel efficiency (speedup / cores)."""
        return self.speedup_vs_one_core / self.num_cores


class ParallelModel:
    """Estimates multicore behaviour from single-core runs."""

    def __init__(self, runner, coherence_sample=60_000):
        self.runner = runner
        self.coherence_sample = coherence_sample

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #

    def slice_imbalance(self, workload, num_cores):
        """Max-over-mean work across even stream slices.

        Edge-parallel loops divide the update stream evenly, so imbalance
        comes only from rounding; dynamic scheduling in the paper's
        OpenMP-style loops keeps it near 1.0.
        """
        check_positive("num_cores", num_cores)
        n = workload.num_updates
        if n == 0 or num_cores == 1:
            return 1.0
        per_core = -(-n // num_cores)
        return per_core * num_cores / n

    def invalidation_rate(self, workload, num_cores, line_elems=16):
        """Invalidations per update when cores share the data structure.

        Round-robin-interleaves a sample of the update stream across cores
        and counts the *line-level* write conflicts a MESI directory would
        see (the probability that another core recently wrote the same line
        is what drives ping-ponging). Because every access is a write, at
        most one core holds a line at any time, so replaying the stream
        through :class:`DirectoryMESI` reduces to a closed form — a write
        invalidates iff the line's previous write came from a different
        core, i.e. the gap between occurrences is not a multiple of the
        core count — evaluated here fully vectorized (equivalence with the
        scalar directory replay is test-asserted).
        """
        if num_cores == 1:
            return 0.0
        sample = np.asarray(workload.update_indices[: self.coherence_sample])
        if sample.size == 0:
            return 0.0
        lines = sample // line_elems
        # Stable sort by line groups successive writes to the same line;
        # positions within a group are consecutive occurrences.
        order = np.lexsort((np.arange(lines.size), lines))
        sorted_lines = lines[order]
        same_line = sorted_lines[1:] == sorted_lines[:-1]
        gaps = order[1:] - order[:-1]
        invalidations = int(
            np.count_nonzero(same_line & (gaps % num_cores != 0))
        )
        return invalidations / lines.size

    # ------------------------------------------------------------------ #
    # Estimates
    # ------------------------------------------------------------------ #

    def estimate(self, workload, mode, num_cores=BASE_CORES):
        """Parallel cycles for ``workload`` under ``mode`` on ``num_cores``.

        The per-core DRAM-bandwidth share scales inversely with the core
        count relative to the 16-core default; per-core cache capacities
        are per-core resources and stay fixed.
        """
        check_positive("num_cores", num_cores)
        from repro.harness.runner import Runner

        machine = self.runner.machine.with_core(
            stream_bytes_per_cycle=(
                self.runner.machine.core.stream_bytes_per_cycle
                * BASE_CORES
                / num_cores
            )
        )
        scaled_runner = Runner(
            machine=machine,
            max_sim_events=self.runner.max_sim_events,
            model_eviction_stalls=self.runner.model_eviction_stalls,
            des_sample=self.runner.des_sample,
            engine=self.runner.engine,
            result_cache=self.runner.result_cache,
        )
        one_core_total = scaled_runner.run(
            workload, mode, use_cache=False
        ).cycles

        imbalance = self.slice_imbalance(workload, num_cores)
        per_core = one_core_total / num_cores * imbalance

        invalidations_per_update = 0.0
        coherence_cycles = 0.0
        if mode == modes.BASELINE and num_cores > 1:
            invalidations_per_update = self.invalidation_rate(
                workload, num_cores
            )
            transfer = self.runner.machine.core.llc_remote_latency
            mlp = self.runner.machine.core.mlp_irregular
            coherence_cycles = (
                invalidations_per_update
                * workload.num_updates
                / num_cores
                * transfer
                / mlp
            )
        return ParallelEstimate(
            mode=mode,
            num_cores=num_cores,
            single_core_cycles=one_core_total,
            parallel_cycles=per_core + coherence_cycles,
            imbalance=imbalance,
            invalidations_per_update=invalidations_per_update,
            coherence_cycles=coherence_cycles,
        )

    def scaling_curve(self, workload, mode, core_counts=(1, 2, 4, 8, 16)):
        """Estimates across core counts (the scalability extension)."""
        return [
            self.estimate(workload, mode, num_cores)
            for num_cores in core_counts
        ]


# ---------------------------------------------------------------------- #
# Process-pool sweep executor
# ---------------------------------------------------------------------- #


def _sweep_worker(spec, chunk):
    """Run one chunk of ``(cache_key, mode)`` points in a worker process.

    Module-level so it pickles; the runner is rebuilt from its spawn spec
    and workloads from their cache keys (shipping the array-heavy workload
    objects across the process boundary would dwarf the simulation cost).
    """
    from repro.harness.runner import Runner
    from repro.workloads.registry import resolve_point

    runner = Runner.from_spec(spec)
    results = []
    for cache_key, mode, use_cache in chunk:
        workload = resolve_point(cache_key)
        results.append(runner.run(workload, mode, use_cache=use_cache))
    return results


def run_sweep(runner, points, jobs, use_cache=True, checkpoint=None):
    """Fan independent ``(workload, mode)`` points across processes.

    Points are split round-robin into ``~4×jobs`` chunks (amortizing
    per-process input construction while keeping the pool load-balanced
    when per-point cost varies) and results are restored to input order,
    so the output is indistinguishable from the serial path. Every point's
    workload must carry a ``cache_key``. Completed results are folded back
    into ``runner``'s in-memory memo; with a persistent cache attached the
    workers write through to disk themselves.

    An empty point list returns ``[]`` immediately, and the worker count is
    clamped to the number of points still to run — a pool is never built
    larger than its work list (or at all, when nothing is pending).

    ``checkpoint`` (a :class:`~repro.harness.checkpoint.SweepCheckpoint`)
    splices journaled counters back without re-simulation and journals each
    chunk's completions as its future resolves.

    This is the *fast-path* executor: one crashed or hung worker aborts the
    sweep (``BrokenProcessPool`` / a stall). For sweeps that must survive
    worker loss — or the parent's own SIGINT/SIGTERM — use
    :func:`repro.harness.faults.run_sweep_resilient` or attach a
    :class:`~repro.harness.faults.FaultPolicy` to the runner.
    """
    check_positive("jobs", jobs)
    telemetry = getattr(runner, "telemetry", NULL_TELEMETRY)
    started = time.monotonic()
    points = list(points)
    if not points:
        return []
    tasks = []
    for workload, mode in points:
        cache_key = getattr(workload, "cache_key", None)
        if cache_key is None:
            raise ValueError(
                f"workload {workload.name!r} has no cache_key; the sweep "
                "executor rebuilds workloads from keys in worker processes"
            )
        tasks.append((cache_key, mode, use_cache))
    results = [None] * len(points)
    restored = {}
    if checkpoint is not None:
        restored = checkpoint.completed_counters()
        for index, counters in restored.items():
            results[index] = counters
    todo = [index for index, result in enumerate(results) if result is None]
    jobs = min(jobs, len(todo))
    if jobs <= 1:
        for index in todo:
            workload, mode = points[index]
            results[index] = runner.run(workload, mode, use_cache=use_cache)
            if checkpoint is not None:
                checkpoint.record(index, results[index])
        for index in restored:
            cache_key, mode, _ = tasks[index]
            runner._store((cache_key, mode), results[index], persist=False)
        if checkpoint is not None:
            checkpoint.mark_completed()
        return results
    num_chunks = min(len(todo), jobs * 4)
    chunks = [[] for _ in range(num_chunks)]
    chunk_indices = [[] for _ in range(num_chunks)]
    for position, index in enumerate(todo):
        chunks[position % num_chunks].append(tasks[index])
        chunk_indices[position % num_chunks].append(index)
    telemetry.emit(
        "sweep_started",
        points=len(points),
        jobs=jobs,
        executor="pool",
        restored=len(restored),
        run_id=checkpoint.run_id if checkpoint is not None else None,
    )
    spec = runner.spawn_spec()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            (pool.submit(_sweep_worker, spec, chunk), indices)
            for chunk, indices in zip(chunks, chunk_indices)
            if chunk
        ]
        for future, indices in futures:
            for index, counters in zip(indices, future.result()):
                results[index] = counters
                if checkpoint is not None:
                    checkpoint.record(index, counters)
    for (workload, mode), counters in zip(points, results):
        runner._store(
            (workload.cache_key, mode), counters, persist=False
        )
    if checkpoint is not None:
        checkpoint.mark_completed()
    telemetry.emit_timed(
        "sweep_completed",
        time.monotonic() - started,
        completed=len(results),
        failed=0,
    )
    return results
