"""Content-addressed, memory-mapped on-disk store for phase traces.

``Runner._simulate_phase`` interleaves the sampled per-segment line
arrays into one merged trace before replay. In a parallel sweep every
worker process builds its own private copy of that trace — for the large
figure points this is the dominant transient allocation, and identical
(workload, phase) traces are rebuilt once per worker per sweep.

:class:`TraceStore` materializes each interleaved trace exactly once into
a directory of ``.npy`` files and hands back **read-only memory maps**
(``numpy.load(..., mmap_mode="r")``). Workers that request the same trace
map the same files, so the physical pages are shared through the OS page
cache: zero copies per additional worker, and peak RSS per worker drops
from O(trace) to O(chunk) even on the unchunked replay path.

Entries are **content-addressed**: the key is the SHA-256 of the segment
arrays' bytes, shapes, and write flags — the exact inputs of
:func:`~repro.harness.runner._materialize_trace`. Two phases whose
sampled segments are byte-identical share one entry; any difference in
content produces a different key, so a stale or aliased entry cannot
exist by construction (this is why the ``REPRO_TRACE_STORE`` knob stays
out of result-cache digests — see ``repro.analysis.digest_exempt``).

Writes are crash-safe: each array is written to a temporary file in the
store directory and ``os.replace``-d into place, so concurrent workers
racing on the same entry at worst build it twice and atomically install
identical bytes. A ``.meta.json`` sidecar records the event count and
interleave width for introspection (``entries``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["TraceStore", "TRACE_STORE_KNOB", "resolve_store"]

TRACE_STORE_KNOB = "REPRO_TRACE_STORE"


def resolve_store(value):
    """A :class:`TraceStore` from a constructor argument or knob value.

    ``None``/empty disables the store; ``"1"`` selects the default
    directory (a ``traces`` subdirectory of the result cache, so the two
    artifact sets travel together); an existing :class:`TraceStore`
    passes through; anything else is the store directory.
    """
    if value is None or value == "":
        return None
    if isinstance(value, TraceStore):
        return value
    if str(value) == "1":
        from repro.harness.resultcache import default_cache_dir

        return TraceStore(default_cache_dir() / "traces")
    return TraceStore(value)


class TraceStore:
    """Directory of content-addressed, mmap-served interleaved traces.

    ``materialize(arrays, flags)`` is the single entry point: it returns
    ``(lines, writes)`` bit-identical to
    :func:`~repro.harness.runner._materialize_trace`, as read-only
    memory-mapped arrays backed by the store directory. ``hits`` /
    ``misses`` count mapped vs built traces for this process.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #

    @staticmethod
    def trace_digest(arrays, flags):
        """SHA-256 over the interleave inputs (content plus shape).

        Shapes and flags are folded in explicitly: two segment lists with
        the same concatenated bytes but different boundaries (or write
        flags) interleave differently and must not collide.
        """
        digest = hashlib.sha256()
        digest.update(json.dumps(
            [[len(a) for a in arrays], [bool(f) for f in flags]]
        ).encode("utf-8"))
        for array in arrays:
            digest.update(np.ascontiguousarray(array, dtype=np.int64).data)
        return digest.hexdigest()

    def _paths(self, digest):
        base = self.directory / digest
        return (
            base.with_suffix(".lines.npy"),
            base.with_suffix(".writes.npy"),
            base.with_suffix(".meta.json"),
        )

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #

    def materialize(self, arrays, flags):
        """The interleaved ``(lines, writes)`` trace, mapped zero-copy.

        On the first request for a given content digest the trace is
        built (exactly as the in-memory path builds it), persisted, and
        then served from the files; later requests — in this process or
        any concurrent worker — map the existing files directly.
        """
        digest = self.trace_digest(arrays, flags)
        lines_path, writes_path, meta_path = self._paths(digest)
        if lines_path.exists() and writes_path.exists():
            self.hits += 1
            return self._load(lines_path, writes_path)
        from repro.harness.runner import _materialize_trace

        lines, writes = _materialize_trace(arrays, flags)
        self._install(lines_path, lines)
        self._install(writes_path, writes)
        self._install_meta(
            meta_path, {"events": int(lines.size), "width": len(arrays)}
        )
        self.misses += 1
        return self._load(lines_path, writes_path)

    def _load(self, lines_path, writes_path):
        return (
            np.load(lines_path, mmap_mode="r"),
            np.load(writes_path, mmap_mode="r"),
        )

    def _install(self, path, array):
        """Atomically publish ``array`` as ``path`` (tmp + fsync +
        ``os.replace``; without the fsync a power loss can rename a
        still-unflushed tmp file into place as a zero-length entry)."""
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, array)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _install_meta(self, path, meta):
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(meta, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Introspection / maintenance
    # ------------------------------------------------------------------ #

    def entries(self):
        """``{digest: meta}`` for every complete entry in the store."""
        found = {}
        for meta_path in sorted(self.directory.glob("*.meta.json")):
            digest = meta_path.name[: -len(".meta.json")]
            lines_path, writes_path, _ = self._paths(digest)
            if not (lines_path.exists() and writes_path.exists()):
                continue
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    found[digest] = json.load(handle)
            except (OSError, ValueError):
                continue
        return found

    def __len__(self):
        return len(self.entries())

    def clear(self):
        """Delete every entry (and any orphaned temporaries)."""
        for path in self.directory.glob("*"):
            try:
                path.unlink()
            except OSError:
                pass
