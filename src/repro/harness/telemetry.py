"""Structured run telemetry: a JSONL event log for sweeps and runs.

Every layer of the harness (``Runner``, the sweep executors, the persistent
:class:`ResultCache`) reports what it does through a :class:`Telemetry`
object: one JSON object per line with an ``event`` name, a wall-clock
timestamp, and event-specific fields. The default is the process-wide
:data:`NULL_TELEMETRY` no-op whose ``enabled`` flag lets hot paths skip
even the timestamp call, so instrumentation costs nothing unless a sink is
attached.

:class:`JsonlTelemetry` appends to a file with a single ``os.write`` per
event on an ``O_APPEND`` descriptor, so concurrent sweep workers can share
one log without interleaving partial lines. The object pickles by path —
shipping it to a worker process reopens the same file.

Clock contract: the ``ts`` field on every event is wall-clock
(``time.time``) and **display-only** — it orders events for humans and
``repro report``, nothing more. Wall clocks step (NTP slews, suspend/
resume), so durations must never be derived by subtracting ``ts`` values;
timed events instead carry an explicit ``duration_s`` measured from a
monotonic clock (``time.perf_counter`` / ``time.monotonic``) via
:meth:`Telemetry.emit_timed`. The ``nondet`` lint rule flags wall-clock
subtraction in golden/replay and journal code to keep it that way.

Event vocabulary (see EXPERIMENTS.md for the full schema):

``sweep_started`` / ``sweep_completed``
    One sweep through the (fault-tolerant) executor.
``point_scheduled`` / ``point_completed`` / ``point_retried`` /
``point_failed``
    Lifecycle of one (workload, mode) point, with attempt counts,
    wall-clock seconds, and failure reasons.
``pool_rebuilt`` / ``serial_fallback``
    Crash-isolation actions of the fault-tolerant executor.
``sweep_interrupted`` / ``drain_timeout``
    Signal-driven graceful shutdown of a sweep (in-flight points drained
    or cancelled).
``stall_detected``
    The heartbeat watchdog flagged a worker whose point went quiet.
``points_restored`` / ``journal_corrupt``
    Checkpoint/resume activity: journaled points spliced into a sweep, and
    unreadable journal lines skipped on load.
``cache_hit`` / ``cache_miss`` / ``cache_write_error``
    Persistent result-cache activity (digest-level).
``engine_selected``
    Which trace engine simulated a phase.
``scalar_fallback``
    The batched engine could not express a phase's cache configuration
    and the runner silently degraded to the scalar engine; carries the
    rejection ``reason``. Every shipped figure configuration is batchable,
    so any nonzero count in a report deserves a look.
``phase_timed``
    Wall-clock seconds spent simulating one phase.

:func:`summarize` folds a telemetry file back into the aggregate view the
``repro report`` subcommand prints: slowest points, retry/failure counts,
and the cache hit rate.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from pathlib import Path

from repro.harness.report import format_table

__all__ = [
    "Telemetry",
    "JsonlTelemetry",
    "NULL_TELEMETRY",
    "read_events",
    "summarize",
    "format_summary",
]


class Telemetry:
    """No-op telemetry sink; the interface every layer codes against.

    ``enabled`` is ``False`` so callers can guard expensive field
    computation (``time.perf_counter`` pairs, digest formatting) behind a
    single attribute check.
    """

    enabled = False

    def emit(self, event, **fields):
        """Record one event (ignored)."""

    def emit_timed(self, event, duration_s, **fields):
        """Record one timed event with an explicit monotonic duration.

        ``duration_s`` must come from a monotonic clock pair
        (``perf_counter``/``monotonic``), never from subtracting
        wall-clock stamps. The legacy ``seconds`` field is emitted as an
        alias so pre-``duration_s`` report consumers keep working.
        """
        self.emit(
            event,
            duration_s=float(duration_s),
            seconds=float(duration_s),
            **fields,
        )

    def flush(self):
        """Force events to durable storage (nothing to do)."""

    def close(self):
        """Release any underlying resources (nothing to do)."""


#: Shared no-op sink; the default everywhere a telemetry argument is None.
NULL_TELEMETRY = Telemetry()


class JsonlTelemetry(Telemetry):
    """Append-only JSONL sink shared safely across processes.

    Each sink registers an ``atexit`` hook that flushes (fsync) and closes
    the descriptor, so the final events of a run survive interpreter exit —
    including the signal-driven graceful shutdowns of the sweep executor,
    which call :meth:`close` explicitly before returning.
    """

    enabled = True

    def __init__(self, path):
        self.path = Path(path)
        self._fd = None
        atexit.register(self.close)

    def _descriptor(self):
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        return self._fd

    def emit(self, event, **fields):
        """Append one event as a single atomic line write."""
        # repro: noqa[nondet] the ts stamp is display-only observability
        # metadata (see the module docstring); durations are carried as
        # explicit monotonic duration_s fields, never derived from ts
        record = {"event": event, "ts": time.time(), "pid": os.getpid()}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        os.write(self._descriptor(), line.encode("utf-8"))

    def flush(self):
        """fsync buffered events to disk (best-effort)."""
        if self._fd is not None:
            try:
                os.fsync(self._fd)
            except OSError:
                pass

    def close(self):
        if self._fd is not None:
            self.flush()
            os.close(self._fd)
            self._fd = None
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    # The descriptor does not travel across processes; reopen by path.
    def __getstate__(self):
        return {"path": str(self.path)}

    def __setstate__(self, state):
        self.path = Path(state["path"])
        self._fd = None
        atexit.register(self.close)


# ---------------------------------------------------------------------- #
# Reading + summarizing
# ---------------------------------------------------------------------- #


def read_events(path):
    """Parse a telemetry JSONL file; skips lines that fail to parse.

    A crashed worker can leave one torn final line; everything readable is
    still summarized.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "event" in record:
                events.append(record)
    return events


def _duration(record):
    """A timed event's monotonic duration (``duration_s``, falling back to
    the legacy ``seconds`` alias for logs written before the field)."""
    return float(record.get("duration_s", record.get("seconds", 0.0)))


def summarize(path, slowest=10):
    """Aggregate a telemetry file into the ``repro report`` view."""
    events = read_events(path)
    completed = []
    retries = {}
    failures = []
    hits = misses = write_errors = 0
    phase_seconds = {}
    engines = {}
    fallback_reasons = {}
    sweeps = 0
    interrupted = stalls = journal_warnings = 0
    for record in events:
        event = record["event"]
        if event == "sweep_started":
            sweeps += 1
        elif event == "sweep_interrupted":
            interrupted += 1
        elif event == "stall_detected":
            stalls += 1
        elif event == "journal_corrupt":
            journal_warnings += 1
        elif event == "point_completed":
            completed.append(record)
        elif event == "point_retried":
            key = (record.get("point"), record.get("mode"))
            retries[key] = retries.get(key, 0) + 1
        elif event == "point_failed":
            failures.append(record)
        elif event == "cache_hit":
            hits += 1
        elif event == "cache_miss":
            misses += 1
        elif event == "cache_write_error":
            write_errors += 1
        elif event == "phase_timed":
            name = record.get("phase", "?")
            phase_seconds[name] = phase_seconds.get(name, 0.0) + _duration(
                record
            )
        elif event == "engine_selected":
            name = record.get("engine", "?")
            engines[name] = engines.get(name, 0) + 1
        elif event == "scalar_fallback":
            reason = record.get("reason", "?")
            fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1
    completed.sort(key=lambda r: -_duration(r))
    lookups = hits + misses
    return {
        "events": len(events),
        "sweeps": sweeps,
        "completed": len(completed),
        "failed": len(failures),
        "interrupted": interrupted,
        "stalls": stalls,
        "journal_warnings": journal_warnings,
        "retried_points": len(retries),
        "total_retries": sum(retries.values()),
        "slowest": [
            {
                "point": r.get("point"),
                "mode": r.get("mode"),
                "seconds": _duration(r),
                "attempt": r.get("attempt", 1),
            }
            for r in completed[:slowest]
        ],
        "failures": [
            {
                "point": r.get("point"),
                "mode": r.get("mode"),
                "reason": r.get("reason"),
                "attempts": r.get("attempts"),
            }
            for r in failures
        ],
        "cache": {
            "hits": hits,
            "misses": misses,
            "write_errors": write_errors,
            "hit_rate": (hits / lookups) if lookups else None,
        },
        "phase_seconds": dict(
            sorted(phase_seconds.items(), key=lambda kv: -kv[1])
        ),
        "engines": engines,
        "scalar_fallbacks": sum(fallback_reasons.values()),
        "scalar_fallback_reasons": dict(
            sorted(fallback_reasons.items(), key=lambda kv: -kv[1])
        ),
    }


def format_summary(summary):
    """Render :func:`summarize` output as the report's plain text."""
    lines = [
        "Telemetry summary",
        f"  events    {summary['events']}",
        f"  sweeps    {summary['sweeps']}",
        f"  completed {summary['completed']}"
        f"  failed {summary['failed']}"
        f"  retries {summary['total_retries']}"
        f" (over {summary['retried_points']} points)",
    ]
    if (
        summary.get("interrupted")
        or summary.get("stalls")
        or summary.get("journal_warnings")
    ):
        lines.append(
            f"  robust    interruptions {summary.get('interrupted', 0)}"
            f"  stalls {summary.get('stalls', 0)}"
            f"  journal warnings {summary.get('journal_warnings', 0)}"
        )
    cache = summary["cache"]
    if cache["hits"] or cache["misses"] or cache["write_errors"]:
        rate = cache["hit_rate"]
        rate_text = "n/a" if rate is None else f"{rate:.1%}"
        lines.append(
            f"  cache     {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {rate_text}, write errors {cache['write_errors']})"
        )
    if summary["engines"]:
        parts = ", ".join(
            f"{name}={count}" for name, count in sorted(summary["engines"].items())
        )
        lines.append(f"  engines   {parts}")
    if summary.get("scalar_fallbacks"):
        reasons = "; ".join(
            f"{reason} x{count}"
            for reason, count in summary["scalar_fallback_reasons"].items()
        )
        lines.append(
            f"  WARNING   {summary['scalar_fallbacks']} scalar fallback(s): "
            f"{reasons}"
        )
    if summary["slowest"]:
        lines.append("")
        lines.append(
            format_table(
                ["point", "mode", "attempt", "seconds"],
                [
                    [
                        str(r["point"]),
                        str(r["mode"]),
                        int(r["attempt"] or 1),
                        r["seconds"],
                    ]
                    for r in summary["slowest"]
                ],
                title="Slowest points",
                floatfmt="{:.3f}",
            )
        )
    if summary["failures"]:
        lines.append("")
        lines.append(
            format_table(
                ["point", "mode", "attempts", "reason"],
                [
                    [
                        str(r["point"]),
                        str(r["mode"]),
                        str(r["attempts"]),
                        str(r["reason"]),
                    ]
                    for r in summary["failures"]
                ],
                title="Failed points",
            )
        )
    if summary["phase_seconds"]:
        lines.append("")
        lines.append(
            format_table(
                ["phase", "seconds"],
                [
                    [name, seconds]
                    for name, seconds in summary["phase_seconds"].items()
                ],
                title="Simulation wall-clock by phase",
                floatfmt="{:.3f}",
            )
        )
    return "\n".join(lines)
