"""The standard input suite — our scaled Table III.

Graphs cover the paper's three degree-distribution families (power-law,
uniform, bounded-degree) and the matrices its two sparse families
(simulation stencils, random optimization-style). Sizes are chosen so each
irregular working set is ~8x the simulated LLC bank, matching the paper's
footprint-to-cache ratio (DESIGN.md Sections 4-5).
"""

from __future__ import annotations

import numpy as np

from repro.graphs import build_csr, mesh2d, rmat, uniform_random
from repro.sparse import (
    poisson2d,
    random_permutation,
    random_sparse,
    random_symmetric,
)
from repro.workloads import (
    DegreeCount,
    IntegerSort,
    NeighborPopulate,
    Pagerank,
    PInv,
    Radii,
    SpMV,
    SymPerm,
    Transpose,
)

__all__ = [
    "GRAPH_NAMES",
    "MATRIX_NAMES",
    "WORKLOAD_INPUTS",
    "load_graph",
    "load_csr",
    "load_matrix",
    "make_workload",
    "workload_instances",
    "describe_inputs",
]

_SCALE = 18  # log2 of the vertex-namespace size
_DEG = 8  # average degree of the synthetic graphs

#: Graph inputs (paper analogs in parentheses): KRON (KRON/TWIT — heavy
#: power-law skew), WEB (milder power-law), URND (uniform random), EURO
#: (bounded-degree road-style mesh).
GRAPH_NAMES = ("KRON", "WEB", "URND", "EURO")

#: Matrix inputs: POIS (simulation stencil), ROPT (random optimization).
MATRIX_NAMES = ("POIS", "ROPT")

_cache = {}


def _cached(key, builder):
    if key not in _cache:
        _cache[key] = builder()
    return _cache[key]


def load_graph(name, scale=_SCALE):
    """Edge list for a named graph input."""
    n = 1 << scale
    m = n * _DEG
    if name == "KRON":
        return _cached((name, scale), lambda: rmat(n, m, seed=101))
    if name == "WEB":
        return _cached(
            (name, scale), lambda: rmat(n, m, seed=202, a=0.45, b=0.22, c=0.22)
        )
    if name == "URND":
        return _cached((name, scale), lambda: uniform_random(n, m, seed=303))
    if name == "EURO":
        side = int(np.sqrt(n))
        return _cached((name, scale), lambda: mesh2d(side, seed=404))
    raise KeyError(f"unknown graph {name!r}; expected one of {GRAPH_NAMES}")


def load_csr(name, scale=_SCALE):
    """CSR of a named graph input (cached)."""
    return _cached(
        ("csr", name, scale), lambda: build_csr(load_graph(name, scale))
    )


def load_matrix(name, scale=_SCALE):
    """CSR matrix for a named matrix input."""
    if name == "POIS":
        side = int(np.sqrt(1 << scale))
        return _cached(
            (name, scale), lambda: poisson2d(side, seed=505).to_csr()
        )
    if name == "ROPT":
        n = 1 << scale
        return _cached(
            (name, scale),
            lambda: random_sparse(n, n, n * 6, seed=606).to_csr(),
        )
    raise KeyError(f"unknown matrix {name!r}; expected one of {MATRIX_NAMES}")


#: Which inputs each workload runs on (workload name -> input names).
WORKLOAD_INPUTS = {
    "degree-count": GRAPH_NAMES,
    "neighbor-populate": GRAPH_NAMES,
    "pagerank": GRAPH_NAMES,
    "radii": ("KRON", "WEB", "URND"),  # the paper skips EURO for Radii
    "integer-sort": ("U16", "U64"),  # max-key variants
    "spmv": MATRIX_NAMES,
    "pinv": ("PERM",),
    "transpose": MATRIX_NAMES,
    "symperm": ("SYM",),
}


def make_workload(workload_name, input_name, scale=_SCALE):
    """Instantiate a workload on a named input (cached)."""
    key = ("wl", workload_name, input_name, scale)

    def build():
        if workload_name == "degree-count":
            return DegreeCount(load_graph(input_name, scale))
        if workload_name == "neighbor-populate":
            return NeighborPopulate(load_graph(input_name, scale))
        if workload_name == "pagerank":
            return Pagerank(load_csr(input_name, scale))
        if workload_name == "radii":
            return Radii(load_csr(input_name, scale))
        if workload_name == "integer-sort":
            max_key = 1 << (scale - 3) if input_name == "U16" else 1 << (scale - 1)
            rng = np.random.default_rng(707)
            keys = rng.integers(0, max_key, size=(1 << scale) * 4, dtype=np.int64)
            return IntegerSort(keys, max_key)
        if workload_name == "spmv":
            return SpMV(load_matrix(input_name, scale))
        if workload_name == "pinv":
            return PInv(random_permutation(1 << (scale + 1), seed=808))
        if workload_name == "transpose":
            return Transpose(load_matrix(input_name, scale))
        if workload_name == "symperm":
            n = 1 << scale
            sym = _cached(
                ("sym", scale), lambda: random_symmetric(n, n * 4, seed=909)
            )
            return SymPerm(sym, random_permutation(n, seed=910))
        raise KeyError(f"unknown workload {workload_name!r}")

    workload = _cached(key, build)
    workload.cache_key = f"{workload_name}:{input_name}:{scale}"
    return workload


def workload_instances(scale=_SCALE, workloads=None):
    """Yield (workload_name, input_name, workload) over the whole suite."""
    for workload_name, input_names in WORKLOAD_INPUTS.items():
        if workloads is not None and workload_name not in workloads:
            continue
        for input_name in input_names:
            yield workload_name, input_name, make_workload(
                workload_name, input_name, scale
            )


def describe_inputs(scale=_SCALE):
    """Rows describing the input suite (the Table III analog)."""
    rows = []
    for name in GRAPH_NAMES:
        edges = load_graph(name, scale)
        rows.append(
            {
                "input": name,
                "kind": "graph",
                "vertices": edges.num_vertices,
                "edges": edges.num_edges,
            }
        )
    for name in MATRIX_NAMES:
        matrix = load_matrix(name, scale)
        rows.append(
            {
                "input": name,
                "kind": "matrix",
                "rows": matrix.num_rows,
                "nnz": matrix.nnz,
            }
        )
    return rows
