"""Compatibility shim over the workload registry (the old entry point).

The standard input suite — our scaled Table III — used to be built here
by a ``make_workload`` string ladder. It now lives declaratively in
:mod:`repro.workloads.registry`; this module re-exports the same names
with the same behavior (shared instance cache, identical ``cache_key``
bytes, identical KeyError semantics) so existing imports keep working.
New code should resolve through the registry (or
``repro.api.resolve_workload``) instead.
"""

from __future__ import annotations

import warnings

from repro.workloads import registry
from repro.workloads.registry import (
    GRAPH_NAMES,
    MATRIX_NAMES,
    WORKLOAD_INPUTS,
    load_csr,
    load_graph,
    load_matrix,
    workload_instances,
)

__all__ = [
    "GRAPH_NAMES",
    "MATRIX_NAMES",
    "WORKLOAD_INPUTS",
    "load_graph",
    "load_csr",
    "load_matrix",
    "make_workload",
    "workload_instances",
    "describe_inputs",
]

_SCALE = registry.DEFAULT_SCALE  # log2 of the vertex-namespace size


def make_workload(workload_name, input_name, scale=_SCALE):
    """Deprecated: use ``repro.workloads.registry.resolve`` (or
    ``repro.api.resolve_workload`` with a ``workload/input@scale`` spec).

    Same contract as ever — cached instances, ``cache_key`` stamped with
    the identical ``workload:input:scale`` bytes.
    """
    warnings.warn(
        "repro.harness.inputs.make_workload is deprecated; resolve through "
        "the workload registry (repro.api.resolve_workload)",
        DeprecationWarning,
        stacklevel=2,
    )
    return registry.resolve(workload_name, input_name, scale)


def describe_inputs(scale=_SCALE):
    """Rows describing the input suite (the Table III analog)."""
    return registry.describe_inputs(scale)
