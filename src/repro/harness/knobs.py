"""Central registry of every ``REPRO_*`` environment knob.

Reproduction lives and dies by knowing exactly which environment state can
influence a run. Every ``REPRO_*`` variable the package reads is declared
here — name, default, one-line docstring, and its digest disposition — and
read through :func:`read` (or :meth:`Knob.read`), never through a raw
``os.environ`` lookup at the call site. The ``repro lint`` knob-registry
rule (:mod:`repro.analysis`) enforces this statically: an ``os.environ`` /
``os.getenv`` read of a ``REPRO_*`` name outside this module, a knob
missing from this registry, or a registered knob undocumented in
EXPERIMENTS.md is a lint error.

None of the registered knobs may affect simulated counters (that is what
keeps them out of the result-cache digest); each entry's
``digest_exempt_reason`` says why, and the digest-purity lint rule
cross-checks the claim against :mod:`repro.analysis.digest_exempt`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["Knob", "KNOBS", "get", "read", "registered_names"]


@dataclass(frozen=True)
class Knob:
    """One environment knob: its name, default, and contract."""

    #: Environment variable name (``REPRO_*``).
    name: str
    #: Default used when the variable is unset (documentation; call sites
    #: that need a non-string default apply it after :meth:`read`).
    default: Optional[str]
    #: One-line contract, mirrored in EXPERIMENTS.md.
    doc: str
    #: Why the knob is allowed to stay out of result-cache digests.
    digest_exempt_reason: str

    def read(self, environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
        """The knob's raw string value, or ``None`` when unset.

        ``environ`` overrides ``os.environ`` (used by tests and by call
        sites that take an explicit environment mapping).
        """
        source = os.environ if environ is None else environ
        return source.get(self.name)


def _knob(name: str, default: Optional[str], doc: str, reason: str) -> Knob:
    return Knob(name=name, default=default, doc=doc, digest_exempt_reason=reason)


#: Every ``REPRO_*`` knob the package reads, keyed by variable name.
KNOBS: Mapping[str, Knob] = {
    knob.name: knob
    for knob in (
        _knob(
            "REPRO_TRACE_CHUNK",
            "262144",
            "Trace-assembly chunk size in irregular accesses; 0 "
            "materializes full traces (the reference path).",
            "all chunk sizes produce bit-identical counters "
            "(tests/harness/test_chunked_pipeline.py), so one cache entry "
            "serves every setting",
        ),
        _knob(
            "REPRO_BRANCH_BACKEND",
            "vector",
            "Branch-predictor kernel: 'vector' (NumPy LUT-scan) or "
            "'scalar' (the reference loop).",
            "backends are equivalence-tested to identical mispredict "
            "totals (tests/cpu/test_branch_vectorized.py)",
        ),
        _knob(
            "REPRO_KERNEL_BACKEND",
            "auto",
            "Compiled-kernel tier for the batched cache engine and the DES "
            "fast loop: 'auto' (numba, else cnative when a C compiler is "
            "present, else numpy), 'numpy', 'numba', or 'cnative' (explicit "
            "tiers error when their prerequisite is missing).",
            "kernel tiers are equivalence-tested to bit-identical counters "
            "(tests/cache/test_kernel_backends.py, "
            "tests/des/test_fastloop.py), so one cache entry serves every "
            "tier",
        ),
        _knob(
            "REPRO_TRACE_STORE",
            None,
            "Memory-mapped trace store: unset disables it, '1' enables it "
            "at the default directory (a 'traces' subdirectory of the "
            "result cache), any other value is the store directory.",
            "store entries are content-addressed materializations of "
            "phase traces, bit-identical to recomputation "
            "(tests/harness/test_tracestore.py); the store only skips "
            "redundant assembly work",
        ),
        _knob(
            "REPRO_RESULT_CACHE",
            None,
            "Result-cache directory override (default: the in-repo "
            "benchmarks/results/.cache/, or the XDG user cache for "
            "installed copies).",
            "chooses where results are stored, never what they contain; "
            "entries are addressed by content digest regardless of "
            "location",
        ),
        _knob(
            "REPRO_CHECKPOINT_DIR",
            None,
            "Sweep-checkpoint root override (default: the in-repo "
            "benchmarks/results/.runs/, or the XDG user cache for "
            "installed copies).",
            "chooses where run journals live; journaled counters are "
            "verified against per-point digests on resume",
        ),
        _knob(
            "REPRO_GOLDEN_DIR",
            None,
            "Golden-run store root override (default: the in-repo "
            "benchmarks/results/.golden/, or the XDG user cache for "
            "installed copies).",
            "chooses where golden entries live; entries are "
            "content-addressed by machine digest + point + mode and "
            "verified against per-point digests on replay",
        ),
        _knob(
            "REPRO_REPLAY_TIME_BAND",
            "0.5",
            "Relative wall-clock tolerance band for `repro replay` timing "
            "comparisons (0.5 = ±50%); counters are always compared "
            "bit-exact regardless of this knob.",
            "applies only to the wall-clock columns of replay reports; "
            "simulated counters are never scaled or filtered by it",
        ),
        _knob(
            "REPRO_REPLAY_PERTURB",
            None,
            "Fault-injection drill for the replay gate: an integer added "
            "to the first phase's instruction count of every replayed "
            "result before diffing, so CI can prove counter drift fails "
            "loudly.",
            "perturbs only the in-memory copy diffed by `repro replay`; "
            "simulation, caches, and golden entries never see the "
            "perturbed counters (tests/golden/test_replay.py)",
        ),
        _knob(
            "REPRO_FAULT_INJECT",
            None,
            "Deterministic worker kill/stall/torn-write directives for "
            "fault drills "
            "(kill=...;stall=...;torn=...;stall_seconds=...;state=...).",
            "injected faults abort attempts before counters exist; "
            "retried points produce identical counters "
            "(tests/harness/test_faults.py)",
        ),
        _knob(
            "REPRO_SERVICE_PORT",
            "8377",
            "Default TCP port for the `repro serve` sweep-service daemon "
            "(0 picks a free port, published in endpoint.json).",
            "transport plumbing: selects where the daemon listens; jobs "
            "execute through the same Runner regardless of port",
        ),
        _knob(
            "REPRO_SERVICE_QUEUE_MAX",
            "64",
            "Bounded job-queue depth of the sweep service; submissions "
            "beyond it are shed with 429 + Retry-After (fully-cached "
            "jobs are still served read-through).",
            "admission control only decides when a job runs, never what "
            "its points simulate; shed jobs are retried to the same "
            "content-addressed id (tests/service/test_jobqueue.py)",
        ),
        _knob(
            "REPRO_DATASET_DIR",
            None,
            "Ingested-dataset cache directory override (default: "
            "benchmarks/results/.datasets/, or the XDG user cache for "
            "installed copies); datasets are sha256-pinned regardless of "
            "where the files sit.",
            "chooses where downloaded dataset files live; every file is "
            "verified against its pinned sha256 before parsing "
            "(tests/graphs/test_ingest.py), so location never changes the "
            "ingested edges",
        ),
        _knob(
            "REPRO_SERVICE_DRAIN_DEADLINE",
            "30",
            "Seconds a SIGTERM'd sweep service waits for the in-flight "
            "job to drain before journaling it interrupted and exiting.",
            "shutdown timing only; drained or interrupted jobs resume "
            "from their sweep checkpoints bit-identically "
            "(tests/service/test_jobqueue.py)",
        ),
    )
}


def get(name: str) -> Knob:
    """The registered :class:`Knob` for ``name``; raises ``KeyError`` with
    the registered names when unknown (catches typo'd knob reads)."""
    try:
        return KNOBS[name]
    except KeyError:
        known = ", ".join(sorted(KNOBS))
        raise KeyError(
            f"unregistered repro knob {name!r}; registered knobs: {known}"
        ) from None


def read(
    name: str, environ: Optional[Mapping[str, str]] = None
) -> Optional[str]:
    """Read a registered knob from the environment (``None`` when unset)."""
    return get(name).read(environ)


def registered_names() -> tuple[str, ...]:
    """All registered knob names, sorted (the lint rule's ground truth)."""
    return tuple(sorted(KNOBS))
