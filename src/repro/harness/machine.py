"""The simulated machine (scaled Table II) used by every experiment.

Caches are 16x smaller than the paper's so that the scaled-down inputs
(DESIGN.md Section 4) preserve the working-set-to-cache ratios that drive
every locality effect: data footprints are ~8x a per-core LLC bank, bin
C-Buffers overflow the L2 exactly when the paper's would, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.config import HierarchyConfig
from repro.core.config import CobraConfig
from repro.cpu.timing import CoreParams

__all__ = ["MachineConfig", "DEFAULT_MACHINE"]


@dataclass(frozen=True)
class MachineConfig:
    """Everything the harness needs to cost an execution."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    core: CoreParams = field(default_factory=CoreParams)
    #: COBRA eviction FIFO sizes (Figure 13a shows 32 L1→L2 entries hide
    #: all bursts; 8 suffices between L2 and LLC).
    l1_evict_queue: int = 32
    l2_evict_queue: int = 8
    #: Cycles to dispatch/synchronize one bin's parallel Accumulate task
    #: (dynamic scheduling across 16 threads). Negligible when bins carry
    #: thousands of updates; dominant for PINV-style one-update-per-index
    #: kernels (Section VII-A).
    dispatch_cycles_per_bin: float = 900.0
    #: L2 ways the stream prefetcher needs to cover DRAM latency; reserving
    #: more ways for C-Buffers throttles streaming (Figure 13b).
    prefetch_ways_needed: int = 2
    #: Floor on the streaming-bandwidth derating so a fully partitioned L2
    #: still streams (the prefetcher degrades, it does not stop).
    stream_derate_floor: float = 0.35

    def cobra_config(self, num_indices, tuple_bytes, llc_reserved=None):
        """COBRA configuration for a workload on this machine."""
        return CobraConfig(
            hierarchy=self.hierarchy,
            num_indices=num_indices,
            tuple_bytes=tuple_bytes,
            **({} if llc_reserved is None else {"llc_reserved_ways": llc_reserved}),
        )

    def stream_bandwidth_scale(self, reserved_ways):
        """Streaming-bandwidth factor under way partitioning.

        ``reserved_ways`` is the phase's (l1, l2, llc) reservation tuple or
        None. Only the L2 matters: the prefetcher needs L2 capacity to keep
        streams ahead of the core.
        """
        if not reserved_ways:
            return 1.0
        l2_available = self.hierarchy.l2_ways - reserved_ways[1]
        if l2_available >= self.prefetch_ways_needed:
            return 1.0
        scale = l2_available / self.prefetch_ways_needed
        return max(self.stream_derate_floor, scale)

    def with_core(self, **overrides):
        """Copy with core-parameter overrides."""
        return replace(self, core=self.core.scaled(**overrides))


#: The default scaled machine every experiment runs on.
DEFAULT_MACHINE = MachineConfig()
