"""The experiment runner: PhaseSpecs → cycles, misses, traffic.

For each phase the runner (1) replays the irregular access segments —
interleaved with proportional streaming pressure — through the fast cache
simulator, (2) simulates the unpredictable branch sites through a GShare
predictor, (3) runs the eviction-buffer DES for COBRA Binning phases, and
(4) feeds everything to the analytic core timing model. Long phases are
simulated on a stationary prefix and scaled (``max_sim_events``), which
keeps full-suite sweeps tractable in pure Python.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.api import PhaseResult, RunResult
from repro.baselines.phi import PhiMachine
from repro.cache.address import AddressSpace
from repro.cache.batchsim import BatchHierarchy
from repro.cache.fastsim import FastHierarchy
from repro.cache.stats import MemoryTraffic, ServiceCounts
from repro.core import costs
from repro.core.comm import CobraCommMachine
from repro.cpu.branch import GSharePredictor, simulate_sites
from repro.cpu.timing import TimingModel
from repro.des.eviction_model import EvictionBufferModel, EvictionModelConfig
from repro.harness import knobs, modes
from repro.harness.machine import DEFAULT_MACHINE
from repro.harness.resultcache import run_digest
from repro.harness.telemetry import NULL_TELEMETRY
from repro.harness.tracestore import TRACE_STORE_KNOB, resolve_store
from repro.pb.planner import plan_bins
from repro.workloads.base import PhaseSpec

__all__ = ["Runner", "DEFAULT_TRACE_CHUNK"]

_ENGINES = ("auto", "fast", "batch")

_TRACE_CHUNK_ENV = "REPRO_TRACE_CHUNK"

#: Default irregular accesses per streamed trace chunk. Merged traces
#: (irregular accesses plus injected streaming lines) are built and
#: simulated one chunk at a time, so peak trace memory is O(chunk) rather
#: than O(trace); chunk results are bit-identical to the full build.
DEFAULT_TRACE_CHUNK = 262_144


class Runner:
    """Runs workloads under every execution mode on one machine.

    ``engine`` selects the trace simulator: ``"auto"`` (default) uses the
    batched :class:`BatchHierarchy` whenever the phase's effective cache
    configuration supports it (every shipped figure configuration does —
    DRRIP, prefetching, and reserved ways all have batched kernels) and
    the scalar :class:`FastHierarchy` otherwise, emitting a
    ``scalar_fallback`` telemetry event with the rejection reason on that
    degradation; ``"fast"`` forces the scalar engine; ``"batch"`` requires
    the machine's hierarchy to be batchable.

    ``result_cache`` (a :class:`~repro.harness.resultcache.ResultCache`)
    adds a persistent, on-disk layer under the per-instance memo so repeated
    figure suites and resumed sweeps skip completed simulations.

    ``trace_chunk`` bounds how many irregular accesses each streamed trace
    chunk carries (``None`` reads the ``REPRO_TRACE_CHUNK`` environment
    variable, falling back to :data:`DEFAULT_TRACE_CHUNK`; ``0`` disables
    chunking and materializes full traces, the reference path). The chunked
    and full pipelines produce bit-identical counters, so the knob is not
    part of the result-cache digest.

    ``trace_store`` (a :class:`~repro.harness.tracestore.TraceStore`, a
    directory path, or ``"1"`` for the default location; ``None`` reads
    the ``REPRO_TRACE_STORE`` knob, unset disables it) materializes each
    phase's interleaved trace once on disk and replays it through
    read-only memory maps, so parallel sweep workers share one physical
    copy per trace instead of each building its own. Stored traces are
    content-addressed and bit-identical to in-memory materialization.

    ``telemetry`` (a :class:`~repro.harness.telemetry.Telemetry`) records
    engine selections, per-phase simulation wall-clock, and — propagated to
    the attached ``result_cache`` — cache hits/misses; the default is the
    zero-overhead no-op sink. ``fault_policy`` (a
    :class:`~repro.harness.faults.FaultPolicy`) makes :meth:`run_many`
    route parallel sweeps through the fault-tolerant executor.
    """

    def __init__(
        self,
        machine=DEFAULT_MACHINE,
        max_sim_events=400_000,
        model_eviction_stalls=True,
        des_sample=30_000,
        comm_sample=300_000,
        engine="auto",
        result_cache=None,
        telemetry=None,
        fault_policy=None,
        trace_chunk=None,
        trace_store=None,
    ):
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if engine == "batch":
            reason = BatchHierarchy.reject_reason(machine.hierarchy)
            if reason is not None:
                raise ValueError(
                    f"engine='batch' but the machine's hierarchy needs the "
                    f"scalar engine ({reason}); use 'auto'"
                )
        self.machine = machine
        self.max_sim_events = max_sim_events
        self.model_eviction_stalls = model_eviction_stalls
        self.des_sample = des_sample
        self.comm_sample = comm_sample
        self.engine = engine
        self.trace_chunk = trace_chunk
        if trace_store is None:
            trace_store = knobs.read(TRACE_STORE_KNOB)
        self.trace_store = resolve_store(trace_store)
        self.result_cache = result_cache
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.fault_policy = fault_policy
        if telemetry is not None and result_cache is not None:
            result_cache.telemetry = self.telemetry
        self.timing = TimingModel(machine.core)
        self._cache = {}

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #

    def plan(self, workload):
        """The workload's three bin-count operating points."""
        return plan_bins(
            workload.num_indices, workload.element_bytes, self.machine.hierarchy
        )

    def cobra_config(self, workload, llc_reserved=None):
        """COBRA configuration for ``workload`` on this machine."""
        return self.machine.cobra_config(
            workload.num_indices, workload.tuple_bytes, llc_reserved
        )

    def run(self, workload, mode, use_cache=True):
        """Execute ``workload`` under ``mode``; returns a frozen
        :class:`~repro.api.RunResult`.

        ``mode`` may be an :class:`~repro.harness.modes.ExecutionMode`
        member or its string value; anything else raises ``ValueError``
        listing the valid modes. Results are memoized per (workload, mode)
        when the workload carries a ``cache_key`` (set by the input suite),
        and read from / stored to the persistent ``result_cache`` when one
        is attached — restored results carry ``provenance="disk"``. Pass
        ``use_cache=False`` to force a fresh simulation (it is still
        memoized for later callers, but never read from or written to
        disk).
        """
        mode = modes.ExecutionMode.coerce(mode)
        if mode == modes.CHARACTERIZATION:
            return self.run_characterization(workload, use_cache=use_cache)
        key = (getattr(workload, "cache_key", None), str(mode))
        if use_cache and key[0] is not None:
            cached = self._cached(key)
            if cached is not None:
                return cached
        phases, des_config = self._phases_for(workload, mode)
        result = RunResult(
            workload=workload.name,
            mode=str(mode),
            phases=tuple(
                self._simulate_phase(workload, phase, des_config)
                for phase in phases
            ),
        )
        self._store(key, result, persist=use_cache)
        return result

    def run_characterization(self, workload, use_cache=True):
        """Irregular-update locality characterization (Figure 2).

        Identical to baseline for every workload except Integer Sort, whose
        performance baseline is a comparison sort but whose irregular
        formulation is what Figure 2 characterizes. Returns a
        :class:`~repro.api.RunResult` shaped exactly like :meth:`run`
        output (regression-tested).
        """
        key = (getattr(workload, "cache_key", None), str(modes.CHARACTERIZATION))
        if use_cache and key[0] is not None:
            cached = self._cached(key)
            if cached is not None:
                return cached
        result = RunResult(
            workload=workload.name,
            mode=str(modes.CHARACTERIZATION),
            phases=tuple(
                self._simulate_phase(workload, phase, None)
                for phase in workload.characterization_phases()
            ),
        )
        self._store(key, result, persist=use_cache)
        return result

    def run_many(
        self,
        points,
        jobs=None,
        use_cache=True,
        checkpoint=None,
        handle_signals=False,
    ):
        """Run ``(workload, mode)`` points, optionally across processes.

        Returns the :class:`~repro.api.RunResult` list in input order. With ``jobs``
        > 1 the points are fanned out through the process-pool sweep
        executor (see :func:`repro.harness.parallel.run_sweep`); results are
        identical to the serial path — every point is an independent
        simulation and the executor restores submission order.

        With a ``fault_policy`` attached the fan-out goes through the
        fault-tolerant executor instead: crashed or hung workers cost only
        the lost points, and any point the pool could not complete is
        recomputed serially in-process here, preserving this method's
        list-of-counters contract (a point that fails even in-process
        raises, exactly as the serial path would).

        ``checkpoint`` (a :class:`~repro.harness.checkpoint.SweepCheckpoint`)
        always routes through the fault-tolerant executor — even for
        ``jobs=1`` — so every completed point is journaled, previously
        journaled points are spliced back without re-simulation, and (with
        ``handle_signals=True``) SIGINT/SIGTERM drain gracefully. An
        interrupted sweep cannot satisfy the list contract, so it raises
        :class:`~repro.harness.faults.SweepInterrupted` carrying the
        partial :class:`~repro.harness.faults.SweepOutcome`.
        """
        points = list(points)
        use_resilient = checkpoint is not None or (
            self.fault_policy is not None
            and jobs is not None
            and jobs > 1
            and len(points) > 1
        )
        if use_resilient:
            from repro.harness.faults import (
                SweepInterrupted,
                run_sweep_resilient,
            )

            outcome = run_sweep_resilient(
                self,
                points,
                jobs=jobs if jobs is not None else 1,
                use_cache=use_cache,
                policy=self.fault_policy,
                checkpoint=checkpoint,
                handle_signals=handle_signals,
            )
            if outcome.interrupted:
                raise SweepInterrupted(outcome)
            results = list(outcome.results)
            for failure in outcome.failures:
                workload, mode = points[failure.index]
                results[failure.index] = self.run(
                    workload, mode, use_cache=use_cache
                )
                if checkpoint is not None:
                    checkpoint.record(failure.index, results[failure.index])
            if checkpoint is not None and outcome.failures:
                checkpoint.mark_completed()
            return results
        if jobs is not None and jobs > 1 and len(points) > 1:
            from repro.harness.parallel import run_sweep

            return run_sweep(self, points, jobs=jobs, use_cache=use_cache)
        return [
            self.run(workload, mode, use_cache=use_cache)
            for workload, mode in points
        ]

    # ------------------------------------------------------------------ #
    # Memo + persistent cache plumbing
    # ------------------------------------------------------------------ #

    def _digest_params(self):
        return {
            "max_sim_events": self.max_sim_events,
            "model_eviction_stalls": self.model_eviction_stalls,
            "des_sample": self.des_sample,
            "comm_sample": self.comm_sample,
        }

    def _digest(self, cache_key, mode):
        return run_digest(self.machine, self._digest_params(), cache_key, mode)

    def point_digest(self, cache_key, mode):
        """Content digest of one (workload, mode) point on this runner.

        This is the persistent result cache's key and the identity recorded
        in checkpoint manifests/journals; it covers the machine config and
        every simulation-affecting runner knob.
        """
        return self._digest(cache_key, mode)

    def machine_digest(self):
        """Digest of the machine + runner configuration alone (no point)."""
        return run_digest(self.machine, self._digest_params(), "", "machine")

    def _cached(self, key):
        """Memoized or persisted result for ``key``, or ``None``."""
        if key[0] is None:
            return None
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if self.result_cache is not None:
            stored = self.result_cache.get(self._digest(*key))
            if stored is not None:
                self._cache[key] = stored
                return stored
        return None

    def _store(self, key, counters, persist):
        if key[0] is None:
            return
        self._cache[key] = counters
        if persist and self.result_cache is not None:
            self.result_cache.put(self._digest(*key), counters)

    def spawn_spec(self):
        """Picklable constructor kwargs for rebuilding this runner in a
        worker process (the in-memory memo does not travel)."""
        return {
            "machine": self.machine,
            "max_sim_events": self.max_sim_events,
            "model_eviction_stalls": self.model_eviction_stalls,
            "des_sample": self.des_sample,
            "comm_sample": self.comm_sample,
            "engine": self.engine,
            "trace_chunk": self.trace_chunk,
            "trace_store_dir": (
                str(self.trace_store.directory)
                if self.trace_store is not None
                else None
            ),
            "cache_dir": (
                str(self.result_cache.directory)
                if self.result_cache is not None
                else None
            ),
            "telemetry_path": (
                str(self.telemetry.path)
                if getattr(self.telemetry, "path", None) is not None
                else None
            ),
        }

    @classmethod
    def from_spec(cls, spec):
        """Rebuild a runner from :meth:`spawn_spec` output."""
        from repro.harness.resultcache import ResultCache
        from repro.harness.telemetry import JsonlTelemetry

        spec = dict(spec)
        cache_dir = spec.pop("cache_dir", None)
        telemetry_path = spec.pop("telemetry_path", None)
        trace_store_dir = spec.pop("trace_store_dir", None)
        telemetry = JsonlTelemetry(telemetry_path) if telemetry_path else None
        result_cache = ResultCache(cache_dir) if cache_dir else None
        return cls(
            result_cache=result_cache,
            telemetry=telemetry,
            trace_store=trace_store_dir,
            **spec,
        )

    def run_with_spec(self, workload, spec, include_init=True):
        """Software PB at an explicit :class:`BinSpec` (bin-count sweeps).

        Returns a :class:`~repro.api.RunResult` whose mode is the ad-hoc
        string ``pb@<bins>`` (bin sweeps fall outside
        :class:`~repro.harness.modes.ExecutionMode`).
        """
        return RunResult(
            workload=workload.name,
            mode=f"pb@{spec.num_bins}",
            phases=tuple(
                self._simulate_phase(workload, phase, None)
                for phase in workload.pb_phases(spec, include_init=include_init)
            ),
        )

    # ------------------------------------------------------------------ #
    # Phase construction per mode
    # ------------------------------------------------------------------ #

    def _phases_for(self, workload, mode):
        plan = self.plan(workload)
        if mode == modes.BASELINE:
            return workload.baseline_phases(), None
        if mode == modes.PB_SW:
            return workload.pb_phases(plan.compromise), None
        if mode == modes.PB_SW_IDEAL:
            binning = workload.pb_phases(
                plan.binning_best, include_init=False
            )[0]
            accumulate = workload._accumulate_phase(plan.accumulate_best)
            init = workload._init_phase(plan.accumulate_best)
            return [init, binning, accumulate], None
        if mode == modes.COBRA:
            cobra = self.cobra_config(workload)
            des_config = self._des_config(workload, cobra)
            return workload.cobra_phases(cobra), des_config
        if mode in modes.COMMUTATIVE_ONLY_MODES:
            if not workload.commutative:
                raise ValueError(
                    f"{mode} requires commutative updates; "
                    f"{workload.name} is non-commutative (Section III-B)"
                )
            return self._comm_phases(workload, mode), None
        raise ValueError(f"unknown mode {mode!r}")

    def _des_config(self, workload, cobra):
        if not self.model_eviction_stalls:
            return None
        return EvictionModelConfig(
            num_indices=workload.num_indices,
            l1_buffers=cobra.l1.num_buffers,
            l2_buffers=cobra.l2.num_buffers,
            llc_buffers=cobra.llc.num_buffers,
            tuples_per_line=cobra.tuples_per_line,
            l1_evict_queue=self.machine.l1_evict_queue,
            l2_evict_queue=self.machine.l2_evict_queue,
        )

    def _comm_phases(self, workload, mode):
        """PHI / COBRA-COMM: coalescing machines define Binning output."""
        plan = self.plan(workload)
        cobra = self.cobra_config(workload)
        n = workload.num_updates
        sample_n = min(n, self.comm_sample)
        indices = workload.update_indices[:sample_n]
        values = (
            np.ones(sample_n)
            if workload.update_values is None
            else workload.update_values[:sample_n]
        )
        if mode == modes.PHI:
            machine = PhiMachine(cobra, plan.compromise, workload.reduce_op)
            accumulate_spec = plan.compromise
        else:
            machine = CobraCommMachine(cobra, workload.reduce_op)
            accumulate_spec = cobra.memory_bin_spec
        machine.bininit()
        machine.binupdate_many(indices.tolist(), values.tolist())
        machine.binflush()
        scale = n / sample_n
        coalesce_rate = machine.coalesced / sample_n
        n_effective = int(round(n * (1.0 - coalesce_rate)))
        hw_lines = int(round(machine.memory_bins.lines_written * scale))

        init = workload._init_phase(accumulate_spec)
        binning = PhaseSpec(
            name="binning",
            instructions=n * costs.COBRA_BIN_TUPLE_INSTRS,
            branches=n,
            branch_sites=workload.extra_branch_sites("binning"),
            segments=[],
            streaming_bytes=n * workload.stream_bytes_per_update,
            hw_write_lines=hw_lines,
            reserved_ways=(
                cobra.l1_reserved_ways,
                cobra.l2_reserved_ways,
                cobra.llc_reserved_ways,
            ),
        )
        # Accumulate replays the coalesced stream. Its locality equals the
        # uncoalesced bin-major replay — coalesced updates are duplicates
        # within a buffer window, i.e. accesses that would have hit L1 —
        # so we simulate the full replay and discount the coalesced count
        # from the L1 hits while scaling work to the surviving tuples.
        accumulate = workload._accumulate_phase(accumulate_spec)
        accumulate.instructions = n_effective * workload.accum_instr_per_update
        accumulate.branches = n_effective
        accumulate.streaming_bytes = n_effective * workload.tuple_bytes
        accumulate.coalesced_discount = int(round(machine.coalesced * scale))
        return [init, binning, accumulate]

    # ------------------------------------------------------------------ #
    # Phase simulation
    # ------------------------------------------------------------------ #

    def _simulate_phase(self, workload, phase, des_config):
        wall_start = time.perf_counter() if self.telemetry.enabled else 0.0
        machine = self.machine
        line_bytes = machine.hierarchy.line_bytes
        irregular = ServiceCounts()
        streaming = ServiceCounts()
        dram_writebacks = 0.0
        total_events = phase.irregular_accesses
        trace_scale = getattr(phase, "trace_scale", 1.0)

        engine = None
        if phase.segments:
            arrays, flags, sim_events = self._trace_segments(phase, line_bytes)
            scale = (total_events / sim_events if sim_events else 1.0) * trace_scale
            reserved = phase.reserved_ways or (0, 0, 0)
            hierarchy = self._make_hierarchy(
                machine.hierarchy.with_reserved(*reserved)
            )
            engine = "batch" if isinstance(hierarchy, BatchHierarchy) else "fast"
            stream_lines_total = phase.streaming_bytes // line_bytes
            chunk = self.trace_chunk_size()
            if chunk:
                if self.trace_store is not None:
                    lines, writes = self.trace_store.materialize(arrays, flags)
                    chunks = _sliced_chunks(lines, writes, len(arrays), chunk)
                else:
                    chunks = self._iter_trace_chunks(arrays, flags, chunk)
                irregular, streaming = self._simulate_chunked(
                    hierarchy, chunks, stream_lines_total, total_events
                )
            else:
                if self.trace_store is not None:
                    lines, writes = self.trace_store.materialize(arrays, flags)
                else:
                    lines, writes = _materialize_trace(arrays, flags)
                irregular, streaming = self._simulate_interleaved(
                    hierarchy, lines, writes, stream_lines_total, total_events
                )
            irregular = _scaled(irregular, scale)
            streaming = _scaled(streaming, scale)
            if phase.coalesced_discount:
                irregular.l1 = max(0, irregular.l1 - phase.coalesced_discount)
            dram_writebacks = hierarchy.dram_writes * scale
        else:
            scale = trace_scale

        mispredicts = simulate_sites(
            phase.branch_sites, GSharePredictor()
        )

        stream_scale = machine.stream_bandwidth_scale(phase.reserved_ways)
        stream_bw_bytes = (
            phase.streaming_bytes
            + (phase.nt_write_lines + phase.hw_write_lines) * line_bytes
        ) / stream_scale
        timing = self.timing.phase_timing(
            phase.name,
            phase.instructions,
            irregular,
            stream_bw_bytes,
            mispredicts,
            shared_llc=phase.shared_llc,
        )
        cycles = timing.total_cycles
        cycles += phase.num_bins * machine.dispatch_cycles_per_bin
        if phase.des_trace is not None and des_config is not None:
            stall_fraction = self._eviction_stall_fraction(
                phase.des_trace, des_config
            )
            cycles *= 1.0 + stall_fraction

        traffic = MemoryTraffic(
            reads=int(phase.streaming_bytes // line_bytes + irregular.dram),
            writes=int(
                dram_writebacks + phase.nt_write_lines + phase.hw_write_lines
            ),
            line_bytes=line_bytes,
        )
        if self.telemetry.enabled:
            self.telemetry.emit_timed(
                "phase_timed",
                time.perf_counter() - wall_start,
                phase=phase.name,
                workload=workload.name,
                engine=engine,
                timing=timing.as_dict(),
            )
        return PhaseResult(
            name=phase.name,
            instructions=int(phase.instructions),
            branches=phase.branches,
            branch_mispredicts=mispredicts,
            irregular_service=irregular,
            streaming_service=streaming,
            streaming_bytes=phase.streaming_bytes,
            traffic=traffic,
            cycles=cycles,
            engine=engine,
        )

    def _make_hierarchy(self, config):
        """Engine dispatch: batched when the config is expressible, else
        scalar (equivalence between the two is test-asserted).

        A fallback to the scalar engine that the caller did not ask for is
        a silent order-of-magnitude slowdown, so it emits a
        ``scalar_fallback`` telemetry event carrying the batched engine's
        rejection reason (surfaced by ``repro report``)."""
        if self.engine != "fast":
            reason = BatchHierarchy.reject_reason(config)
            if reason is None:
                if self.telemetry.enabled:
                    self.telemetry.emit("engine_selected", engine="batch")
                return BatchHierarchy(config)
            if self.telemetry.enabled:
                self.telemetry.emit("scalar_fallback", reason=reason)
        if self.telemetry.enabled:
            self.telemetry.emit("engine_selected", engine="fast")
        return FastHierarchy(config)

    def trace_chunk_size(self):
        """Irregular accesses per streamed chunk (0 = full materialization)."""
        if self.trace_chunk is not None:
            return int(self.trace_chunk)
        env = knobs.read(_TRACE_CHUNK_ENV)
        if env is not None:
            return int(env)
        return DEFAULT_TRACE_CHUNK

    def _trace_segments(self, phase, line_bytes):
        """Per-segment line arrays + write flags, sampled to the budget.

        Also places every region in a fresh address space and records the
        first free line above it (``_stream_base``) for stream injection.
        Returns ``(arrays, write_flags, sim_events)`` where ``sim_events``
        is the length of the element-wise interleaved trace.
        """
        space = AddressSpace(line_bytes)
        arrays = []
        flags = []
        budget = max(1, self.max_sim_events // len(phase.segments))
        for region, indices, write in phase.sampled_segments(budget):
            if region.name not in space:
                space.allocate(
                    region.name, region.element_bytes, region.num_elements
                )
            arrays.append(space[region.name].lines_of(indices))
            flags.append(write)
        shortest = min(len(a) for a in arrays)
        if len(arrays) > 1:
            arrays = [a[:shortest] for a in arrays]
        # Streaming pressure is injected from a disjoint high region.
        self._stream_base = space.total_lines + 1
        sim_events = len(arrays[0]) if len(arrays) == 1 else shortest * len(arrays)
        return arrays, flags, sim_events

    def _build_trace(self, phase, line_bytes):
        """Interleave segments element-wise into (lines, writes) arrays."""
        arrays, flags, sim_events = self._trace_segments(phase, line_bytes)
        lines, writes = _materialize_trace(arrays, flags)
        return lines, writes, sim_events

    def _iter_trace_chunks(self, arrays, flags, chunk):
        """Yield ``(lines, writes)`` slices of the interleaved trace.

        Chunk boundaries fall on whole interleave rounds (one access per
        segment), so concatenating the chunks reproduces
        :func:`_materialize_trace` exactly.
        """
        width = len(arrays)
        if width == 1:
            lines = np.ascontiguousarray(arrays[0], dtype=np.int64)
            for start in range(0, len(lines), chunk):
                part = lines[start : start + chunk]
                yield part, np.full(len(part), flags[0])
            return
        rounds = len(arrays[0])
        per_chunk = max(1, chunk // width)
        flag_row = np.asarray(flags, dtype=bool)
        for start in range(0, rounds, per_chunk):
            stop = min(rounds, start + per_chunk)
            lines = np.stack([a[start:stop] for a in arrays], axis=1).ravel()
            yield (
                np.ascontiguousarray(lines, dtype=np.int64),
                np.tile(flag_row, stop - start),
            )

    def _merge_chunk(self, lines, writes, stream_lines, total_events, offset):
        """Inject stream lines into one trace chunk.

        ``offset`` is the global index of the chunk's first irregular
        access. Injection is integer-exact: after irregular access ``k``
        (0-based, global) the cumulative number of injected stream lines is
        ``((k + 1) * stream_lines) // total_events`` — deterministic,
        identical for the scalar and batched engines (where a float
        accumulator would drift with evaluation order), and sliceable, so
        per-chunk merges concatenate to exactly the full merged trace.
        """
        n = lines.size
        if stream_lines <= 0 or total_events <= 0 or n == 0:
            return lines, writes, np.zeros(n, dtype=bool)
        idx = np.arange(offset, offset + n, dtype=np.int64)
        before = offset + offset * stream_lines // total_events
        pos = idx + idx * stream_lines // total_events - before
        end = offset + n
        total = end + end * stream_lines // total_events - before
        merged_lines = np.empty(total, dtype=np.int64)
        merged_writes = np.zeros(total, dtype=bool)
        is_stream = np.ones(total, dtype=bool)
        is_stream[pos] = False
        merged_lines[pos] = lines
        merged_writes[pos] = writes
        stream_before = offset * stream_lines // total_events
        merged_lines[is_stream] = self._stream_base + np.arange(
            stream_before, stream_before + (total - n), dtype=np.int64
        )
        return merged_lines, merged_writes, is_stream

    def _interleaved_trace(self, lines, writes, stream_lines, total_events):
        """Merge irregular accesses with uniformly injected stream lines."""
        return self._merge_chunk(lines, writes, stream_lines, total_events, 0)

    def _simulate_chunked(self, hierarchy, chunks, stream_lines, total_events):
        """Stream trace chunks through the hierarchy; O(chunk) peak memory.

        ``chunks`` yields ``(lines, writes)`` pairs — from
        :meth:`_iter_trace_chunks` (in-memory assembly) or from
        :func:`_sliced_chunks` over a store-mapped trace; both cut on the
        same interleave-round boundaries. Hierarchy state persists across
        ``simulate``/``access`` calls, so per-chunk replay of the sliced
        merged trace is bit-identical to one full-trace replay.
        """
        irregular = np.zeros(5, dtype=np.int64)
        streaming = np.zeros(5, dtype=np.int64)
        batched = isinstance(hierarchy, BatchHierarchy)
        offset = 0
        for lines, writes in chunks:
            merged_lines, merged_writes, is_stream = self._merge_chunk(
                lines, writes, stream_lines, total_events, offset
            )
            offset += lines.size
            if batched:
                served = hierarchy.simulate(merged_lines, merged_writes)
                irregular += np.bincount(served[~is_stream], minlength=5)
                streaming += np.bincount(served[is_stream], minlength=5)
            else:
                access = hierarchy.access
                for line, is_write, stream in zip(
                    merged_lines.tolist(),
                    merged_writes.tolist(),
                    is_stream.tolist(),
                ):
                    bucket = streaming if stream else irregular
                    bucket[access(line, is_write)] += 1
        return (
            ServiceCounts(
                int(irregular[1]),
                int(irregular[2]),
                int(irregular[3]),
                int(irregular[4]),
            ),
            ServiceCounts(
                int(streaming[1]),
                int(streaming[2]),
                int(streaming[3]),
                int(streaming[4]),
            ),
        )

    def _simulate_interleaved(
        self, hierarchy, lines, writes, stream_lines, total_events
    ):
        """Replay the merged trace; split counts into irregular/streaming."""
        merged_lines, merged_writes, is_stream = self._interleaved_trace(
            lines, writes, stream_lines, total_events
        )
        if isinstance(hierarchy, BatchHierarchy):
            served = hierarchy.simulate(merged_lines, merged_writes)
            irregular = np.bincount(served[~is_stream], minlength=5)
            streaming = np.bincount(served[is_stream], minlength=5)
        else:
            irregular = [0, 0, 0, 0, 0]
            streaming = [0, 0, 0, 0, 0]
            access = hierarchy.access
            for line, is_write, stream in zip(
                merged_lines.tolist(),
                merged_writes.tolist(),
                is_stream.tolist(),
            ):
                bucket = streaming if stream else irregular
                bucket[access(line, is_write)] += 1
        return (
            ServiceCounts(
                int(irregular[1]),
                int(irregular[2]),
                int(irregular[3]),
                int(irregular[4]),
            ),
            ServiceCounts(
                int(streaming[1]),
                int(streaming[2]),
                int(streaming[3]),
                int(streaming[4]),
            ),
        )

    def _eviction_stall_fraction(self, trace, des_config):
        # Memoized by *content*: the sampled trace bytes plus every DES
        # input. An id(trace) key would alias distinct traces once the
        # allocator reuses a collected array's address.
        sample = np.asarray(trace[: self.des_sample], dtype=np.int64)
        key = ("des", hashlib.sha256(sample.tobytes()).hexdigest(),
               des_config.num_indices, des_config.l1_evict_queue,
               des_config.l2_evict_queue, des_config.l1_buffers,
               des_config.l2_buffers, des_config.llc_buffers,
               des_config.tuples_per_line)
        if key in self._cache:
            return self._cache[key]
        result = EvictionBufferModel(des_config).run(sample)
        self._cache[key] = result.stall_fraction
        return result.stall_fraction


def _sliced_chunks(lines, writes, width, chunk):
    """Yield chunk views of a materialized (possibly mmap'd) trace.

    Boundaries match :meth:`Runner._iter_trace_chunks` exactly: whole
    interleave rounds of ``width`` accesses, ``max(1, chunk // width)``
    rounds per chunk — so the two chunk sources replay identically. Views
    into a memory-mapped trace stay zero-copy until the stream merge.
    """
    step = chunk if width == 1 else max(1, chunk // width) * width
    for start in range(0, len(lines), step):
        yield lines[start : start + step], writes[start : start + step]


def _materialize_trace(arrays, flags):
    """Element-wise interleave of pre-sampled segment arrays (full build)."""
    if len(arrays) == 1:
        lines = arrays[0]
        writes = np.full(len(lines), flags[0])
    else:
        lines = np.stack(arrays, axis=1).ravel()
        writes = np.tile(np.asarray(flags, dtype=bool), len(arrays[0]))
    return np.ascontiguousarray(lines, dtype=np.int64), writes


def _scaled(counts: ServiceCounts, scale: float) -> ServiceCounts:
    """Scale sampled service counts back to the full phase."""
    return ServiceCounts(
        int(round(counts.l1 * scale)),
        int(round(counts.l2 * scale)),
        int(round(counts.llc * scale)),
        int(round(counts.dram * scale)),
    )
