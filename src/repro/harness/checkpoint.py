"""Sweep checkpoint/resume: run manifests + append-only completion journals.

The fault layer (:mod:`repro.harness.faults`) lets a sweep survive the death
of a *worker*; this module lets it survive the death of the *parent*. A
full figure campaign is a multi-hour job, and a Ctrl-C, OOM-kill, or machine
preemption must never throw away completed simulation work.

Every checkpointed sweep gets a run directory ``<root>/<run_id>/`` holding:

``manifest.json``
    The immutable identity of the sweep: the machine/runner config digest,
    and one spec per point (``cache_key``, mode, and the point's full
    :func:`~repro.harness.resultcache.run_digest`). The ``run_id`` is a
    content hash of exactly these specs, so re-running the same sweep with
    the same configuration *attaches to the same run* and resumes it, while
    any config change produces a fresh run (stale journals can never be
    spliced into the wrong sweep).

``journal.jsonl``
    Append-only record of completed points. Each line is one point's
    counters (via :func:`~repro.harness.resultcache.counters_to_dict`) plus
    its digest, written with a single ``os.write`` on an ``O_APPEND``
    descriptor — atomic at the line level, so a ``kill -9`` can at worst
    tear the final line, which :meth:`SweepCheckpoint.completed_counters`
    skips (with a telemetry warning) instead of crashing.

``status.json``
    Atomically replaced ``running`` / ``interrupted`` / ``failed`` /
    ``completed`` marker used by ``repro runs``.

Resuming (``repro resume <run-id>``) rebuilds the workloads from the
manifest's cache keys, splices journaled counters back bit-identically
(ints are exact; float repr round-trips), and re-executes only the points
the journal does not cover.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.harness import knobs
from repro.harness.resultcache import (
    FORMAT_VERSION,
    _is_repo_checkout,
    counters_from_dict,
    counters_to_dict,
)
from repro.harness.telemetry import NULL_TELEMETRY

__all__ = [
    "SweepCheckpoint",
    "content_id",
    "default_checkpoint_dir",
    "list_runs",
    "format_runs",
    "run_summary",
    "runs_payload",
]

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
STATUS_NAME = "status.json"

STATUS_RUNNING = "running"
STATUS_INTERRUPTED = "interrupted"
STATUS_FAILED = "failed"
STATUS_COMPLETED = "completed"


def default_checkpoint_dir(package_file=None):
    """Run-checkpoint root: ``$REPRO_CHECKPOINT_DIR``, the in-repo default
    (``benchmarks/results/.runs/``), or a per-user dir for installed copies.

    ``package_file`` is this module's path (overridable for tests).
    """
    env = knobs.read("REPRO_CHECKPOINT_DIR")
    if env:
        return Path(env)
    source = Path(package_file if package_file else __file__).resolve()
    try:
        repo_root = source.parents[3]
    except IndexError:
        repo_root = None
    if repo_root is not None and _is_repo_checkout(repo_root):
        return repo_root / "benchmarks" / "results" / ".runs"
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "runs"


def _atomic_write_json(path, payload):
    """Write ``payload`` as JSON via tmp file + fsync + rename (never torn).

    The fsync before the rename matters: ``os.replace`` makes the *name*
    switch atomic, but without flushing the tmp file's data first a power
    loss can journal the rename while the blocks are still in the page
    cache — publishing a zero-length (or partial) file under the final
    name. Durability requires flush + fsync, then rename.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True, indent=2))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def content_id(payload, length=12):
    """Deterministic short id of a JSON-safe payload (sweep/golden ids).

    The canonical serialization (sorted keys) makes the id content-addressed:
    identical payloads — machine digest plus point specs — always map to the
    same id, in any process, ever. Shared by :meth:`SweepCheckpoint.attach`
    and the golden-run store (:mod:`repro.golden.store`).
    """
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]


class SweepCheckpoint:
    """One sweep's manifest + journal under ``<root>/<run_id>/``."""

    def __init__(self, run_dir, manifest, telemetry=None):
        self.run_dir = Path(run_dir)
        self.manifest = manifest
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._journal_fd = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _specs_for(runner, points):
        specs = []
        for workload, mode in points:
            cache_key = getattr(workload, "cache_key", None)
            if cache_key is None:
                raise ValueError(
                    f"workload {workload.name!r} has no cache_key; "
                    "checkpointed sweeps rebuild workloads from keys"
                )
            specs.append(
                {
                    "point": cache_key,
                    "mode": mode,
                    "digest": runner.point_digest(cache_key, mode),
                }
            )
        return specs

    @classmethod
    def attach(cls, root, runner, points, label=None, telemetry=None):
        """Create — or resume — the checkpoint for exactly this sweep.

        The run id is a content hash of the machine digest and the ordered
        point specs, so attaching twice with an identical configuration
        reuses the existing run directory (and its journal), while any
        change to the machine, runner knobs, or point list lands in a
        fresh run.
        """
        specs = cls._specs_for(runner, list(points))
        return cls.attach_specs(
            root,
            runner.machine_digest(),
            specs,
            label=label,
            telemetry=telemetry,
        )

    @classmethod
    def attach_specs(cls, root, machine_digest, specs, label=None, telemetry=None):
        """Attach by pre-computed point specs, no workload objects needed.

        The sweep service admits jobs from ``(cache_key, mode, digest)``
        specs alone — building the actual workload arrays is deferred to
        the executor — so checkpoint attachment must not force a workload
        build either. :meth:`attach` derives the specs from live
        ``(workload, mode)`` points and lands here; both produce the same
        content-addressed ``run_id``.
        """
        specs = [dict(spec) for spec in specs]
        run_id = content_id({"machine": machine_digest, "points": specs})
        run_dir = Path(root) / run_id
        manifest_path = run_dir / MANIFEST_NAME
        if manifest_path.is_file():
            manifest = json.loads(manifest_path.read_text("utf-8"))
        else:
            manifest = {
                "version": FORMAT_VERSION,
                "run_id": run_id,
                "label": label,
                # repro: noqa[nondet] creation stamp is operator metadata;
                # the run id hashes machine digest + point specs only
                "created": time.time(),
                "machine_digest": machine_digest,
                "points": specs,
            }
            run_dir.mkdir(parents=True, exist_ok=True)
            _atomic_write_json(manifest_path, manifest)
        checkpoint = cls(run_dir, manifest, telemetry)
        checkpoint.mark(STATUS_RUNNING)
        return checkpoint

    @classmethod
    def load(cls, root, run_id, telemetry=None):
        """Open an existing run (``repro resume``); raises if absent."""
        run_dir = Path(root) / run_id
        manifest_path = run_dir / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"no checkpointed run {run_id!r} under {root}"
            )
        return cls(run_dir, json.loads(manifest_path.read_text("utf-8")), telemetry)

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def run_id(self):
        return self.manifest["run_id"]

    @property
    def label(self):
        return self.manifest.get("label")

    @property
    def total(self):
        """Number of points in the sweep."""
        return len(self.manifest["points"])

    def verify(self, runner):
        """Raise ``ValueError`` when ``runner`` would not reproduce the
        manifest's digests (machine or simulation knobs changed)."""
        for spec in self.manifest["points"]:
            digest = runner.point_digest(spec["point"], spec["mode"])
            if digest != spec["digest"]:
                raise ValueError(
                    f"run {self.run_id}: digest mismatch for "
                    f"{spec['point']} ({spec['mode']}); the machine or "
                    "runner configuration changed since this run was "
                    "checkpointed — journaled counters cannot be spliced"
                )

    def points(self):
        """Rebuild the ``(workload, mode)`` list from the manifest."""
        from repro.workloads.registry import resolve_point

        rebuilt = []
        for spec in self.manifest["points"]:
            rebuilt.append((resolve_point(spec["point"]), spec["mode"]))
        return rebuilt

    # ------------------------------------------------------------------ #
    # Journal
    # ------------------------------------------------------------------ #

    def _descriptor(self):
        if self._journal_fd is None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._journal_fd = os.open(
                self.run_dir / JOURNAL_NAME,
                os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                0o644,
            )
        return self._journal_fd

    def record(self, index, counters):
        """Journal one completed point (atomic single-line append)."""
        spec = self.manifest["points"][index]
        entry = {
            "index": index,
            "point": spec["point"],
            "mode": spec["mode"],
            "digest": spec["digest"],
            # repro: noqa[nondet] journal timestamp is observability
            # metadata; resume splices only "counters", verified by digest
            "ts": time.time(),
            "counters": counters_to_dict(counters),
        }
        line = json.dumps(entry, sort_keys=True) + "\n"
        os.write(self._descriptor(), line.encode("utf-8"))

    def completed_counters(self):
        """``{index: RunResult}`` journaled so far (``provenance="journal"``).

        Corrupt or truncated lines (a torn final write from a ``kill -9``),
        out-of-range indices, and entries whose digest does not match the
        manifest are *skipped* with a ``journal_corrupt`` telemetry warning
        — resume then simply re-runs those points.
        """
        path = self.run_dir / JOURNAL_NAME
        completed = {}
        if not path.is_file():
            return completed
        specs = self.manifest["points"]
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    index = entry["index"]
                    if entry["digest"] != specs[index]["digest"]:
                        raise ValueError("digest mismatch vs manifest")
                    counters = counters_from_dict(
                        entry["counters"], provenance="journal"
                    )
                except (ValueError, KeyError, TypeError, IndexError) as exc:
                    self.telemetry.emit(
                        "journal_corrupt",
                        run_id=self.run_id,
                        line=lineno,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    continue
                completed[index] = counters
        return completed

    def flush(self):
        """fsync the journal (called on graceful shutdown)."""
        if self._journal_fd is not None:
            try:
                os.fsync(self._journal_fd)
            except OSError:
                pass

    def close(self):
        if self._journal_fd is not None:
            self.flush()
            os.close(self._journal_fd)
            self._journal_fd = None

    # ------------------------------------------------------------------ #
    # Status
    # ------------------------------------------------------------------ #

    def mark(self, status):
        _atomic_write_json(
            self.run_dir / STATUS_NAME,
            # repro: noqa[nondet] status stamp is operator metadata only
            {"status": status, "updated": time.time()},
        )

    def mark_completed(self):
        self.mark(STATUS_COMPLETED)

    def mark_interrupted(self):
        self.mark(STATUS_INTERRUPTED)

    def mark_failed(self):
        self.mark(STATUS_FAILED)

    @property
    def status(self):
        """Last marked status; a parent killed with ``kill -9`` leaves
        ``running`` behind, which ``repro runs`` still lists as resumable."""
        try:
            payload = json.loads(
                (self.run_dir / STATUS_NAME).read_text("utf-8")
            )
            return payload["status"]
        except (OSError, ValueError, KeyError):
            return STATUS_RUNNING

    @property
    def updated(self):
        try:
            payload = json.loads(
                (self.run_dir / STATUS_NAME).read_text("utf-8")
            )
            return float(payload["updated"])
        except (OSError, ValueError, KeyError, TypeError):
            return self.manifest.get("created", 0.0)


# ---------------------------------------------------------------------- #
# Run listing (``repro runs``)
# ---------------------------------------------------------------------- #


def run_summary(checkpoint):
    """One checkpointed run's machine-readable summary dict.

    The single serializer behind ``repro runs`` (table and ``--json``)
    and the sweep service's ``/jobs`` endpoint, so every surface agrees
    on field names and on the completed-but-unmarked repair below.
    """
    done = len(checkpoint.completed_counters())
    status = checkpoint.status
    if done >= checkpoint.total and status == STATUS_RUNNING:
        # Every point journaled but the parent died before marking.
        status = STATUS_COMPLETED
    return {
        "run_id": checkpoint.run_id,
        "label": checkpoint.label or "-",
        "status": status,
        "completed": done,
        "total": checkpoint.total,
        "updated": checkpoint.updated,
    }


def runs_payload(runs):
    """The versioned JSON payload wrapping :func:`run_summary` dicts."""
    return {"version": FORMAT_VERSION, "runs": list(runs)}


def list_runs(root=None):
    """Summaries of every checkpointed run under ``root``, newest first."""
    root = Path(root) if root is not None else default_checkpoint_dir()
    runs = []
    if not root.is_dir():
        return runs
    try:
        manifest_paths = sorted(root.glob(f"*/{MANIFEST_NAME}"))
    except OSError:
        return runs
    for manifest_path in manifest_paths:
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
        except (OSError, ValueError):
            continue
        runs.append(run_summary(SweepCheckpoint(manifest_path.parent, manifest)))
    runs.sort(key=lambda r: -r["updated"])
    return runs


def format_runs(runs):
    """Render :func:`list_runs` output as the ``repro runs`` table."""
    from repro.harness.report import format_table

    if not runs:
        return "no checkpointed runs"
    return format_table(
        ["run", "label", "status", "progress", "updated"],
        [
            [
                r["run_id"],
                r["label"],
                r["status"],
                f"{r['completed']}/{r['total']}",
                time.strftime(
                    "%Y-%m-%d %H:%M:%S", time.localtime(r["updated"])
                ),
            ]
            for r in runs
        ],
        title="Checkpointed sweep runs",
    )
