"""Figure 5: headroom of ideal PB over realizable software PB.

PB-SW-IDEAL runs Binning at its best bin count and Accumulate at *its*
best bin count — unrealizable in software (one set of in-memory bins),
but it bounds what architecture support can recover.
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import (
    ExperimentResult,
    prefetch_runs,
    shared_runner,
)
from repro.harness.report import format_table, geomean
from repro.workloads.registry import workload_instances

__all__ = ["run"]

_MODES = (modes.BASELINE, modes.PB_SW, modes.PB_SW_IDEAL)


def run(runner=None, workloads=None, scale=None, jobs=None, checkpoint_dir=None):
    """Speedups of PB-SW and PB-SW-IDEAL over baseline, per workload."""
    runner = runner or shared_runner()
    rows = []
    kwargs = {} if scale is None else {"scale": scale}
    instances = list(workload_instances(workloads=workloads, **kwargs))
    prefetch_runs(
        runner,
        [(w, mode) for _, _, w in instances for mode in _MODES],
        jobs=jobs,
        label="fig05",
        checkpoint_dir=checkpoint_dir,
    )
    runs = []
    for workload_name, input_name, workload in instances:
        results = [runner.run(workload, mode) for mode in _MODES]
        runs.extend(results)
        base, pb, ideal = (r.cycles for r in results)
        rows.append(
            {
                "workload": workload_name,
                "input": input_name,
                "pb_speedup": base / pb,
                "ideal_speedup": base / ideal,
                "headroom": pb / ideal,
            }
        )
    means = {
        "pb": geomean([r["pb_speedup"] for r in rows]),
        "ideal": geomean([r["ideal_speedup"] for r in rows]),
        "headroom": geomean([r["headroom"] for r in rows]),
    }
    text = format_table(
        ["workload", "input", "PB-SW", "PB-SW-IDEAL", "headroom"],
        [
            [
                r["workload"],
                r["input"],
                r["pb_speedup"],
                r["ideal_speedup"],
                r["headroom"],
            ]
            for r in rows
        ]
        + [["geomean", "", means["pb"], means["ideal"], means["headroom"]]],
        title="Figure 5: ideal-PB headroom (speedup over baseline)",
    )
    return ExperimentResult(
        name="fig05", rows=rows, text=text, extras=means, runs=runs
    )
