"""Shared plumbing for the per-figure experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.runner import Runner

__all__ = [
    "ExperimentResult",
    "shared_runner",
    "phase_cycles",
    "prefetch_runs",
]


@dataclass
class ExperimentResult:
    """Structured output of one experiment driver.

    ``runs`` carries the :class:`~repro.api.RunResult` of every simulation
    point the figure consumed, in the order the driver ran them, so
    programmatic consumers get the full structured counters — not just the
    rendered ``rows``/``text``.
    """

    name: str
    rows: list = field(default_factory=list)
    text: str = ""
    extras: dict = field(default_factory=dict)
    runs: list = field(default_factory=list)

    def __str__(self):
        return self.text


_RUNNER = None


def shared_runner(**kwargs):
    """Process-wide runner so experiments reuse memoized runs.

    Passing kwargs creates a fresh, unshared runner (sweeps that change
    machine parameters must not pollute the shared cache).
    """
    global _RUNNER
    if kwargs:
        return Runner(**kwargs)
    if _RUNNER is None:
        _RUNNER = Runner()
    return _RUNNER


def phase_cycles(counters, name):
    """Cycles of one phase (0.0 when the phase is absent).

    Accepts a :class:`~repro.api.RunResult` or any object exposing a
    ``phases`` iterable of named phase counters.
    """
    for phase in counters.phases:
        if phase.name == name:
            return phase.cycles
    return 0.0


def prefetch_runs(runner, points, jobs=None, label=None, checkpoint_dir=None):
    """Warm the runner's memo for ``(workload, mode)`` points in parallel.

    Experiment drivers keep their readable serial loops; calling this first
    with ``jobs`` > 1 computes every independent point through the
    process-pool executor, so the subsequent serial loop is all memo hits.
    A no-op when ``jobs`` is ``None``/``<= 1`` and no checkpoint directory
    is given.

    ``label`` tags the sweep in the telemetry log with the experiment it
    warms, so ``repro report`` can attribute wall-clock per figure. With a
    fault policy on the runner, a crashed/hung point merely falls back to
    the driver's serial loop instead of aborting the figure.

    ``checkpoint_dir`` attaches a :class:`SweepCheckpoint` under that
    directory: completed points are journaled as they finish, SIGINT/SIGTERM
    drain in flight work and raise
    :class:`~repro.harness.faults.SweepInterrupted`, and re-running the same
    figure resumes from the journal instead of starting over.
    """
    if checkpoint_dir is None and (jobs is None or jobs <= 1):
        return
    points = list(points)
    if label is not None and runner.telemetry.enabled:
        runner.telemetry.emit(
            "experiment_prefetch", experiment=label, points=len(points)
        )
    checkpoint = None
    if checkpoint_dir is not None:
        from repro.harness.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint.attach(
            checkpoint_dir,
            runner,
            points,
            label=label,
            telemetry=runner.telemetry,
        )
    runner.run_many(
        points,
        jobs=jobs if jobs is not None else 1,
        checkpoint=checkpoint,
        handle_signals=checkpoint is not None,
    )
