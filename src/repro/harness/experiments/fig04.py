"""Figure 4: sensitivity of PB's two phases to the number of bins.

(a) Binning prefers few bins (all C-Buffers L1/L2-resident); Accumulate
prefers many (a bin's update range fits the L1). (b) The same sweep's load
misses split by servicing level show why: with many bins the C-Buffers
spill to the LLC.
"""

from __future__ import annotations

from repro._util import check_positive
from repro.harness.experiments.common import ExperimentResult, shared_runner
from repro.harness.report import format_table
from repro.pb.bins import BinSpec
from repro.workloads.registry import resolve

__all__ = ["run", "DEFAULT_BIN_COUNTS"]

DEFAULT_BIN_COUNTS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def run(
    runner=None,
    workload_name="neighbor-populate",
    input_name="KRON",
    bin_counts=DEFAULT_BIN_COUNTS,
    scale=None,
):
    """Sweep the bin count; report per-phase cycles and miss breakdown."""
    runner = runner or shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    workload = resolve(workload_name, input_name, **kwargs)
    rows = []
    runs = []
    for num_bins in bin_counts:
        check_positive("num_bins", num_bins)
        spec = BinSpec.from_num_bins(workload.num_indices, num_bins)
        counters = runner.run_with_spec(workload, spec, include_init=False)
        runs.append(counters)
        binning = counters.phase("binning")
        accumulate = counters.phase("accumulate")
        service = binning.irregular_service.merged(
            accumulate.irregular_service
        )
        rows.append(
            {
                "num_bins": spec.num_bins,
                "binning_cycles": binning.cycles,
                "accumulate_cycles": accumulate.cycles,
                "total_cycles": binning.cycles + accumulate.cycles,
                "l2_loads": service.l2,
                "llc_loads": service.llc,
                "dram_loads": service.dram,
            }
        )
    text = format_table(
        ["bins", "binning Mcyc", "accum Mcyc", "L2", "LLC", "DRAM"],
        [
            [
                r["num_bins"],
                r["binning_cycles"] / 1e6,
                r["accumulate_cycles"] / 1e6,
                r["l2_loads"],
                r["llc_loads"],
                r["dram_loads"],
            ]
            for r in rows
        ],
        title=(
            f"Figure 4: PB bin-count sensitivity "
            f"({workload_name}/{input_name})"
        ),
    )
    return ExperimentResult(name="fig04", rows=rows, text=text, runs=runs)
