"""Per-figure/table experiment drivers (see DESIGN.md Section 3)."""

from repro.harness.experiments import (
    fig02,
    fig04,
    fig05,
    fig10,
    fig10x,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    mrc,
    scaling,
    table1,
)
from repro.harness.experiments.common import ExperimentResult, shared_runner

__all__ = [
    "ExperimentResult",
    "fig02",
    "fig04",
    "fig05",
    "fig10",
    "fig10x",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "mrc",
    "scaling",
    "shared_runner",
    "table1",
]
