"""Figure 13: robustness of COBRA's Binning.

(a) Eviction-buffer sizing via the DES model: fraction of Binning stalled
on a full L1→L2 FIFO as its size varies (32 entries hide all bursts).
(b) Sensitivity to the ways reserved per level for C-Buffers (robust at
L1/LLC, sensitive at L2 because of the stream prefetcher).
(c) Worst-case DRAM bandwidth waste from context switches evicting
partially filled LLC C-Buffers, versus the scheduling quantum.
"""

from __future__ import annotations

import numpy as np

from repro.core.context_switch import simulate_context_switches
from repro.des.eviction_model import EvictionBufferModel, EvictionModelConfig
from repro.harness.experiments.common import ExperimentResult, shared_runner
from repro.harness.report import format_table
from repro.harness.runner import Runner
from repro.workloads.registry import WORKLOAD_INPUTS, resolve

__all__ = ["run_eviction_buffers", "run_way_sensitivity", "run_context_switch"]

DEFAULT_QUEUE_SIZES = (1, 2, 4, 8, 16, 32, 64)


def run_eviction_buffers(
    workload_name="neighbor-populate",
    input_names=None,
    queue_sizes=DEFAULT_QUEUE_SIZES,
    trace_len=40_000,
    scale=None,
):
    """Figure 13a: stall fraction vs L1→L2 eviction-FIFO size.

    The DES uses the tight-loop rates the paper sizes for: the core emits
    a tuple every ~1.25 cycles and the binning engine unpacks one tuple
    per cycle, so eviction bursts genuinely queue and the FIFO depth
    matters (a steady-state Little's-law estimate would call for far
    fewer entries).
    """
    input_names = input_names or WORKLOAD_INPUTS[workload_name]
    runner = shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    rows = []
    for input_name in input_names:
        workload = resolve(workload_name, input_name, **kwargs)
        cobra = runner.cobra_config(workload)
        trace = np.asarray(workload.update_indices[:trace_len])
        for entries in queue_sizes:
            config = EvictionModelConfig(
                num_indices=workload.num_indices,
                l1_buffers=cobra.l1.num_buffers,
                l2_buffers=cobra.l2.num_buffers,
                llc_buffers=cobra.llc.num_buffers,
                tuples_per_line=cobra.tuples_per_line,
                l1_evict_queue=entries,
                core_cycles_per_tuple=1.25,
                engine_cycles_per_tuple=1.0,
            )
            result = EvictionBufferModel(config).run(trace)
            rows.append(
                {
                    "input": input_name,
                    "queue_entries": entries,
                    "stall_fraction": result.stall_fraction,
                    "max_occupancy": result.max_queue_occupancy["l1_evict"],
                }
            )
    text = format_table(
        ["input", "entries", "stall fraction"],
        [[r["input"], r["queue_entries"], r["stall_fraction"]] for r in rows],
        title="Figure 13a: Binning stall vs L1->L2 eviction-buffer size",
        floatfmt="{:.4f}",
    )
    return ExperimentResult(name="fig13a", rows=rows, text=text)


def run_way_sensitivity(
    workload_name="neighbor-populate", input_name="KRON", scale=None
):
    """Figure 13b: COBRA Binning cycles vs ways reserved per level."""
    rows = []
    base_runner = shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    workload = resolve(workload_name, input_name, **kwargs)

    def binning_cycles(l1=None, l2=1, llc=None):
        runner = Runner(
            machine=base_runner.machine,
            max_sim_events=base_runner.max_sim_events,
        )
        cobra = runner.machine.cobra_config(
            workload.num_indices, workload.tuple_bytes
        )
        overrides = {}
        if l1 is not None:
            overrides["l1_reserved_ways"] = l1
        if l2 is not None:
            overrides["l2_reserved_ways"] = l2
        if llc is not None:
            overrides["llc_reserved_ways"] = llc
        from dataclasses import replace

        cobra = replace(cobra, **overrides)
        phases = workload.cobra_phases(cobra, include_init=False)
        counters = runner._simulate_phase(workload, phases[0], None)
        return counters.cycles

    hierarchy = base_runner.machine.hierarchy
    for level, max_ways in (
        ("l1", hierarchy.l1_ways - 1),
        ("l2", hierarchy.l2_ways - 1),
        ("llc", hierarchy.llc_ways - 1),
    ):
        for ways in (1, max(1, max_ways // 2), max_ways):
            reservations = {"l1": None, "l2": 1, "llc": None}
            reservations[level] = ways
            rows.append(
                {
                    "level": level,
                    "reserved_ways": ways,
                    "binning_cycles": binning_cycles(**reservations),
                }
            )
    # Normalize per level to its best configuration.
    for level in ("l1", "l2", "llc"):
        level_rows = [r for r in rows if r["level"] == level]
        best = min(r["binning_cycles"] for r in level_rows)
        for r in level_rows:
            r["normalized"] = r["binning_cycles"] / best
    text = format_table(
        ["level", "ways reserved", "binning Mcyc", "vs best"],
        [
            [
                r["level"],
                r["reserved_ways"],
                r["binning_cycles"] / 1e6,
                r["normalized"],
            ]
            for r in rows
        ],
        title="Figure 13b: Binning sensitivity to reserved ways",
    )
    return ExperimentResult(name="fig13b", rows=rows, text=text)


def run_context_switch(
    workload_name="neighbor-populate",
    input_name="KRON",
    quanta_tuples=(2_000, 8_000, 32_000, 128_000, 512_000),
    trace_len=300_000,
    scale=None,
):
    """Figure 13c: worst-case bandwidth waste vs scheduling quantum."""
    runner = shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    workload = resolve(workload_name, input_name, **kwargs)
    cobra = runner.cobra_config(workload)
    trace = workload.update_indices[:trace_len]
    rows = []
    for quantum in quanta_tuples:
        result = simulate_context_switches(cobra, trace, quantum)
        rows.append(
            {
                "quantum_tuples": quantum,
                "switches": result.switches,
                "waste_fraction": result.waste_fraction,
            }
        )
    text = format_table(
        ["quantum (tuples)", "switches", "bandwidth waste"],
        [
            [r["quantum_tuples"], r["switches"], r["waste_fraction"]]
            for r in rows
        ],
        title="Figure 13c: context-switch DRAM bandwidth waste",
        floatfmt="{:.4f}",
    )
    return ExperimentResult(name="fig13c", rows=rows, text=text)
