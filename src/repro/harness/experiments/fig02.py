"""Figure 2: LLC miss rates of applications with irregular updates.

The paper measures (with LIKWID on a Xeon) that graph analytics, graph
pre-processing, integer sorting, and sparse linear algebra all exhibit high
LLC miss rates on their irregular update streams. We reproduce the bar
chart with the cache simulator in baseline mode.
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import (
    ExperimentResult,
    prefetch_runs,
    shared_runner,
)
from repro.harness.report import format_table
from repro.workloads.registry import workload_instances

__all__ = ["run"]


def run(runner=None, workloads=None, scale=None, jobs=None, checkpoint_dir=None):
    """LLC miss rate of the irregular update stream, per workload/input."""
    runner = runner or shared_runner()
    rows = []
    kwargs = {} if scale is None else {"scale": scale}
    instances = list(workload_instances(workloads=workloads, **kwargs))
    prefetch_runs(
        runner,
        [(w, modes.CHARACTERIZATION) for _, _, w in instances],
        jobs=jobs,
        label="fig02",
        checkpoint_dir=checkpoint_dir,
    )
    runs = []
    for workload_name, input_name, workload in instances:
        counters = runner.run_characterization(workload)
        runs.append(counters)
        service = counters.irregular_service
        rows.append(
            {
                "workload": workload_name,
                "input": input_name,
                "llc_miss_rate": service.llc_miss_rate,
                "l1_miss_rate": service.l1_miss_rate,
                "dram_accesses": service.dram,
            }
        )
    text = format_table(
        ["workload", "input", "LLC miss rate", "L1 miss rate"],
        [
            [r["workload"], r["input"], r["llc_miss_rate"], r["l1_miss_rate"]]
            for r in rows
        ],
        title="Figure 2: locality of irregular updates (baseline execution)",
    )
    return ExperimentResult(name="fig02", rows=rows, text=text, runs=runs)
