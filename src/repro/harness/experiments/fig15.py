"""Figure 15: Propagation Blocking versus Graph Tiling (CSR-Segmenting).

Pagerank run to convergence. Per iteration, tiling avoids a binning pass
(segment-local gathers + a merge), but it pays a heavy one-time
preprocessing cost to build per-segment subgraphs; PB's only setup is bin
sizing/allocation. The paper: PB 1.35x vs Tiling 1.27x mean speedup
ignoring init, and PB clearly ahead once init overheads count — the reason
COBRA builds on PB.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.segmenting import SegmentedGraph
from repro.harness import modes
from repro.harness.experiments.common import ExperimentResult, shared_runner
from repro.harness.report import format_table
from repro.workloads.base import PhaseSpec, RegionSpec, Segment
from repro.workloads.neighbor_populate import NeighborPopulate
from repro.workloads.registry import load_csr, load_graph, resolve

__all__ = ["run"]


def _tiling_iteration_phases(workload, segmented):
    """Gather + merge phases of one CSR-Segmenting Pagerank iteration."""
    graph = segmented.graph
    edges = graph.num_edges
    partials = segmented.total_partials
    contrib_region = RegionSpec("tiling.contrib", 4, graph.num_vertices)
    # Segment-local source reads: within one segment all indices fall in a
    # cache-sized range, which is exactly where tiling's locality comes
    # from — the simulator sees it directly.
    gather_indices = np.concatenate(
        [segment.srcs for segment in segmented.segments]
    ) if segmented.segments else np.zeros(0, dtype=np.int64)
    gather = PhaseSpec(
        name="gather",
        # Per edge: the pagerank body plus appending the (dst, partial)
        # pair to the segment's output buffer.
        instructions=edges * (workload.baseline_instr_per_update + 2),
        branches=edges,
        segments=[Segment(contrib_region, gather_indices, False)],
        # Edge stream + per-segment CSC metadata + partial-pair writes.
        streaming_bytes=edges * 8 + partials * 16,
        # Segment data spans all NUCA banks: remote-LLC latency applies
        # (PB's Accumulate, by contrast, runs out of core-local caches).
        shared_llc=True,
    )
    merge = PhaseSpec(
        name="merge",
        # Cache-aware merge: load each partial, locate its vertex slot,
        # accumulate — with a segment-boundary check per partial.
        instructions=partials * 8,
        branches=partials,
        segments=[],
        streaming_bytes=partials * 8 + graph.num_vertices * 4,
    )
    return [gather, merge]


def run(runner=None, input_names=("KRON", "URND"), tol=1e-6, scale=None):
    """Pagerank-to-convergence runtime: baseline vs Tiling vs PB."""
    runner = runner or shared_runner()
    rows = []
    runs = []
    hierarchy = runner.machine.hierarchy
    kwargs = {} if scale is None else {"scale": scale}
    for input_name in input_names:
        workload = resolve("pagerank", input_name, **kwargs)
        graph = load_csr(input_name, **kwargs)
        _scores, iterations = workload.run_to_convergence(tol=tol)

        base = runner.run(workload, modes.BASELINE)
        base_iter = base.cycles
        baseline_total = base_iter * iterations

        pb = runner.run(workload, modes.PB_SW)
        runs.extend([base, pb])
        pb_init = pb.phase("init").cycles
        pb_iter = pb.phase("binning").cycles + pb.phase("accumulate").cycles
        pb_total = pb_init + pb_iter * iterations

        # CSR-Segmenting sizes segments to the *shared* LLC and has all
        # threads process one segment cooperatively; under multicore
        # contention each core effectively holds only a slice of it. With
        # a single representative core whose cache is one NUCA bank, a
        # 2x-bank segment window models that effective share.
        segment_range = max(1, 2 * hierarchy.llc_bytes // 4)
        segmented = SegmentedGraph(graph, segment_range)
        # Building per-segment CSCs is an Edgelist-to-CSR conversion of the
        # reversed graph — we cost it as exactly that kernel.
        # repro: noqa[workload-registry] the reversed graph is a derived
        # input no registry spec names; the instance is a cost model only
        # and its cycles never reach the result cache or golden pins
        build = NeighborPopulate(load_graph(input_name, **kwargs).reversed())
        tiling_init = sum(
            runner._simulate_phase(build, phase, None).cycles
            for phase in build.baseline_phases()
        )
        tiling_iter = sum(
            runner._simulate_phase(workload, phase, None).cycles
            for phase in _tiling_iteration_phases(workload, segmented)
        )
        tiling_total = tiling_init + tiling_iter * iterations

        rows.append(
            {
                "input": input_name,
                "iterations": iterations,
                "baseline_total": baseline_total,
                "pb_total": pb_total,
                "pb_init_fraction": pb_init / pb_total,
                "pb_speedup_no_init": base_iter / pb_iter,
                "pb_speedup": baseline_total / pb_total,
                "tiling_total": tiling_total,
                "tiling_init_fraction": tiling_init / tiling_total,
                "tiling_speedup_no_init": base_iter / tiling_iter,
                "tiling_speedup": baseline_total / tiling_total,
            }
        )
    text = format_table(
        [
            "input",
            "iters",
            "PB x (no init)",
            "PB x",
            "PB init %",
            "Tiling x (no init)",
            "Tiling x",
            "Tiling init %",
        ],
        [
            [
                r["input"],
                r["iterations"],
                r["pb_speedup_no_init"],
                r["pb_speedup"],
                100.0 * r["pb_init_fraction"],
                r["tiling_speedup_no_init"],
                r["tiling_speedup"],
                100.0 * r["tiling_init_fraction"],
            ]
            for r in rows
        ],
        title="Figure 15: PB vs CSR-Segmenting (Pagerank to convergence)",
    )
    return ExperimentResult(name="fig15", rows=rows, text=text, runs=runs)
