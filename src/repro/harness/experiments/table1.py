"""Table I: where a PB execution spends its time.

Breaks the PB execution of Neighbor-Populate into Init / Binning /
Accumulate for a small and a large bin count, showing Binning dominates —
the motivation for COBRA targeting the Binning phase.
"""

from __future__ import annotations

from repro.harness.experiments.common import ExperimentResult, shared_runner
from repro.harness.report import format_table
from repro.pb.bins import BinSpec
from repro.workloads.registry import resolve

__all__ = ["run"]


def run(
    runner=None,
    workload_name="neighbor-populate",
    input_name="KRON",
    small_bins=64,
    large_bins=2048,
    scale=None,
):
    """Phase breakdown (% of cycles) at a small and a large bin count."""
    runner = runner or shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    workload = resolve(workload_name, input_name, **kwargs)
    rows = []
    runs = []
    for label, num_bins in (("small", small_bins), ("large", large_bins)):
        spec = BinSpec.from_num_bins(workload.num_indices, num_bins)
        counters = runner.run_with_spec(workload, spec, include_init=True)
        runs.append(counters)
        total = counters.cycles
        row = {"bins": label, "num_bins": spec.num_bins, "total_cycles": total}
        for phase in counters.phases:
            row[f"{phase.name}_pct"] = 100.0 * phase.cycles / total
        rows.append(row)
    text = format_table(
        ["bins", "count", "init %", "binning %", "accumulate %"],
        [
            [
                r["bins"],
                r["num_bins"],
                r["init_pct"],
                r["binning_pct"],
                r["accumulate_pct"],
            ]
            for r in rows
        ],
        title=f"Table I: PB execution breakup ({workload_name}/{input_name})",
        floatfmt="{:.1f}",
    )
    return ExperimentResult(name="table1", rows=rows, text=text, runs=runs)
