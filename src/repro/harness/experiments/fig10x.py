"""Figure 10 extension: headline speedups for the extension suite.

The same PB-SW / PB-SW-IDEAL / COBRA speedup sweep as Figure 10, run over
the *extension* workloads the registry adds beyond the paper's nine
kernels — the Histogram bucketing kernel and the fused CSR-construction
kernel — including the ingested real graphs (Zachary karate club, the
Florentine families network) at their fixed natural scales. Real graphs
have skew none of the synthetic generators reproduce, so this is where
the locality story meets data the paper never measured.
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import (
    ExperimentResult,
    prefetch_runs,
    shared_runner,
)
from repro.harness.report import format_table, geomean
from repro.workloads.registry import WORKLOADS, input_fixed_scale, resolve

__all__ = ["run"]

_MODES = (modes.BASELINE, modes.PB_SW, modes.PB_SW_IDEAL, modes.COBRA)


def _extension_instances(scale=None, workloads=None):
    """``(workload_name, input_name, workload)`` over the extension suite."""
    for name, spec in WORKLOADS.items():
        if not spec.extension:
            continue
        if workloads is not None and name not in workloads:
            continue
        for input_name in spec.inputs:
            point_scale = (
                None if input_fixed_scale(input_name) is not None else scale
            )
            yield name, input_name, resolve(name, input_name, point_scale)


def run(runner=None, workloads=None, scale=None, jobs=None, checkpoint_dir=None):
    """Speedups over baseline for the extension workloads + real graphs."""
    runner = runner or shared_runner()
    rows = []
    instances = list(_extension_instances(scale=scale, workloads=workloads))
    prefetch_runs(
        runner,
        [(w, mode) for _, _, w in instances for mode in _MODES],
        jobs=jobs,
        label="fig10x",
        checkpoint_dir=checkpoint_dir,
    )
    runs = []
    for workload_name, input_name, workload in instances:
        results = [runner.run(workload, mode) for mode in _MODES]
        runs.extend(results)
        base, pb, ideal, cobra = (r.cycles for r in results)
        rows.append(
            {
                "workload": workload_name,
                "input": input_name,
                "scale": int(workload.cache_key.rsplit(":", 1)[1]),
                "ingested": input_fixed_scale(input_name) is not None,
                "pb_speedup": base / pb,
                "ideal_speedup": base / ideal,
                "cobra_speedup": base / cobra,
                "cobra_over_pb": pb / cobra,
            }
        )
    means = {
        "pb": geomean([r["pb_speedup"] for r in rows]),
        "ideal": geomean([r["ideal_speedup"] for r in rows]),
        "cobra": geomean([r["cobra_speedup"] for r in rows]),
        "cobra_over_pb": geomean([r["cobra_over_pb"] for r in rows]),
    }
    text = format_table(
        ["workload", "input", "scale", "PB-SW", "PB-IDEAL", "COBRA", "COBRA/PB"],
        [
            [
                r["workload"],
                r["input"] + ("*" if r["ingested"] else ""),
                r["scale"],
                r["pb_speedup"],
                r["ideal_speedup"],
                r["cobra_speedup"],
                r["cobra_over_pb"],
            ]
            for r in rows
        ]
        + [
            [
                "geomean",
                "",
                "",
                means["pb"],
                means["ideal"],
                means["cobra"],
                means["cobra_over_pb"],
            ]
        ],
        title=(
            "Figure 10x: extension-suite speedup over baseline "
            "(* = ingested real graph at its natural scale)"
        ),
    )
    return ExperimentResult(
        name="fig10x", rows=rows, text=text, extras=means, runs=runs
    )
