"""Figure 14: COBRA versus commutativity-specialized systems.

For the commutative Degree-Counting kernel: DRAM traffic and L1 misses
(Binning + Accumulate phases) under PB-SW, PHI, COBRA, and COBRA-COMM,
normalized to the baseline. For the non-commutative Neighbor-Populate,
PHI and COBRA-COMM are *inapplicable* (coalescing would corrupt the
result, Section III-B) — COBRA is the only viable hardware optimization.
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import (
    ExperimentResult,
    prefetch_runs,
    shared_runner,
)
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOAD_INPUTS, resolve

__all__ = ["run"]

_SYSTEMS = (modes.PB_SW, modes.PHI, modes.COBRA, modes.COBRA_COMM)


def _applicable_modes(workload):
    """Baseline plus each system the workload's semantics admit."""
    return [modes.BASELINE] + [
        system
        for system in _SYSTEMS
        if workload.commutative or system not in modes.COMMUTATIVE_ONLY_MODES
    ]


def _blocked_phase_metrics(counters):
    """(DRAM lines, L1 misses) across the Binning + Accumulate phases.

    L1 misses count both the irregular accesses and the streaming data —
    one miss per line streamed, exactly what a hardware counter would see
    — so systems that eliminate irregular L1 misses entirely (COBRA) still
    sit on the realistic streaming floor.
    """
    traffic = 0
    l1_misses = 0
    for phase in counters.phases:
        if phase.name not in ("binning", "accumulate", "main"):
            continue
        traffic += phase.traffic.total_lines
        service = phase.irregular_service
        l1_misses += service.total - service.l1
        l1_misses += phase.streaming_bytes // phase.traffic.line_bytes
    return traffic, l1_misses


def run(
    runner=None,
    workload_names=("degree-count", "neighbor-populate"),
    input_names=None,
    scale=None,
    jobs=None,
    checkpoint_dir=None,
):
    """Traffic and L1-miss reductions vs baseline for the four systems."""
    runner = runner or shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    instances = [
        resolve(workload_name, input_name, **kwargs)
        for workload_name in workload_names
        for input_name in input_names or WORKLOAD_INPUTS[workload_name]
    ]
    prefetch_runs(
        runner,
        [(w, mode) for w in instances for mode in _applicable_modes(w)],
        jobs=jobs,
        label="fig14",
        checkpoint_dir=checkpoint_dir,
    )
    rows = []
    runs = []
    for workload_name in workload_names:
        for input_name in input_names or WORKLOAD_INPUTS[workload_name]:
            workload = resolve(workload_name, input_name, **kwargs)
            base = runner.run(workload, modes.BASELINE)
            runs.append(base)
            base_traffic, base_l1 = _blocked_phase_metrics(base)
            for system in _SYSTEMS:
                if (
                    system in modes.COMMUTATIVE_ONLY_MODES
                    and not workload.commutative
                ):
                    rows.append(
                        {
                            "workload": workload_name,
                            "input": input_name,
                            "system": system,
                            "applicable": False,
                            "traffic_reduction": 0.0,
                            "l1_miss_reduction": 0.0,
                        }
                    )
                    continue
                result = runner.run(workload, system)
                runs.append(result)
                traffic, l1 = _blocked_phase_metrics(result)
                rows.append(
                    {
                        "workload": workload_name,
                        "input": input_name,
                        "system": system,
                        "applicable": True,
                        "traffic_reduction": base_traffic / max(traffic, 1),
                        "l1_miss_reduction": base_l1 / max(l1, 1),
                    }
                )
    text = format_table(
        ["workload", "input", "system", "traffic red.", "L1-miss red."],
        [
            [
                r["workload"],
                r["input"],
                r["system"] if r["applicable"] else f"{r['system']} (N/A)",
                r["traffic_reduction"],
                r["l1_miss_reduction"],
            ]
            for r in rows
        ],
        title="Figure 14: commutativity specializations (vs baseline)",
    )
    return ExperimentResult(name="fig14", rows=rows, text=text, runs=runs)
