"""Figure 10: the headline speedups.

PB-SW, PB-SW-IDEAL, and COBRA over the baseline for every workload/input
pair. The paper reports mean speedups of 1.81x (PB over baseline), 1.2x
(IDEAL over PB), 1.45x (COBRA over IDEAL) — 3.16x COBRA over baseline and
1.74x COBRA over PB.
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import (
    ExperimentResult,
    prefetch_runs,
    shared_runner,
)
from repro.harness.inputs import workload_instances
from repro.harness.report import format_table, geomean

__all__ = ["run"]

_MODES = (modes.BASELINE, modes.PB_SW, modes.PB_SW_IDEAL, modes.COBRA)


def run(runner=None, workloads=None, scale=None, jobs=None, checkpoint_dir=None):
    """Speedups over baseline for PB-SW / PB-SW-IDEAL / COBRA."""
    runner = runner or shared_runner()
    rows = []
    kwargs = {} if scale is None else {"scale": scale}
    instances = list(workload_instances(workloads=workloads, **kwargs))
    prefetch_runs(
        runner,
        [(w, mode) for _, _, w in instances for mode in _MODES],
        jobs=jobs,
        label="fig10",
        checkpoint_dir=checkpoint_dir,
    )
    runs = []
    for workload_name, input_name, workload in instances:
        results = [runner.run(workload, mode) for mode in _MODES]
        runs.extend(results)
        base, pb, ideal, cobra = (r.cycles for r in results)
        rows.append(
            {
                "workload": workload_name,
                "input": input_name,
                "pb_speedup": base / pb,
                "ideal_speedup": base / ideal,
                "cobra_speedup": base / cobra,
                "cobra_over_pb": pb / cobra,
            }
        )
    means = {
        "pb": geomean([r["pb_speedup"] for r in rows]),
        "ideal": geomean([r["ideal_speedup"] for r in rows]),
        "cobra": geomean([r["cobra_speedup"] for r in rows]),
        "cobra_over_pb": geomean([r["cobra_over_pb"] for r in rows]),
        "max_cobra_over_pb": max(r["cobra_over_pb"] for r in rows),
    }
    text = format_table(
        ["workload", "input", "PB-SW", "PB-IDEAL", "COBRA", "COBRA/PB"],
        [
            [
                r["workload"],
                r["input"],
                r["pb_speedup"],
                r["ideal_speedup"],
                r["cobra_speedup"],
                r["cobra_over_pb"],
            ]
            for r in rows
        ]
        + [
            [
                "geomean",
                "",
                means["pb"],
                means["ideal"],
                means["cobra"],
                means["cobra_over_pb"],
            ]
        ],
        title="Figure 10: speedup over baseline",
    )
    return ExperimentResult(
        name="fig10", rows=rows, text=text, extras=means, runs=runs
    )
