"""Figure 12: why COBRA's Binning is faster.

Top: COBRA executes 2-5.5x fewer total instructions than software PB
(binupdate replaces the whole binning sequence). Bottom: COBRA eliminates
the C-Buffer-full branches, collapsing the branch MPKI to near the
baseline's (only input-dependent branches like neighborhood boundaries
remain). We also report the Binning-phase IPC improvement (0.71 → 1.55 in
the paper).
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import (
    ExperimentResult,
    prefetch_runs,
    shared_runner,
)
from repro.harness.report import format_table, geomean
from repro.workloads.registry import workload_instances

__all__ = ["run"]

_MODES = (modes.BASELINE, modes.PB_SW, modes.COBRA)


def run(runner=None, workloads=None, scale=None, jobs=None, checkpoint_dir=None):
    """Instruction reduction, MPKI, and Binning IPC per workload/input."""
    runner = runner or shared_runner()
    rows = []
    kwargs = {} if scale is None else {"scale": scale}
    instances = list(workload_instances(workloads=workloads, **kwargs))
    prefetch_runs(
        runner,
        [(w, mode) for _, _, w in instances for mode in _MODES],
        jobs=jobs,
        label="fig12",
        checkpoint_dir=checkpoint_dir,
    )
    runs = []
    for workload_name, input_name, workload in instances:
        base = runner.run(workload, modes.BASELINE)
        pb = runner.run(workload, modes.PB_SW)
        cobra = runner.run(workload, modes.COBRA)
        runs.extend([base, pb, cobra])
        rows.append(
            {
                "workload": workload_name,
                "input": input_name,
                "instr_reduction": pb.instructions / cobra.instructions,
                "pb_over_baseline_instr": pb.instructions / base.instructions,
                "mpki_baseline": base.mpki,
                "mpki_pb": pb.mpki,
                "mpki_cobra": cobra.mpki,
                "binning_ipc_pb": pb.phase("binning").ipc,
                "binning_ipc_cobra": cobra.phase("binning").ipc,
            }
        )
    means = {
        "instr_reduction": geomean([r["instr_reduction"] for r in rows]),
        "binning_ipc_pb": geomean([r["binning_ipc_pb"] for r in rows]),
        "binning_ipc_cobra": geomean([r["binning_ipc_cobra"] for r in rows]),
    }
    text = format_table(
        [
            "workload",
            "input",
            "PB/COBRA instr",
            "MPKI base",
            "MPKI PB",
            "MPKI COBRA",
            "bin IPC PB",
            "bin IPC COBRA",
        ],
        [
            [
                r["workload"],
                r["input"],
                r["instr_reduction"],
                r["mpki_baseline"],
                r["mpki_pb"],
                r["mpki_cobra"],
                r["binning_ipc_pb"],
                r["binning_ipc_cobra"],
            ]
            for r in rows
        ],
        title="Figure 12: instruction and branch overheads of Binning",
    )
    return ExperimentResult(
        name="fig12", rows=rows, text=text, extras=means, runs=runs
    )
