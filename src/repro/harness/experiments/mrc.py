"""Supplemental characterization: miss-ratio curves, raw vs binned.

Not a paper figure, but the cleanest way to see *why* PB works: the raw
irregular update stream's miss-ratio curve stays high until the cache
approaches the whole working set, while the same updates replayed in
bin-major order drop to compulsory misses at any realistic size.
"""

from __future__ import annotations

import numpy as np

from repro.cache.mrc import miss_ratio_curve, working_set_lines
from repro.harness.experiments.common import ExperimentResult, shared_runner
from repro.harness.report import format_table
from repro.pb.bins import BinSpec
from repro.workloads.registry import resolve

__all__ = ["run"]

DEFAULT_SIZES_KB = (16, 32, 64, 128, 256, 512)


def run(
    runner=None,
    workload_name="degree-count",
    input_name="KRON",
    sizes_kb=DEFAULT_SIZES_KB,
    num_bins=1024,
    scale=None,
):
    """Miss-ratio curves of the raw and bin-reordered update streams."""
    runner = runner or shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    workload = resolve(workload_name, input_name, **kwargs)
    line_elems = 64 // workload.element_bytes
    raw_lines = (workload.update_indices // line_elems).tolist()
    spec = BinSpec.from_num_bins(workload.num_indices, num_bins)
    order = np.argsort(spec.bins_of(workload.update_indices), kind="stable")
    binned_lines = (workload.update_indices[order] // line_elems).tolist()

    rows = []
    for label, lines in (("raw", raw_lines), ("binned", binned_lines)):
        simulated = min(len(lines), 200_000)
        for point in miss_ratio_curve(lines, sizes_kb=sizes_kb):
            # DRAM accesses per kilo-update is the comparable metric: the
            # binned replay sends almost nothing past the L2, so its LLC
            # miss *ratio* is high while its absolute misses are tiny.
            rows.append(
                {
                    "stream": label,
                    **point,
                    "dram_per_kilo_update": 1000.0
                    * point["dram_accesses"]
                    / max(simulated, 1),
                }
            )
    text = format_table(
        ["stream", "LLC KB", "DRAM/kupdate", "LLC miss ratio"],
        [
            [
                r["stream"],
                r["size_kb"],
                r["dram_per_kilo_update"],
                r["miss_ratio"],
            ]
            for r in rows
        ],
        title=(
            f"Miss-ratio curves ({workload_name}/{input_name}, "
            f"working set {working_set_lines(raw_lines)} lines)"
        ),
        floatfmt="{:.3f}",
    )
    return ExperimentResult(name="mrc", rows=rows, text=text)
