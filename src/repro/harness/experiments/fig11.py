"""Figure 11: per-phase speedups of COBRA over software PB.

The paper reports Binning speedups of 2.2-32x (hardware C-Buffer
management + no instruction overhead) and smaller Accumulate gains (the
optimal bin count lets updates run from faster caches).
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import (
    ExperimentResult,
    phase_cycles,
    prefetch_runs,
    shared_runner,
)
from repro.harness.report import format_table, geomean
from repro.workloads.registry import workload_instances

__all__ = ["run"]


def run(runner=None, workloads=None, scale=None, jobs=None, checkpoint_dir=None):
    """Binning/Accumulate speedups of COBRA over PB-SW."""
    runner = runner or shared_runner()
    rows = []
    kwargs = {} if scale is None else {"scale": scale}
    instances = list(workload_instances(workloads=workloads, **kwargs))
    prefetch_runs(
        runner,
        [
            (w, mode)
            for _, _, w in instances
            for mode in (modes.PB_SW, modes.COBRA)
        ],
        jobs=jobs,
        label="fig11",
        checkpoint_dir=checkpoint_dir,
    )
    runs = []
    for workload_name, input_name, workload in instances:
        pb = runner.run(workload, modes.PB_SW)
        cobra = runner.run(workload, modes.COBRA)
        runs.extend([pb, cobra])
        binning = phase_cycles(pb, "binning") / phase_cycles(cobra, "binning")
        accumulate = phase_cycles(pb, "accumulate") / phase_cycles(
            cobra, "accumulate"
        )
        rows.append(
            {
                "workload": workload_name,
                "input": input_name,
                "binning_speedup": binning,
                "accumulate_speedup": accumulate,
            }
        )
    means = {
        "binning": geomean([r["binning_speedup"] for r in rows]),
        "accumulate": geomean([r["accumulate_speedup"] for r in rows]),
    }
    text = format_table(
        ["workload", "input", "binning x", "accumulate x"],
        [
            [
                r["workload"],
                r["input"],
                r["binning_speedup"],
                r["accumulate_speedup"],
            ]
            for r in rows
        ]
        + [["geomean", "", means["binning"], means["accumulate"]]],
        title="Figure 11: COBRA per-phase speedup over PB-SW",
    )
    return ExperimentResult(
        name="fig11", rows=rows, text=text, extras=means, runs=runs
    )
