"""Extension experiment: multicore scalability of baseline / PB / COBRA.

Not a paper figure — the paper evaluates at a fixed 16 cores — but a
direct consequence of its parallel design: PB and COBRA duplicate bins and
C-Buffers per thread and therefore scale without coherence traffic, while
the baseline's shared scatters ping-pong lines between cores. This driver
produces speedup-vs-cores curves for all three.
"""

from __future__ import annotations

from repro.harness import modes
from repro.harness.experiments.common import ExperimentResult, shared_runner
from repro.harness.parallel import ParallelModel
from repro.harness.report import format_table
from repro.workloads.registry import resolve

__all__ = ["run"]

DEFAULT_CORES = (1, 2, 4, 8, 16)


def run(
    runner=None,
    workload_name="pagerank",
    input_name="KRON",
    core_counts=DEFAULT_CORES,
    scale=None,
):
    """Speedup vs cores for baseline, PB-SW, and COBRA."""
    runner = runner or shared_runner()
    kwargs = {} if scale is None else {"scale": scale}
    workload = resolve(workload_name, input_name, **kwargs)
    model = ParallelModel(runner)
    rows = []
    for mode in (modes.BASELINE, modes.PB_SW, modes.COBRA):
        curve = model.scaling_curve(workload, mode, core_counts)
        base = curve[0].parallel_cycles
        for estimate in curve:
            rows.append(
                {
                    "mode": mode,
                    "cores": estimate.num_cores,
                    "cycles": estimate.parallel_cycles,
                    "speedup": base / estimate.parallel_cycles,
                    "efficiency": base
                    / estimate.parallel_cycles
                    / estimate.num_cores,
                    "invalidations_per_update": (
                        estimate.invalidations_per_update
                    ),
                }
            )
    text = format_table(
        ["mode", "cores", "speedup", "efficiency", "inval/update"],
        [
            [
                r["mode"],
                r["cores"],
                r["speedup"],
                r["efficiency"],
                r["invalidations_per_update"],
            ]
            for r in rows
        ],
        title=(
            f"Scalability extension ({workload_name}/{input_name}): "
            "speedup vs 1 core"
        ),
    )
    return ExperimentResult(name="scaling", rows=rows, text=text)
