"""DRAM substrate: banked row-buffer model behind Table II's 80 ns."""

from repro.dram.model import DramConfig, DramModel, DramStats

__all__ = ["DramConfig", "DramModel", "DramStats"]
