"""Banked DRAM with row-buffer state (the 80 ns of Table II, opened up).

The core timing model charges a flat DRAM latency; this substrate explains
where that number comes from and how access *order* moves it. Each bank
keeps one open row: hitting it costs only CAS; a different row pays
precharge + activate + CAS. Sequential streams (PB's bin writes, bin
reads) hit open rows almost always, while scattered updates (the baseline)
close rows constantly — a second, DRAM-level reason binning helps that the
row-buffer ablation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive

__all__ = ["DramConfig", "DramStats", "DramModel"]


@dataclass(frozen=True)
class DramConfig:
    """Timing and geometry of the modeled DRAM (DDR-like, in core cycles).

    Defaults approximate Table II's 80 ns (≈213 cycles @ 2.66 GHz) as the
    *row-miss* path: tRP + tRCD + tCAS + transfer ≈ 210; a row hit costs
    tCAS + transfer ≈ 110.
    """

    num_banks: int = 16
    row_bytes: int = 8192
    line_bytes: int = 64
    trp_cycles: int = 50  # precharge
    trcd_cycles: int = 50  # activate
    tcas_cycles: int = 90  # column access
    transfer_cycles: int = 20  # burst over the bus

    def __post_init__(self):
        for name in ("num_banks", "row_bytes", "line_bytes", "trp_cycles",
                     "trcd_cycles", "tcas_cycles", "transfer_cycles"):
            check_positive(name, getattr(self, name))
        if self.row_bytes % self.line_bytes:
            raise ValueError("line size must divide the row size")

    @property
    def lines_per_row(self):
        """Cache lines per DRAM row."""
        return self.row_bytes // self.line_bytes

    @property
    def row_hit_latency(self):
        """Latency when the target row is already open."""
        return self.tcas_cycles + self.transfer_cycles

    @property
    def row_miss_latency(self):
        """Latency when another row occupies the bank."""
        return (
            self.trp_cycles
            + self.trcd_cycles
            + self.tcas_cycles
            + self.transfer_cycles
        )


@dataclass
class DramStats:
    """Row-buffer behaviour of one access stream."""

    accesses: int = 0
    row_hits: int = 0
    total_cycles: int = 0

    @property
    def row_hit_rate(self):
        """Fraction of accesses served from an open row."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def average_latency(self):
        """Mean per-access latency in cycles."""
        return self.total_cycles / self.accesses if self.accesses else 0.0


class DramModel:
    """Replays line-address streams against per-bank open-row state.

    Bank interleaving is row-granular (consecutive rows map to consecutive
    banks), the common layout that gives streams bank-level parallelism.
    """

    def __init__(self, config: DramConfig = None):
        self.config = config or DramConfig()
        self._open_rows = [None] * self.config.num_banks

    def access(self, line):
        """One line access; returns its latency in cycles."""
        cfg = self.config
        row = line // cfg.lines_per_row
        bank = row % cfg.num_banks
        if self._open_rows[bank] == row:
            return cfg.row_hit_latency
        self._open_rows[bank] = row
        return cfg.row_miss_latency

    def run(self, lines):
        """Replay a whole stream; returns :class:`DramStats`."""
        stats = DramStats()
        hit_latency = self.config.row_hit_latency
        for line in lines:
            latency = self.access(line)
            stats.accesses += 1
            stats.total_cycles += latency
            if latency == hit_latency:
                stats.row_hits += 1
        return stats

    def reset(self):
        """Close every row."""
        self._open_rows = [None] * self.config.num_banks
