"""Network-on-chip substrate: the Table II 4x4 mesh and its timing model."""

from repro.noc.model import NocModel, NocParams
from repro.noc.topology import Mesh2D

__all__ = ["Mesh2D", "NocModel", "NocParams"]
