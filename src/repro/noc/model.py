"""Analytic NoC latency and bandwidth model.

Turns the mesh topology plus Table II's link parameters (2-cycle hop
latency, 64 bits/cycle links) into the quantities the core timing model
consumes: the average remote-LLC-bank access latency (which grounds
``CoreParams.llc_remote_latency``) and an M/M/1-style contention factor
for loaded links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_positive
from repro.noc.topology import Mesh2D

__all__ = ["NocParams", "NocModel"]


@dataclass(frozen=True)
class NocParams:
    """Link and router parameters (Table II defaults)."""

    hop_cycles: int = 2
    link_bytes_per_cycle: int = 8  # 64 bits/cycle
    router_cycles: int = 1  # pipeline stage per router

    def __post_init__(self):
        check_positive("hop_cycles", self.hop_cycles)
        check_positive("link_bytes_per_cycle", self.link_bytes_per_cycle)


@dataclass
class NocModel:
    """Latency/bandwidth estimates over a :class:`Mesh2D`."""

    mesh: Mesh2D = field(default_factory=Mesh2D)
    params: NocParams = field(default_factory=NocParams)

    def message_latency(self, src, dst, payload_bytes=64):
        """Unloaded latency of one message (hops + serialization)."""
        hops = self.mesh.hops(src, dst)
        serialization = -(-payload_bytes // self.params.link_bytes_per_cycle)
        return (
            hops * (self.params.hop_cycles + self.params.router_cycles)
            + serialization
        )

    def mean_remote_latency(self, payload_bytes=64):
        """Average one-way latency to a uniformly random other node."""
        mean_hops = self.mesh.mean_hops()
        serialization = -(-payload_bytes // self.params.link_bytes_per_cycle)
        return mean_hops * (
            self.params.hop_cycles + self.params.router_cycles
        ) + serialization

    def remote_llc_latency(self, local_llc_cycles=21, payload_bytes=64):
        """Average load-to-use latency of a *remote* NUCA bank.

        Local bank access plus the round trip over the mesh (request one
        way, the line back the other). This is the derivation behind the
        default ``CoreParams.llc_remote_latency``.
        """
        request = self.mean_remote_latency(payload_bytes=8)
        response = self.mean_remote_latency(payload_bytes=payload_bytes)
        return local_llc_cycles + request + response

    def link_loads(self, traffic):
        """Bytes routed over each directed link.

        ``traffic`` maps (src, dst) node pairs to bytes sent; XY routing
        assigns each flow to its links.
        """
        loads = {link: 0.0 for link in self.mesh.all_links()}
        for (src, dst), volume in traffic.items():
            if src == dst:
                continue
            for link in self.mesh.links_on_route(src, dst):
                loads[link] += volume
        return loads

    def contention_factor(self, traffic, cycles):
        """M/M/1-style slowdown of the most loaded link.

        ``traffic`` as in :meth:`link_loads`; ``cycles`` is the window the
        traffic is spread over. Returns ``1 / (1 - utilization)`` of the
        hottest link (capped at 100), the factor by which queueing
        inflates NoC latency under load.
        """
        check_positive("cycles", cycles)
        loads = self.link_loads(traffic)
        if not loads:
            return 1.0
        peak = max(loads.values())
        utilization = peak / (cycles * self.params.link_bytes_per_cycle)
        if utilization >= 0.99:
            return 100.0
        return 1.0 / (1.0 - utilization)

    def uniform_traffic(self, bytes_per_node):
        """All-to-all uniform traffic map (each node sends to every other)."""
        nodes = self.mesh.num_nodes
        if nodes < 2:
            return {}
        per_pair = bytes_per_node / (nodes - 1)
        return {
            (src, dst): per_pair
            for src in range(nodes)
            for dst in range(nodes)
            if src != dst
        }
