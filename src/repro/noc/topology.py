"""2-D mesh network-on-chip topology (Table II: 4x4 mesh).

The simulated machine connects 16 cores (each with a NUCA LLC bank) by a
4x4 mesh with 2-cycle hop latency and 64-bit links. This module provides
the topology math: XY routing, hop distances, and the per-link routing
load that the analytic contention model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive

__all__ = ["Mesh2D"]


@dataclass(frozen=True)
class Mesh2D:
    """A width x height mesh with deterministic XY routing."""

    width: int = 4
    height: int = 4

    def __post_init__(self):
        check_positive("width", self.width)
        check_positive("height", self.height)

    @property
    def num_nodes(self):
        """Routers (= cores = LLC banks) in the mesh."""
        return self.width * self.height

    def coordinates(self, node):
        """(x, y) of ``node`` (row-major numbering)."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x, y):
        """Node ID at ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"({x}, {y}) outside the {self.width}x{self.height} mesh")
        return y * self.width + x

    def _check_node(self, node):
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} outside [0, {self.num_nodes})")

    def hops(self, src, dst):
        """Manhattan (XY-routing) hop count between two nodes."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src, dst):
        """The XY route as a list of nodes, source inclusive.

        X-dimension first, then Y — the standard deadlock-free dimension-
        ordered routing the analytic load model assumes.
        """
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        path = [self.node_at(sx, sy)]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.node_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.node_at(x, y))
        return path

    def links_on_route(self, src, dst):
        """Directed links (node, node) the XY route traverses."""
        path = self.route(src, dst)
        return list(zip(path, path[1:]))

    def mean_hops(self, from_node=None):
        """Mean hop count to a uniformly random *other* node.

        With ``from_node=None``, averages over all (src != dst) pairs —
        the quantity that sets the average remote NUCA bank latency.
        """
        nodes = range(self.num_nodes)
        if from_node is not None:
            self._check_node(from_node)
            sources = [from_node]
        else:
            sources = nodes
        total = 0
        pairs = 0
        for src in sources:
            for dst in nodes:
                if src == dst:
                    continue
                total += self.hops(src, dst)
                pairs += 1
        return total / pairs if pairs else 0.0

    def bisection_links(self):
        """Directed links crossing the vertical bisection (bandwidth bound)."""
        if self.width < 2:
            return 0
        return 2 * self.height  # one each way per row

    def all_links(self):
        """Every directed link in the mesh."""
        links = []
        for y in range(self.height):
            for x in range(self.width):
                node = self.node_at(x, y)
                if x + 1 < self.width:
                    east = self.node_at(x + 1, y)
                    links.append((node, east))
                    links.append((east, node))
                if y + 1 < self.height:
                    south = self.node_at(x, y + 1)
                    links.append((node, south))
                    links.append((south, node))
        return links
