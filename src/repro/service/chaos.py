"""Chaos drill: prove the sweep service's guarantees under injected faults.

The drill is the robustness acceptance test, runnable from CI
(``scripts/service_smoke.py``) and from the test suite at a small scale.
One run exercises every recovery path the service claims:

* **worker kill** — a ``kill=`` injector token SIGKILLs the pool worker
  simulating one point; the resilient executor rebuilds the pool and
  retries it;
* **worker stall** — a ``stall=`` token freezes a point long enough for
  the drill to ``kill -9`` the whole daemon mid-job;
* **journal torn-write** — ``torn=jobs`` tears a live job-journal
  append (seal-and-rewrite recovery), and the drill additionally
  appends a partial garbage line while the daemon is down, exactly what
  a death mid-``os.write`` leaves behind;
* **pool exhaustion / admission control** — the daemon runs with
  ``--queue-max 1``, so concurrent submissions are shed with 429 and
  must get in via the client's jittered-backoff retries;
* **crash recovery** — the daemon is SIGKILLed with jobs in flight and
  restarted; every job must complete without resubmission being
  *required* (retrying clients dedupe onto the same content-addressed
  job id);
* **graceful drain** — the surviving daemon gets SIGTERM and must exit
  0 with nothing lost.

The final assertion is the paper-repro invariant: every job's counters,
served from the service, are **bit-identical** to direct in-process
:class:`~repro.harness.runner.Runner` runs of the same points.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.faults import FaultInjector
from repro.harness.resultcache import counters_to_dict
from repro.harness.runner import Runner
from repro.service.client import ServiceClient, ServiceError
from repro.service.journal import JOURNAL_NAME
from repro.workloads.registry import resolve_point

__all__ = ["ChaosReport", "run_chaos_drill", "spawn_daemon", "wait_endpoint"]

_POLL = 0.05


@dataclass
class ChaosReport:
    """What the drill observed; ``ok`` is the pass/fail verdict."""

    jobs: int = 0
    completed: int = 0
    shed_responses: int = 0
    daemon_killed: bool = False
    journal_torn: bool = False
    drain_exit_code: int | None = None
    identical: bool = False
    errors: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.errors

    def as_dict(self):
        return {
            "jobs": self.jobs,
            "completed": self.completed,
            "shed_responses": self.shed_responses,
            "daemon_killed": self.daemon_killed,
            "journal_torn": self.journal_torn,
            "drain_exit_code": self.drain_exit_code,
            "identical": self.identical,
            "errors": list(self.errors),
            "ok": self.ok,
        }


def _repo_src():
    return str(Path(__file__).resolve().parents[2])


def spawn_daemon(state_dir, checkpoint_root, cache_dir, port, extra_env=None,
                 extra_args=None, telemetry=None):
    """Start a ``repro serve`` daemon subprocess (caller owns the Popen)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _repo_src()
    env["REPRO_RESULT_CACHE"] = str(cache_dir)
    env.pop("REPRO_FAULT_INJECT", None)
    env.pop("REPRO_CHECKPOINT_DIR", None)
    if extra_env:
        env.update(extra_env)
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
        "--state-dir",
        str(state_dir),
        "--checkpoint-dir",
        str(checkpoint_root),
    ]
    if telemetry is not None:
        argv += ["--telemetry", str(telemetry)]
    if extra_args:
        argv += [str(arg) for arg in extra_args]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_endpoint(state_dir, process=None, timeout=60.0, after=0.0):
    """Wait for a fresh ``endpoint.json`` (mtime > ``after``); returns it."""
    endpoint = Path(state_dir) / "endpoint.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process is not None and process.poll() is not None:
            stdout, stderr = process.communicate()
            raise RuntimeError(
                f"daemon exited {process.returncode} before binding:\n"
                f"{stdout}\n{stderr}"
            )
        try:
            if endpoint.stat().st_mtime > after:
                return json.loads(endpoint.read_text("utf-8"))
        except (OSError, ValueError):
            pass
        time.sleep(_POLL)
    raise RuntimeError(f"no endpoint.json under {state_dir} within {timeout}s")


def _drill_points(scale):
    """Three jobs over canary-family points; returns [(label, [specs])]."""
    return [
        (
            "chaos-graph",
            [
                {"point": f"degree-count:KRON:{scale}", "mode": "baseline"},
                {"point": f"degree-count:KRON:{scale}", "mode": "cobra"},
            ],
        ),
        (
            "chaos-sort",
            [
                {"point": f"integer-sort:U16:{scale}", "mode": "baseline"},
                {"point": f"integer-sort:U16:{scale}", "mode": "pb-sw"},
            ],
        ),
        (
            "chaos-extra",
            [{"point": f"degree-count:KRON:{scale}", "mode": "pb-sw"}],
        ),
    ]


def _expected_counters(jobs):
    """Direct in-process runs — the bit-identity reference."""
    runner = Runner(result_cache=None)
    expected = {}
    for label, specs in jobs:
        rows = []
        for spec in specs:
            workload = resolve_point(spec["point"])
            rows.append(
                counters_to_dict(
                    runner.run(workload, spec["mode"], use_cache=False)
                )
            )
        expected[label] = rows
    return expected


def run_chaos_drill(work_dir, scale=10, stall_seconds=4.0, print_fn=None,
                    telemetry=None):
    """Run the full drill under ``work_dir``; returns a :class:`ChaosReport`."""
    say = print_fn if print_fn is not None else (lambda *_: None)
    work = Path(work_dir)
    state_dir = work / "service"
    checkpoint_root = work / "runs"
    cache_dir = work / "cache"
    fault_state = work / "fault-state"
    for directory in (work, state_dir, checkpoint_root, cache_dir):
        directory.mkdir(parents=True, exist_ok=True)
    report = ChaosReport()
    jobs = _drill_points(scale)
    report.jobs = len(jobs)

    say(f"chaos: computing direct-run reference counters (scale {scale})")
    expected = _expected_counters(jobs)

    stall_token = FaultInjector.token(f"degree-count:KRON:{scale}", "baseline")
    kill_token = FaultInjector.token(f"integer-sort:U16:{scale}", "baseline")
    inject = (
        f"stall={stall_token};kill={kill_token};"
        f"stall_seconds={stall_seconds};torn=jobs;state={fault_state}"
    )
    daemon_args = ["--queue-max", "1", "--jobs", "2", "--timeout", "120"]

    say("chaos: booting daemon A with fault injection")
    daemon = spawn_daemon(
        state_dir,
        checkpoint_root,
        cache_dir,
        port=0,
        extra_env={"REPRO_FAULT_INJECT": inject},
        extra_args=daemon_args,
        telemetry=telemetry,
    )
    job_ids = {}
    submitted_lock = threading.Lock()
    try:
        endpoint = wait_endpoint(state_dir, daemon)
        port = endpoint["port"]

        def client_for(name, seed):
            return ServiceClient(
                port=port,
                retries=40,
                backoff=0.5,
                backoff_cap=4.0,
                seed=seed,
                client_name=name,
            )

        main_client = client_for("chaos-main", 1)
        label0, specs0 = jobs[0]
        # repro: noqa[worker-safety] HTTP job submission, not a pool submit
        payload = main_client.submit(specs0, label=label0)
        with submitted_lock:
            job_ids[label0] = payload["job"]["job_id"]
        say(f"chaos: {label0} accepted as {job_ids[label0]}")

        # Concurrent submitters slam the queue_max=1 daemon; they must be
        # shed with 429 and get in later via backoff (through the kill
        # and restart below).
        shed_clients = []
        errors = []

        def submit_job(position):
            label, specs = jobs[position]
            client = client_for(f"chaos-{position}", seed=10 + position)
            shed_clients.append(client)
            try:
                # repro: noqa[worker-safety] HTTP submission, not a pool
                response = client.submit(specs, label=label)
                with submitted_lock:
                    job_ids[label] = response["job"]["job_id"]
            except ServiceError as exc:
                errors.append(f"{label}: {exc}")

        threads = [
            threading.Thread(target=submit_job, args=(position,))
            for position in (1, 2)
        ]
        for thread in threads:
            thread.start()

        # Wait until job 0 is running (its first point is mid-stall) and
        # SIGKILL the daemon with all three jobs in flight.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            state = main_client.job(job_ids[label0])
            if state is not None and state["job"]["state"] == "running":
                break
            time.sleep(_POLL)
        else:
            report.errors.append("job 0 never reached running before kill")
        endpoint_mtime = (Path(state_dir) / "endpoint.json").stat().st_mtime
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30)
        report.daemon_killed = True
        say("chaos: daemon A SIGKILLed mid-job")

        # A death mid-append leaves a torn final line; fake one while the
        # daemon is down. Restart must seal and skip it.
        journal_path = state_dir / JOURNAL_NAME
        with open(journal_path, "ab") as handle:
            handle.write(b'{"job_id": "torn-mid-wri')
        report.journal_torn = True

        say("chaos: restarting daemon B on the same state")
        daemon = spawn_daemon(
            state_dir,
            checkpoint_root,
            cache_dir,
            port=port,
            extra_env={"REPRO_FAULT_INJECT": inject},
            extra_args=daemon_args,
            telemetry=telemetry,
        )
        wait_endpoint(state_dir, daemon, after=endpoint_mtime)

        for thread in threads:
            thread.join(timeout=240.0)
            if thread.is_alive():
                report.errors.append("a submitter thread never completed")
        report.errors.extend(errors)
        report.shed_responses = sum(
            client.shed_responses for client in shed_clients
        ) + main_client.shed_responses
        if report.shed_responses == 0:
            report.errors.append(
                "admission control never shed a submission (expected 429s)"
            )

        identical = True
        for label, _ in jobs:
            job_id = job_ids.get(label)
            if job_id is None:
                report.errors.append(f"{label}: never accepted")
                identical = False
                continue
            try:
                final = main_client.wait_job(job_id, timeout=300.0)
            except ServiceError as exc:
                report.errors.append(f"{label}: {exc}")
                identical = False
                continue
            if final["job"]["state"] != "completed":
                report.errors.append(
                    f"{label}: ended {final['job']['state']} "
                    f"({final['job'].get('error')})"
                )
                identical = False
                continue
            report.completed += 1
            results = final.get("results")
            if results != expected[label]:
                report.errors.append(
                    f"{label}: counters are not bit-identical to the "
                    "direct run"
                )
                identical = False
        report.identical = identical
        say(
            f"chaos: {report.completed}/{report.jobs} jobs completed, "
            f"{report.shed_responses} shed, identical={report.identical}"
        )

        say("chaos: SIGTERM drain of daemon B")
        daemon.send_signal(signal.SIGTERM)
        try:
            report.drain_exit_code = daemon.wait(timeout=120)
        except subprocess.TimeoutExpired:
            daemon.kill()
            report.errors.append("daemon B did not exit after SIGTERM")
        if report.drain_exit_code not in (0, None):
            report.errors.append(
                f"SIGTERM drain exited {report.drain_exit_code}, wanted 0"
            )
    except Exception as exc:  # noqa: BLE001 - the drill reports, never raises
        report.errors.append(f"{type(exc).__name__}: {exc}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)
    return report
