"""Crash-safe sweep service: a long-running daemon over the harness.

The one-shot CLI already survives worker crashes, stalls, and parent
death (:mod:`repro.harness.faults`, :mod:`repro.harness.checkpoint`);
this package keeps those guarantees up while turning the harness into a
long-lived local HTTP service:

:mod:`repro.service.journal`
    Append-only, fsync'd job journal with content-addressed job ids —
    ``kill -9`` + restart resumes every in-flight job automatically.
:mod:`repro.service.jobqueue`
    Admission control (bounded queue, 429 + ``Retry-After``, per-client
    caps, cache-only degraded mode), the worker loop driving
    :func:`~repro.harness.faults.run_sweep_resilient`, and graceful
    drain through a :class:`~repro.harness.faults.GracefulShutdown`
    latch.
:mod:`repro.service.server`
    The hand-rolled asyncio HTTP/1.1 front end (``/healthz``,
    ``/readyz``, ``/status``, ``/jobs``) behind ``repro serve``.
:mod:`repro.service.client`
    Stdlib client with jittered exponential backoff (``repro submit`` /
    ``repro jobs``).
:mod:`repro.service.chaos`
    The chaos drill proving the above under injected faults.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobqueue import AdmissionError, SweepService
from repro.service.journal import JobJournal, JobRecord

__all__ = [
    "AdmissionError",
    "JobJournal",
    "JobRecord",
    "ServiceClient",
    "ServiceError",
    "SweepService",
]
