"""Crash-safe job journal for the sweep service.

The service's authoritative job state lives in memory; this journal is
what survives a ``kill -9``. Every job lifecycle transition is one JSON
line appended with a single ``os.write`` on an ``O_APPEND`` descriptor
and fsync'd before the call returns — atomic at the line level, durable
at the transition level. Restart replays the file front to back and
folds the lines back into :class:`JobRecord` objects; jobs whose last
state is ``submitted``/``running``/``interrupted`` are re-enqueued, and
their sweep checkpoints (:mod:`repro.harness.checkpoint`, shared
content-addressed ids) splice the already-completed points back
bit-identically.

Torn writes are a designed-for case, not a corruption:

* a process killed mid-append leaves a partial final line; replay skips
  it with ``service_journal_corrupt`` telemetry, and the next writer
  **seals** the torn tail with a newline before appending, so later
  lines never merge into the garbage;
* the ``torn=jobs`` directive of
  :class:`~repro.harness.faults.FaultInjector` exercises that machinery
  deterministically from inside a live daemon: the append writes a torn
  prefix, closes the descriptor, reopens (sealing the tail), and
  rewrites the full line — the chaos drill asserts no transition is
  lost.

Job ids are :func:`~repro.harness.checkpoint.content_id` hashes of the
machine digest plus ordered point specs — exactly a sweep checkpoint's
``run_id`` — so a job *is* its checkpoint: resubmitting identical work
dedupes, and results are always served from the checkpoint journal.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.harness.telemetry import NULL_TELEMETRY

__all__ = [
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_INTERRUPTED",
    "JOB_RUNNING",
    "JOB_STATES",
    "JOB_SUBMITTED",
    "JOURNAL_NAME",
    "JobJournal",
    "JobRecord",
    "PENDING_STATES",
]

JOURNAL_NAME = "jobs.jsonl"

JOB_SUBMITTED = "submitted"
JOB_RUNNING = "running"
JOB_COMPLETED = "completed"
JOB_FAILED = "failed"
JOB_INTERRUPTED = "interrupted"

JOB_STATES = (
    JOB_SUBMITTED,
    JOB_RUNNING,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_INTERRUPTED,
)

#: States a restarted daemon re-enqueues (``interrupted`` means a drain
#: stopped the job mid-sweep; its checkpoint holds the finished points).
PENDING_STATES = frozenset({JOB_SUBMITTED, JOB_RUNNING, JOB_INTERRUPTED})


@dataclass
class JobRecord:
    """One job's current state as folded from the journal."""

    job_id: str
    points: tuple = ()
    state: str = JOB_SUBMITTED
    label: str | None = None
    client: str | None = None
    submitted: float = 0.0
    updated: float = 0.0
    error: str | None = None
    from_cache: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def pending(self):
        return self.state in PENDING_STATES

    def as_dict(self):
        """The JSON shape shared by ``/jobs`` and ``repro jobs``."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "points": [dict(spec) for spec in self.points],
            "label": self.label,
            "client": self.client,
            "submitted": self.submitted,
            "updated": self.updated,
            "error": self.error,
            "from_cache": self.from_cache,
        }


class JobJournal:
    """Append-only fsync'd journal of job lifecycle transitions."""

    #: Name under which the torn-write injector addresses this journal.
    TORN_TOKEN = "jobs"

    def __init__(self, path, telemetry=None, injector=None):
        self.path = Path(path)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.injector = injector
        # One writer at a time: admissions append from the request
        # executor while the worker thread journals transitions, and the
        # torn-write drill's close/reopen must not interleave with either.
        self._lock = threading.Lock()
        self._fd = None

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def _tail_torn(self):
        """True when the file ends mid-line (a writer died mid-append)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def _descriptor(self):
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            torn = self._tail_torn()
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
            if torn:
                # Seal the torn tail so the next append starts a fresh
                # line; replay will skip the sealed garbage line.
                os.write(self._fd, b"\n")
                self.telemetry.emit("service_journal_sealed", path=str(self.path))
        return self._fd

    def append(self, job_id, state, **fields):
        """Durably journal one transition (single-line append + fsync)."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        entry = {
            "job_id": job_id,
            "state": state,
            # repro: noqa[nondet] journal timestamps are operator metadata;
            # recovery keys off job ids and states, never off wall-clock
            "ts": time.time(),
        }
        entry.update(fields)
        data = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            fd = self._descriptor()
            if self.injector is not None and self.injector.maybe_tear(
                self.TORN_TOKEN
            ):
                # Injected torn write: leave a partial line (what a kill -9
                # mid-append leaves behind), then recover exactly as a fresh
                # writer would — reopen seals the tail — and rewrite the full
                # transition so chaos drills can assert nothing was lost.
                os.write(fd, data[: max(1, len(data) // 2)])
                self.telemetry.emit(
                    "service_journal_torn", job_id=job_id, state=state
                )
                self._close()
                fd = self._descriptor()
            os.write(fd, data)
            try:
                os.fsync(fd)
            except OSError:
                pass

    def flush(self):
        with self._lock:
            self._flush()

    def _flush(self):
        if self._fd is not None:
            try:
                os.fsync(self._fd)
            except OSError:
                pass

    def close(self):
        with self._lock:
            self._close()

    def _close(self):
        if self._fd is not None:
            self._flush()
            os.close(self._fd)
            self._fd = None

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def replay(self):
        """``{job_id: JobRecord}`` in submission order, corrupt lines skipped.

        A line is only trusted if it parses, names a known state, and —
        for the first sighting of a job — carries the job's point specs
        (a torn ``submitted`` line whose later transitions survive is
        unrecoverable and skipped with telemetry; the client's retry
        resubmits the job under the same content-addressed id).
        """
        records = {}
        if not self.path.is_file():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    job_id = entry["job_id"]
                    state = entry["state"]
                    if not isinstance(job_id, str) or state not in JOB_STATES:
                        raise ValueError("malformed journal entry")
                except (ValueError, KeyError, TypeError):
                    self.telemetry.emit(
                        "service_journal_corrupt",
                        path=str(self.path),
                        line=lineno,
                    )
                    continue
                record = records.get(job_id)
                if record is None:
                    points = entry.get("points")
                    if not isinstance(points, list) or not points:
                        self.telemetry.emit(
                            "service_journal_corrupt",
                            path=str(self.path),
                            line=lineno,
                            job_id=job_id,
                        )
                        continue
                    records[job_id] = JobRecord(
                        job_id=job_id,
                        points=tuple(dict(spec) for spec in points),
                        state=state,
                        label=entry.get("label"),
                        client=entry.get("client"),
                        submitted=float(entry.get("ts", 0.0)),
                        updated=float(entry.get("ts", 0.0)),
                        from_cache=bool(entry.get("from_cache", False)),
                    )
                    continue
                records[job_id] = replace(
                    record,
                    state=state,
                    updated=float(entry.get("ts", record.updated)),
                    error=entry.get("error", record.error),
                    from_cache=bool(
                        entry.get("from_cache", record.from_cache)
                    ),
                )
        return records
