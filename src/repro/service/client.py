"""Stdlib HTTP client for the sweep service, with disciplined retries.

The chaos drill's contract — every submitted job eventually completes,
bit-identically, through daemon kills and restarts — is only meaningful
if the *client* side behaves: :meth:`ServiceClient.submit_with_retry`
retries connection failures (daemon restarting) and 429/503 refusals
(admission control) with jittered exponential backoff, honoring the
server's ``Retry-After`` hint when one is present. The jitter source is
an explicitly seeded ``random.Random`` so a drill's retry schedule is
reproducible run to run.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from pathlib import Path

__all__ = ["ServiceClient", "ServiceError"]

_RETRYABLE = frozenset({429, 503})


class ServiceError(RuntimeError):
    """A non-retryable (or retry-exhausted) service response."""

    def __init__(self, message, status=None, payload=None):
        super().__init__(message)
        self.status = status
        self.payload = payload if payload is not None else {}


class ServiceClient:
    """Talk to one sweep-service daemon over local HTTP/JSON."""

    def __init__(
        self,
        host="127.0.0.1",
        port=None,
        *,
        timeout=30.0,
        retries=8,
        backoff=0.25,
        backoff_cap=10.0,
        seed=0,
        client_name=None,
    ):
        if port is None:
            raise ValueError("ServiceClient needs a port (or from_state_dir)")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.client_name = client_name
        self._rng = random.Random(seed)
        #: 429/503 refusals observed across retrying calls (chaos drills
        #: assert admission control actually fired).
        self.shed_responses = 0

    @classmethod
    def from_state_dir(cls, state_dir, **kwargs):
        """Discover the daemon through its published ``endpoint.json``."""
        endpoint = Path(state_dir) / "endpoint.json"
        payload = json.loads(endpoint.read_text("utf-8"))
        return cls(host=payload["host"], port=payload["port"], **kwargs)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def request(self, method, path, payload=None):
        """One HTTP exchange; returns ``(status, headers, json_payload)``."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
            headers["Content-Length"] = str(len(body))
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                parsed = {"error": raw.decode("utf-8", "replace")}
            return response.status, dict(response.getheaders()), parsed
        finally:
            connection.close()

    def _delay(self, attempt, headers):
        retry_after = None
        for name, value in headers.items():
            if name.lower() == "retry-after":
                try:
                    retry_after = float(value)
                except ValueError:
                    pass
        delay = min(self.backoff_cap, self.backoff * (2**attempt))
        # Full jitter: anywhere in (0.5, 1.0] of the window, so a herd of
        # shed clients does not re-arrive in lockstep.
        delay *= 0.5 + 0.5 * self._rng.random()
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    def request_with_retry(self, method, path, payload=None):
        """Retry connection errors and 429/503 with jittered backoff."""
        last_error = None
        for attempt in range(self.retries + 1):
            try:
                status, headers, parsed = self.request(method, path, payload)
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                status, headers, parsed = None, {}, {}
            else:
                if status not in _RETRYABLE:
                    return status, headers, parsed
                self.shed_responses += 1
                last_error = parsed.get("error", f"HTTP {status}")
            if attempt < self.retries:
                time.sleep(self._delay(attempt, headers))
        raise ServiceError(
            f"{method} {path} failed after {self.retries + 1} attempts: "
            f"{last_error}",
            status=status,
            payload=parsed,
        )

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #

    def healthz(self):
        return self.request("GET", "/healthz")[0] == 200

    def readyz(self):
        return self.request("GET", "/readyz")[0] == 200

    def status(self):
        status, _, payload = self.request_with_retry("GET", "/status")
        if status != 200:
            raise ServiceError("status failed", status=status, payload=payload)
        return payload

    def jobs(self):
        status, _, payload = self.request_with_retry("GET", "/jobs")
        if status != 200:
            raise ServiceError("jobs failed", status=status, payload=payload)
        return payload

    def job(self, job_id):
        status, _, payload = self.request_with_retry("GET", f"/jobs/{job_id}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(
                f"job {job_id} failed", status=status, payload=payload
            )
        return payload

    def submit(self, points, label=None):
        """Submit once, retrying refusals/outages; returns the job payload."""
        body = {"points": list(points), "label": label}
        if self.client_name is not None:
            body["client"] = self.client_name
        status, _, payload = self.request_with_retry("POST", "/jobs", body)
        if status in (200, 202):
            return payload
        raise ServiceError(
            payload.get("error", f"submit failed (HTTP {status})"),
            status=status,
            payload=payload,
        )

    def wait_job(self, job_id, timeout=600.0, poll=0.2):
        """Poll until the job leaves the pending states; returns its payload.

        Connection outages during the wait are retried — a daemon being
        killed and restarted mid-job is exactly the scenario the chaos
        drill exercises — so only a genuinely missing job or the timeout
        raises.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload is not None:
                state = payload["job"]["state"]
                if state not in ("submitted", "running", "interrupted"):
                    return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still pending after {timeout:.0f}s"
                )
            time.sleep(poll)
