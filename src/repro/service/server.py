"""Hand-rolled asyncio HTTP/1.1 front end of the sweep service.

No web framework, no new dependencies: ``asyncio.start_server`` plus a
minimal one-request-per-connection HTTP parser. The simulation work all
happens on the :class:`~repro.service.jobqueue.SweepService` worker
thread (and its process pool), so the event loop stays free to answer
liveness probes while multi-second sweeps run.

Routes::

    GET  /healthz    liveness: 200 while the process is up (drain too)
    GET  /readyz     readiness: 503 while draining or saturated
    GET  /status     queue depth, pool state, heartbeat age, cache rate
    GET  /jobs       all jobs (shares the `repro runs --json` serializer)
    GET  /jobs/<id>  one job, with results once completed
    POST /jobs       submit {"points": [...], "label":, "client":}

Refusals carry structured JSON plus a ``Retry-After`` header (429 when
the bounded queue or a per-client cap sheds load, 503 while draining),
so well-behaved clients — :class:`repro.service.client.ServiceClient` —
can back off with jitter instead of hammering a saturated daemon.

On bind the server publishes ``endpoint.json`` (host, actual port, pid)
into the service state directory; ``--port 0`` therefore works for
tests and chaos drills, and ``repro submit``/``repro jobs`` discover
the daemon with ``--state-dir`` alone. SIGTERM/SIGINT trigger the
graceful drain; a second signal abandons the deadline and exits
immediately (jobs are journaled either way).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from pathlib import Path

from repro.harness.checkpoint import _atomic_write_json
from repro.service.jobqueue import AdmissionError

__all__ = ["DEFAULT_PORT", "ENDPOINT_NAME", "ServiceServer", "serve_forever"]

DEFAULT_PORT = 8377
ENDPOINT_NAME = "endpoint.json"

_MAX_BODY = 1 << 20
_MAX_HEADER_LINES = 64

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    pass


async def _read_request(reader):
    """Parse one HTTP/1.1 request; returns (method, path, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("client closed")
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise _BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    length = 0
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise _BadRequest("bad Content-Length") from None
    else:
        raise _BadRequest("too many headers")
    if length < 0 or length > _MAX_BODY:
        raise _BadRequest("body too large")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method, path, body


class ServiceServer:
    """One :class:`SweepService` behind a local asyncio HTTP listener."""

    def __init__(self, service, host="127.0.0.1", port=DEFAULT_PORT):
        self.service = service
        self.host = host
        self.port = port
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        # endpoint.json is written atomically (tmp + fsync + rename);
        # keep the fsync off the event loop. host/port travel as
        # arguments so the executor thread reads no instance state.
        await asyncio.get_running_loop().run_in_executor(
            None, self._publish_endpoint, self.host, self.port
        )
        return self

    def _publish_endpoint(self, host, port):
        state_dir = Path(self.service.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            state_dir / ENDPOINT_NAME,
            {"host": host, "port": port, "pid": os.getpid()},
        )

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    async def _handle(self, reader, writer):
        try:
            try:
                method, path, body = await _read_request(reader)
            except _BadRequest as exc:
                status, payload, headers = 400, {"error": str(exc)}, {}
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                return
            else:
                # Routing ends in journal fsyncs and checkpoint writes on
                # the submit path; run it on the default executor so the
                # event loop keeps answering liveness probes while a
                # submission is on the disk.
                status, payload, headers = await asyncio.get_running_loop(
                ).run_in_executor(
                    None, self.handle_request, method, path, body
                )
            data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            head = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(data)}",
                "Connection: close",
            ]
            head.extend(f"{name}: {value}" for name, value in headers.items())
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def handle_request(self, method, path, body):
        """Route one request; returns ``(status, payload, extra_headers)``.

        Pure function of the service state — no sockets — so the full
        routing table is unit-testable without a running event loop.
        """
        service = self.service
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}, {}
            return 200, {"ok": True}, {}
        if path == "/readyz":
            if method != "GET":
                return 405, {"error": "GET only"}, {}
            status = service.status()
            if status["state"] == "running":
                return 200, {"ready": True}, {}
            return (
                503,
                {"ready": False, "reason": status["state"]},
                {"Retry-After": "1"},
            )
        if path == "/status":
            if method != "GET":
                return 405, {"error": "GET only"}, {}
            return 200, service.status(), {}
        if path == "/jobs" and method == "GET":
            return 200, {"version": 1, "jobs": service.jobs_payload()}, {}
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path.startswith("/jobs/") and method == "GET":
            return self._job(path[len("/jobs/"):])
        if path.startswith("/jobs"):
            return 405, {"error": "unsupported method"}, {}
        return 404, {"error": f"no route {path}"}, {}

    def _submit(self, body):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}, {}
        try:
            # repro: noqa[worker-safety] job admission, not a pool submit
            record, results, accepted = self.service.submit(
                payload.get("points"),
                label=payload.get("label"),
                client=payload.get("client"),
            )
        except AdmissionError as exc:
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(exc.retry_after)
            return exc.status, {"error": str(exc)}, headers
        except ValueError as exc:
            return 400, {"error": str(exc)}, {}
        response = {"job": self.service.job_payload(record), "accepted": accepted}
        if results is not None:
            response["results"] = results
            return 200, response, {}
        return 202, response, {}

    def _job(self, job_id):
        record = self.service.job(job_id)
        if record is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        response = {"job": self.service.job_payload(record)}
        if record.state == "completed":
            response["results"] = self.service.results(job_id)
        return 200, response, {}


async def serve_forever(service, host="127.0.0.1", port=DEFAULT_PORT, print_fn=None):
    """Run the server until a signal drains it; returns the exit code.

    First SIGTERM/SIGINT: stop admissions, drain with the service's
    deadline, exit 0 (1 if the drain timed out — jobs are journaled
    either way). Second signal: abandon the wait and exit immediately.
    """
    server = await ServiceServer(service, host, port).start()
    if print_fn is not None:
        print_fn(
            f"sweep service listening on {server.host}:{server.port} "
            f"(state: {service.state_dir})"
        )
    loop = asyncio.get_running_loop()
    stopped = asyncio.Event()
    outcome = {"code": 0, "draining": False}

    async def _drain(signum):
        clean = await loop.run_in_executor(None, service.drain, signum)
        outcome["code"] = 0 if clean else 1
        stopped.set()

    def _on_signal(signum):
        if outcome["draining"]:
            outcome["code"] = 1
            stopped.set()
            return
        outcome["draining"] = True
        loop.create_task(_drain(signum))

    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, _on_signal, signum)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        await stopped.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.close()
        # service.close() fsyncs the job journal shut; same executor
        # treatment as the request path.
        await loop.run_in_executor(None, service.close)
    if print_fn is not None:
        print_fn(
            "sweep service drained"
            if outcome["code"] == 0
            else "sweep service exited with undrained work (journaled)"
        )
    return outcome["code"]
