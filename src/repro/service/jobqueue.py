"""Job queue + admission control + graceful drain of the sweep service.

:class:`SweepService` is the daemon's engine room, independent of any
HTTP front end (the tests drive it directly):

* **Submission** normalizes point specs, derives the content-addressed
  job id (machine digest + ordered specs — exactly the sweep
  checkpoint's ``run_id``), and journals the job durably before
  acknowledging it. Identical resubmissions dedupe onto the existing
  job.
* **Admission control** keeps the daemon honest under load: a bounded
  queue (``REPRO_SERVICE_QUEUE_MAX``) sheds excess submissions with an
  :class:`AdmissionError` carrying 429 + ``Retry-After``; per-client
  in-flight caps stop one client from starving the rest; and a
  saturated or draining service still answers fully-cached submissions
  from the :class:`~repro.harness.resultcache.ResultCache` read-through
  tier (cache-only degraded mode) instead of hanging or dropping them.
* **Execution** happens on a single worker thread that feeds whole jobs
  to :func:`~repro.harness.faults.run_sweep_resilient` (pool
  parallelism lives inside each sweep), with every completed point
  journaled by the job's :class:`~repro.harness.checkpoint.SweepCheckpoint`.
* **Drain** (:meth:`SweepService.drain`) stops admissions, flips the
  shared :class:`~repro.harness.faults.GracefulShutdown` latch so the
  in-flight sweep stops submitting points and journals what finished,
  and waits out ``REPRO_SERVICE_DRAIN_DEADLINE``. Undrained jobs stay
  journaled; a restarted daemon re-enqueues them automatically
  (:meth:`SweepService.recover`) and resumes bit-identically.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.harness import knobs
from repro.harness.checkpoint import (
    SweepCheckpoint,
    content_id,
    default_checkpoint_dir,
    run_summary,
)
from repro.harness.faults import (
    FaultInjector,
    GracefulShutdown,
    run_sweep_resilient,
)
from repro.harness.modes import ExecutionMode
from repro.harness.resultcache import counters_to_dict
from repro.harness.telemetry import NULL_TELEMETRY
from repro.service.journal import (
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_INTERRUPTED,
    JOB_RUNNING,
    JOB_STATES,
    JOB_SUBMITTED,
    JOURNAL_NAME,
    JobJournal,
    JobRecord,
    PENDING_STATES,
)

__all__ = ["AdmissionError", "SweepService"]

DEFAULT_QUEUE_MAX = 64
DEFAULT_DRAIN_DEADLINE = 30.0
DEFAULT_CLIENT_MAX = 8


def _knob_float(name, default):
    raw = knobs.read(name)
    return default if raw is None or not raw.strip() else float(raw)


def _knob_int(name, default):
    raw = knobs.read(name)
    return default if raw is None or not raw.strip() else int(raw)


class AdmissionError(Exception):
    """A submission the service refused; carries the HTTP shape."""

    def __init__(self, message, status=429, retry_after=None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class _ServiceTelemetry:
    """Telemetry tee: forwards to the real sink, updates service stats.

    The service's ``/status`` endpoint surfaces pool health and
    heartbeat staleness straight from the executor's event stream —
    this wrapper is how those events are observed without the executor
    knowing a service exists.
    """

    enabled = True

    def __init__(self, service, inner):
        self._service = service
        self._inner = inner

    def emit(self, event, **fields):
        self._service._note_event(event)
        if self._inner is not None and self._inner.enabled:
            self._inner.emit(event, **fields)

    def emit_timed(self, event, duration_s, **fields):
        self._service._note_event(event)
        if self._inner is not None and self._inner.enabled:
            self._inner.emit_timed(event, duration_s, **fields)

    def flush(self):
        if self._inner is not None:
            self._inner.flush()

    def close(self):
        if self._inner is not None:
            self._inner.close()


class SweepService:
    """The journaled, admission-controlled job engine behind ``repro serve``."""

    def __init__(
        self,
        runner,
        state_dir,
        *,
        queue_max=None,
        client_max=DEFAULT_CLIENT_MAX,
        sweep_jobs=2,
        checkpoint_root=None,
        drain_deadline=None,
        telemetry=None,
        injector=None,
    ):
        self.runner = runner
        self.state_dir = state_dir
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.injector = (
            injector if injector is not None else FaultInjector.from_env()
        )
        self.queue_max = (
            queue_max
            if queue_max is not None
            else _knob_int("REPRO_SERVICE_QUEUE_MAX", DEFAULT_QUEUE_MAX)
        )
        self.client_max = client_max
        self.sweep_jobs = max(1, int(sweep_jobs))
        self.checkpoint_root = (
            checkpoint_root
            if checkpoint_root is not None
            else default_checkpoint_dir()
        )
        self.drain_deadline = (
            drain_deadline
            if drain_deadline is not None
            else _knob_float(
                "REPRO_SERVICE_DRAIN_DEADLINE", DEFAULT_DRAIN_DEADLINE
            )
        )
        self.journal = JobJournal(
            Path(state_dir) / JOURNAL_NAME,
            telemetry=self.telemetry,
            injector=self.injector,
        )
        self._sink = _ServiceTelemetry(self, self.telemetry)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self.jobs = {}
        self._queue = []
        self._running = None
        self._draining = False
        self._latch = GracefulShutdown()  # flipped by drain(); never installed
        self._worker = None
        self._started = time.monotonic()
        self._last_event = None
        self._stats = {
            "shed": 0,
            "cache_served": 0,
            "recovered": 0,
            "pool_rebuilds": 0,
            "serial_fallbacks": 0,
            "stalls": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self):
        """Recover journaled jobs, then start the worker thread."""
        self.recover()
        self._worker = threading.Thread(
            target=self._run_loop, name="sweep-service-worker", daemon=True
        )
        self._worker.start()
        return self

    def recover(self):
        """Re-enqueue every journaled job whose last state is pending.

        Execution goes through the job's sweep checkpoint, so a job that
        was killed mid-run re-runs only its unfinished points and a job
        whose every point was already journaled completes instantly —
        both bit-identical to an uninterrupted run.
        """
        restored = 0
        with self._wake:
            for job_id, record in self.journal.replay().items():
                self.jobs[job_id] = record
                if record.pending:
                    record.state = JOB_SUBMITTED
                    self._queue.append(job_id)
                    restored += 1
            self._stats["recovered"] = restored
            self._wake.notify_all()
        if restored:
            self.telemetry.emit("service_recovered", restored=restored)
        return restored

    @property
    def draining(self):
        with self._lock:
            return self._draining

    def drain(self, signum=None):
        """Stop admissions, drain the in-flight job, journal the rest.

        Returns True when the worker finished inside the deadline (exit
        code 0 territory); False when it had to be abandoned — either
        way every queued job is already journaled ``submitted`` and the
        running one ends ``interrupted``, so a restart loses nothing.
        """
        with self._wake:
            if self._draining:
                return True
            self._draining = True
            self._latch.requested = True
            self._latch.signum = signum
            queued = len(self._queue)
            running = self._running
            self._wake.notify_all()
        self.telemetry.emit(
            "service_draining", signal=signum, queued=queued, running=running
        )
        clean = True
        if self._worker is not None and self._worker.is_alive():
            self._worker.join(timeout=max(0.0, self.drain_deadline))
            clean = not self._worker.is_alive()
        undrained = None
        with self._lock:
            if not clean and self._running is not None:
                # The worker is wedged past the deadline; journal the
                # in-flight job as interrupted so restart picks it up.
                undrained = self._running
                record = self.jobs.get(undrained)
                if record is not None:
                    record.state = JOB_INTERRUPTED
            queued = len(self._queue)
        if undrained is not None:
            self.journal.append(undrained, JOB_INTERRUPTED, error="drain timeout")
        self.telemetry.emit(
            "service_drained", clean=clean, queued=queued, lost=0
        )
        self.journal.flush()
        return clean

    def close(self):
        self.journal.close()

    # ------------------------------------------------------------------ #
    # Submission / admission control
    # ------------------------------------------------------------------ #

    @staticmethod
    def normalize_points(raw_points):
        """Validate submitted point specs into ``[(cache_key, mode)]``.

        Accepts the compact wire form (``{"point": "name:input:scale",
        "mode": m}``), the canonical spec form (``{"point":
        "name/input@scale", "mode": m}``), or the explicit form
        (``{"workload", "input", "scale", "mode"}``). Raises ``ValueError``
        with a client-facing message on malformed input; unknown workload
        *names* are left to the executor (the job fails with a recorded
        error) so admission never has to build input arrays. Canonical
        specs without a scale resolve through the registry (ingested
        inputs pin their own natural scale).
        """
        if not isinstance(raw_points, (list, tuple)) or not raw_points:
            raise ValueError("points must be a non-empty list")
        normalized = []
        for position, raw in enumerate(raw_points):
            if not isinstance(raw, dict):
                raise ValueError(f"points[{position}] must be an object")
            mode = str(ExecutionMode.coerce(raw.get("mode", "baseline")))
            if "point" in raw and "/" in str(raw["point"]):
                from repro.workloads.registry import (
                    effective_scale,
                    parse_spec,
                )

                try:
                    name, input_name, scale = parse_spec(str(raw["point"]))
                    scale = effective_scale(input_name, scale)
                except ValueError as exc:
                    raise ValueError(f"points[{position}]: {exc}") from None
            elif "point" in raw:
                pieces = str(raw["point"]).split(":")
                if len(pieces) != 3:
                    raise ValueError(
                        f"points[{position}].point must be "
                        "'workload:input:scale' or 'workload/input[@scale]'"
                    )
                name, input_name, scale = pieces
            else:
                name = raw.get("workload")
                input_name = raw.get("input")
                scale = raw.get("scale")
                if not name or not input_name or scale is None:
                    raise ValueError(
                        f"points[{position}] needs workload, input, scale "
                        "(or a compact 'point' key)"
                    )
            try:
                scale = int(scale)
            except (TypeError, ValueError):
                raise ValueError(
                    f"points[{position}].scale must be an integer"
                ) from None
            if scale <= 0:
                raise ValueError(f"points[{position}].scale must be positive")
            normalized.append((f"{name}:{input_name}:{scale}", mode))
        return normalized

    def _specs_for(self, normalized):
        return [
            {
                "point": cache_key,
                "mode": mode,
                "digest": self.runner.point_digest(cache_key, mode),
            }
            for cache_key, mode in normalized
        ]

    def job_id_for(self, specs):
        """The content-addressed job id (== the sweep checkpoint run id)."""
        return content_id(
            {"machine": self.runner.machine_digest(), "points": specs}
        )

    def _cache_probe(self, specs):
        """All-points-cached read-through, or None on any miss."""
        cache = self.runner.result_cache
        if cache is None:
            return None
        results = []
        for spec in specs:
            counters = cache.get(spec["digest"])
            if counters is None:
                return None
            results.append(counters)
        return results

    def _retry_after(self, depth):
        """Client back-off hint, scaled by how far over capacity we are."""
        return round(min(30.0, 1.0 + 0.5 * depth), 1)

    def submit(self, raw_points, label=None, client=None):
        """Admit one job; returns ``(record, results_or_None, accepted)``.

        ``accepted`` is False for dedupe hits (the job already existed).
        ``results`` is non-None only when the job is already complete —
        a duplicate of a finished job or a fully-cached submission served
        in read-through mode. Refusals raise :class:`AdmissionError`.
        """
        normalized = self.normalize_points(raw_points)
        specs = self._specs_for(normalized)
        job_id = self.job_id_for(specs)
        dedupe_hit = None
        with self._wake:
            record = self.jobs.get(job_id)
            if record is not None:
                if record.state == JOB_COMPLETED:
                    # results() takes the admission lock itself (the
                    # Condition wraps the same non-reentrant Lock), so
                    # the dedupe hit is served after releasing it.
                    dedupe_hit = record
                elif record.pending:
                    return record, None, False
                # A previously failed job: fall through and requeue it.
            if dedupe_hit is None:
                if self._draining:
                    raise AdmissionError(
                        "service is draining; submit to the restarted daemon",
                        status=503,
                        retry_after=self._retry_after(len(self._queue)),
                    )
                cached = self._cache_probe(specs)
                record = JobRecord(
                    job_id=job_id,
                    points=tuple(specs),
                    label=label,
                    client=client,
                    # repro: noqa[nondet] display-only submission stamp; job
                    # identity and recovery key off the content-addressed id
                    submitted=time.time(),
                    from_cache=cached is not None,
                )
                record.updated = record.submitted
                if cached is not None:
                    # Degraded/cache-only tier: even a saturated or
                    # rebuilding service serves fully-cached jobs without
                    # queueing them.
                    self._stats["cache_served"] += 1
                    self.jobs[job_id] = record
                    record.state = JOB_COMPLETED
                else:
                    depth = len(self._queue) + (1 if self._running else 0)
                    if depth >= self.queue_max:
                        self._stats["shed"] += 1
                        self.telemetry.emit(
                            "service_shed", client=client, depth=depth
                        )
                        raise AdmissionError(
                            f"queue full ({depth}/{self.queue_max}); "
                            "cache-only degraded mode",
                            status=429,
                            retry_after=self._retry_after(depth),
                        )
                    in_flight = sum(
                        1
                        for other in self.jobs.values()
                        if other.pending and other.client == client
                    )
                    if client is not None and in_flight >= self.client_max:
                        self._stats["shed"] += 1
                        raise AdmissionError(
                            f"client {client!r} has {in_flight} jobs in "
                            f"flight (cap {self.client_max})",
                            status=429,
                            retry_after=self._retry_after(in_flight),
                        )
                    self.jobs[job_id] = record
                    self._queue.append(job_id)
                    self._wake.notify_all()
        if dedupe_hit is not None:
            return dedupe_hit, self.results(job_id), False
        # Journal outside the wake lock: fsync latency must not block
        # admission decisions for other clients.
        self.journal.append(
            job_id,
            JOB_SUBMITTED,
            points=list(record.points),
            label=label,
            client=client,
        )
        if record.from_cache:
            self._record_cached(record)
            self.journal.append(job_id, JOB_COMPLETED, from_cache=True)
            self.telemetry.emit(
                "service_job_completed", job_id=job_id, from_cache=True
            )
            return record, self.results(job_id), True
        self.telemetry.emit(
            "service_job_submitted", job_id=job_id, points=len(record.points)
        )
        return record, None, True

    def _record_cached(self, record):
        """Materialize a cache-served job's checkpoint so results() is
        uniform (and resume-proof) across execution paths."""
        checkpoint = self._checkpoint_for(record)
        try:
            already = checkpoint.completed_counters()
            for index, spec in enumerate(record.points):
                if index in already:
                    continue
                counters = self.runner.result_cache.get(spec["digest"])
                if counters is not None:
                    checkpoint.record(index, counters)
            checkpoint.mark_completed()
        finally:
            checkpoint.close()

    # ------------------------------------------------------------------ #
    # Results / introspection
    # ------------------------------------------------------------------ #

    def _checkpoint_for(self, record):
        return SweepCheckpoint.attach_specs(
            self.checkpoint_root,
            self.runner.machine_digest(),
            list(record.points),
            label=record.label or f"service:{record.job_id}",
            telemetry=self._sink,
        )

    def job(self, job_id):
        """The in-memory record for ``job_id`` (None when unknown).

        The jobs table is written by the worker thread and read from the
        request executor; this is the locked accessor both sides share.
        """
        with self._lock:
            return self.jobs.get(job_id)

    def results(self, job_id):
        """Journaled counters for ``job_id`` in point order (None = missing).

        Results are always served from the job's sweep-checkpoint
        journal — the single bit-identical source of truth shared with
        ``repro resume`` — never from transient in-memory state.
        """
        record = self.job(job_id)
        if record is None:
            return None
        try:
            checkpoint = SweepCheckpoint.load(self.checkpoint_root, job_id)
        except FileNotFoundError:
            return [None] * len(record.points)
        completed = checkpoint.completed_counters()
        return [
            counters_to_dict(completed[index]) if index in completed else None
            for index in range(len(record.points))
        ]

    def job_payload(self, record):
        """The ``/jobs`` JSON for one record, sharing the ``repro runs``
        serializer for the checkpoint summary block."""
        payload = record.as_dict()
        try:
            checkpoint = SweepCheckpoint.load(
                self.checkpoint_root, record.job_id
            )
        except FileNotFoundError:
            payload["run"] = None
        else:
            payload["run"] = run_summary(checkpoint)
        return payload

    def jobs_payload(self):
        with self._lock:
            records = sorted(
                self.jobs.values(), key=lambda r: (r.submitted, r.job_id)
            )
        return [self.job_payload(record) for record in records]

    def _note_event(self, event):
        with self._lock:
            self._last_event = time.monotonic()
            if event == "pool_rebuilt":
                self._stats["pool_rebuilds"] += 1
            elif event == "serial_fallback":
                self._stats["serial_fallbacks"] += 1
            elif event == "stall_detected":
                self._stats["stalls"] += 1

    def status(self):
        """The ``/status`` payload: queue, pool, heartbeat, cache health."""
        cache = self.runner.result_cache
        with self._lock:
            queued = len(self._queue)
            running = self._running
            depth = queued + (1 if running else 0)
            if self._draining:
                state = "draining"
            elif depth >= self.queue_max:
                state = "degraded"
            else:
                state = "running"
            counts = dict.fromkeys(JOB_STATES, 0)
            for record in self.jobs.values():
                counts[record.state] += 1
            heartbeat_age = (
                time.monotonic() - self._last_event
                if running is not None and self._last_event is not None
                else None
            )
            stats = dict(self._stats)
            draining = self._draining
        hits = cache.hits if cache is not None else 0
        misses = cache.misses if cache is not None else 0
        lookups = hits + misses
        return {
            "state": state,
            "uptime_s": time.monotonic() - self._started,
            "queue": {
                "depth": depth,
                "queued": queued,
                "running": running,
                "max": self.queue_max,
            },
            "jobs": counts,
            "admission": {
                "shed": stats["shed"],
                "cache_served": stats["cache_served"],
                "client_max": self.client_max,
                "draining": draining,
            },
            "pool": {
                "rebuilds": stats["pool_rebuilds"],
                "serial_fallbacks": stats["serial_fallbacks"],
                "stalls": stats["stalls"],
            },
            "heartbeat_age_s": heartbeat_age,
            "recovered": stats["recovered"],
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else None,
            },
        }

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #

    def _next_job(self):
        with self._wake:
            while not self._queue and not self._draining:
                self._wake.wait(timeout=0.1)
            if self._draining:
                return None
            job_id = self._queue.pop(0)
            self._running = job_id
            record = self.jobs[job_id]
            record.state = JOB_RUNNING
            return record

    def _run_loop(self):
        while True:
            record = self._next_job()
            if record is None:
                return
            self.journal.append(record.job_id, JOB_RUNNING)
            state, error = self._execute(record)
            with self._wake:
                self._running = None
                record.state = state
                record.error = error
                # repro: noqa[nondet] display-only transition stamp
                record.updated = time.time()
            self.journal.append(record.job_id, state, error=error)
            self.telemetry.emit(
                "service_job_" + state, job_id=record.job_id, error=error
            )

    def _execute(self, record):
        """Run one job through the resilient executor; returns (state, error)."""
        checkpoint = self._checkpoint_for(record)
        try:
            checkpoint.verify(self.runner)
            points = checkpoint.points()
            outcome = run_sweep_resilient(
                self.runner,
                points,
                jobs=self.sweep_jobs,
                policy=self.runner.fault_policy,
                telemetry=self._sink,
                injector=self.injector,
                checkpoint=checkpoint,
                shutdown=self._latch,
            )
        except Exception as exc:  # noqa: BLE001 - a job must never kill the loop
            return JOB_FAILED, f"{type(exc).__name__}: {exc}"
        finally:
            checkpoint.close()
        if outcome.interrupted:
            return JOB_INTERRUPTED, None
        if outcome.failures:
            failure = outcome.failures[0]
            return (
                JOB_FAILED,
                f"{len(outcome.failures)} point(s) failed; first: "
                f"{failure.point} ({failure.mode}) — {failure.reason}",
            )
        return JOB_COMPLETED, None
