"""Phase-shape invariants across every kernel in the suite.

Parametrized over all nine workloads: whatever the kernel, its phase plans
must satisfy the structural invariants the runner and the paper's model
rely on.
"""

import numpy as np
import pytest

from repro.core.config import CobraConfig
from repro.harness.inputs import WORKLOAD_INPUTS, make_workload
from repro.pb import BinSpec

SCALE = 13

ALL_WORKLOADS = sorted(WORKLOAD_INPUTS)


@pytest.fixture(scope="module")
def workloads():
    return {
        name: make_workload(name, WORKLOAD_INPUTS[name][0], scale=SCALE)
        for name in ALL_WORKLOADS
    }


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestPhaseInvariants:
    def test_baseline_single_phase(self, workloads, name):
        phases = workloads[name].baseline_phases()
        assert len(phases) == 1
        assert phases[0].instructions > 0

    def test_pb_phase_order_and_volumes(self, workloads, name):
        workload = workloads[name]
        spec = BinSpec.from_num_bins(workload.num_indices, 64)
        init, binning, accumulate = workload.pb_phases(spec)
        assert (init.name, binning.name, accumulate.name) == (
            "init",
            "binning",
            "accumulate",
        )
        # Binning buffers every update at least once into C-Buffers.
        assert binning.irregular_accesses == workload.num_updates
        # Accumulate replays every update against the data region(s).
        assert accumulate.irregular_accesses >= workload.num_updates
        # The bins round-trip through DRAM: NT writes cover the stream.
        tuples_per_line = 64 // workload.tuple_bytes
        assert binning.nt_write_lines >= workload.num_updates // tuples_per_line

    def test_accumulate_is_bin_major(self, workloads, name):
        workload = workloads[name]
        spec = BinSpec.from_num_bins(workload.num_indices, 64)
        accumulate = workload.pb_phases(spec)[2]
        bins = spec.bins_of(accumulate.segments[0].indices)
        assert np.all(np.diff(bins) >= 0)

    def test_cobra_binning_invariants(self, workloads, name):
        workload = workloads[name]
        cobra = CobraConfig(
            num_indices=workload.num_indices,
            tuple_bytes=workload.tuple_bytes,
        )
        binning = workload.cobra_phases(cobra)[1]
        assert binning.segments == []  # pinned C-Buffers never miss
        assert binning.hw_write_lines > 0
        assert binning.reserved_ways == (
            cobra.l1_reserved_ways,
            cobra.l2_reserved_ways,
            cobra.llc_reserved_ways,
        )
        # binupdate replaces the software sequence: strictly fewer
        # instructions than PB Binning at any bin count.
        spec = BinSpec.from_num_bins(workload.num_indices, 64)
        sw_binning = workload.pb_phases(spec)[1]
        assert binning.instructions < sw_binning.instructions

    def test_segment_indices_in_region_bounds(self, workloads, name):
        workload = workloads[name]
        spec = BinSpec.from_num_bins(workload.num_indices, 64)
        for phase in workload.baseline_phases() + workload.pb_phases(spec):
            for segment in phase.segments:
                if len(segment.indices) == 0:
                    continue
                assert segment.indices.min() >= 0
                assert segment.indices.max() < segment.region.num_elements

    def test_branch_site_outcomes_are_boolean(self, workloads, name):
        workload = workloads[name]
        spec = BinSpec.from_num_bins(workload.num_indices, 64)
        for phase in workload.baseline_phases() + workload.pb_phases(spec):
            for site in phase.branch_sites:
                assert site.outcomes.dtype == bool
                assert site.count >= len(site.outcomes)
