"""Tests for Workload base hooks and defaults."""

import numpy as np
import pytest

from repro.graphs import rmat
from repro.workloads import DegreeCount, Workload
from repro.workloads.base import PhaseSpec, RegionSpec, Segment


@pytest.fixture(scope="module")
def workload():
    return DegreeCount(rmat(1 << 10, 1 << 13, seed=33))


class TestDefaults:
    def test_base_hooks_are_empty(self, workload):
        assert workload.extra_baseline_segments() == []
        assert workload.extra_accumulate_segments(np.arange(3)) == []
        assert workload.extra_branch_sites("main") == []

    def test_reference_hooks_abstract(self):
        class Bare(Workload):
            pass

        bare = Bare()
        with pytest.raises(NotImplementedError):
            bare.run_reference()
        with pytest.raises(NotImplementedError):
            bare.run_pb_functional()

    def test_characterization_defaults_to_baseline(self, workload):
        baseline = workload.baseline_phases()
        character = workload.characterization_phases()
        assert len(baseline) == len(character)
        assert baseline[0].instructions == character[0].instructions


class TestPhaseSpec:
    def test_irregular_accesses_sums_segments(self):
        region = RegionSpec("r", 4, 100)
        phase = PhaseSpec(
            name="p",
            instructions=0,
            segments=[
                Segment(region, np.arange(10)),
                Segment(region, np.arange(7)),
            ],
        )
        assert phase.irregular_accesses == 17

    def test_defaults(self):
        phase = PhaseSpec(name="p", instructions=5)
        assert phase.segments == []
        assert phase.trace_scale == 1.0
        assert phase.coalesced_discount == 0
        assert not phase.shared_llc
        assert phase.des_trace is None

    def test_segment_coerces_indices(self):
        region = RegionSpec("r", 4, 100)
        segment = Segment(region, [1, 2, 3])
        assert segment.indices.dtype == np.int64

    def test_region_validation(self):
        with pytest.raises(ValueError):
            RegionSpec("r", 0, 10)
        with pytest.raises(ValueError):
            RegionSpec("r", 4, 0)


class TestSitePc:
    def test_stable_within_run(self):
        from repro.workloads.base import site_pc

        assert site_pc("w", "s") == site_pc("w", "s")
        assert site_pc("w", "s") != site_pc("w", "t")
        assert 0 <= site_pc("w", "s") <= 0xFFFF_FFFF

    def test_pinned_values_across_processes(self):
        """CRC-32 pseudo-PCs are process-independent (unlike ``hash()``,
        whose per-process salt broke run-to-run determinism and the
        process-pool sweep executor). Pinned so a regression is loud."""
        from repro.workloads.base import site_pc

        assert site_pc("w", "s") == 1113217336
        assert site_pc("degree-count", "bin-full") == 208757016
        assert site_pc("pagerank", "neighbor-loop") == 1270923835
