"""Functional tests for the graph workloads.

The central claim tested here is Section III-B's: PB's reordering (and any
per-bin order) preserves kernel semantics — exactly for commutative
kernels, up to semantic equality for non-commutative ones.
"""

import numpy as np
import pytest

from repro.graphs import build_csr, rmat
from repro.workloads import DegreeCount, NeighborPopulate, Pagerank, Radii


@pytest.fixture(scope="module")
def edges():
    return rmat(1 << 11, 1 << 14, seed=21)


@pytest.fixture(scope="module")
def graph(edges):
    return build_csr(edges)


class TestDegreeCount:
    def test_pb_matches_reference(self, edges):
        workload = DegreeCount(edges)
        assert np.array_equal(
            workload.run_reference(), workload.run_pb_functional(num_bins=32)
        )

    def test_reference_sums_to_edges(self, edges):
        workload = DegreeCount(edges)
        assert workload.run_reference().sum() == edges.num_edges

    def test_metadata(self, edges):
        workload = DegreeCount(edges)
        assert workload.commutative
        assert workload.tuple_bytes == 4
        assert workload.num_updates == edges.num_edges


class TestNeighborPopulate:
    def test_pb_produces_identical_csr(self, edges):
        # Stable FIFO bins preserve per-source order, so the PB result is
        # bit-identical, not just semantically equal.
        workload = NeighborPopulate(edges)
        reference = workload.run_reference()
        pb = workload.run_pb_functional(num_bins=64)
        assert np.array_equal(reference.neighbors, pb.neighbors)

    def test_reference_matches_substrate(self, edges, graph):
        workload = NeighborPopulate(edges)
        assert np.array_equal(workload.run_reference().neighbors, graph.neighbors)

    def test_non_commutative_flag(self, edges):
        assert not NeighborPopulate(edges).commutative

    def test_slots_are_a_permutation(self, edges):
        workload = NeighborPopulate(edges)
        assert np.array_equal(
            np.sort(workload._slots), np.arange(edges.num_edges)
        )

    def test_accumulate_segment_slots_match_order(self, edges):
        workload = NeighborPopulate(edges)
        order = np.arange(edges.num_edges)[::-1].copy()
        (segment,) = workload.extra_accumulate_segments(order)
        assert np.array_equal(segment.indices, workload._slots[order])


class TestPagerank:
    def test_pb_matches_reference(self, graph):
        workload = Pagerank(graph)
        assert np.allclose(
            workload.run_reference(), workload.run_pb_functional(num_bins=32)
        )

    def test_scores_sum_near_one(self, graph):
        # One iteration over a graph with dangling vertices loses a bit of
        # mass; the total stays in (0, 1].
        total = Pagerank(graph).run_reference().sum()
        assert 0.3 < total <= 1.0 + 1e-9

    def test_damping_validated(self, graph):
        with pytest.raises(ValueError):
            Pagerank(graph, damping=1.5)

    def test_convergence(self, graph):
        scores, iterations = Pagerank(graph).run_to_convergence(tol=1e-6)
        assert 1 < iterations <= 100
        # Converged scores are a fixed point (one more iteration moves
        # them less than the tolerance).
        assert scores.min() > 0

    def test_boundary_branch_site_present(self, graph):
        workload = Pagerank(graph)
        sites = workload.extra_branch_sites("binning")
        assert sites and sites[0].name == "neigh_boundary"
        assert len(sites[0].outcomes) == workload.num_updates


class TestRadii:
    def test_pb_matches_reference(self, graph):
        workload = Radii(graph, seed=5)
        assert np.array_equal(
            workload.run_reference(), workload.run_pb_functional(num_bins=32)
        )

    def test_or_only_sets_bits(self, graph):
        workload = Radii(graph, seed=5)
        result = workload.run_reference()
        # OR can only add bits on top of the previous visited state.
        assert np.all((workload.visited & ~result) == 0)

    def test_frontier_fraction_scales_updates(self, graph):
        small = Radii(graph, frontier_fraction=0.2, seed=5).num_updates
        large = Radii(graph, frontier_fraction=0.9, seed=5).num_updates
        assert small < large

    def test_frontier_fraction_validated(self, graph):
        with pytest.raises(ValueError):
            Radii(graph, frontier_fraction=0.0)

    def test_two_branch_sites_when_streaming(self, graph):
        sites = Radii(graph, seed=5).extra_branch_sites("main")
        assert {s.name for s in sites} == {"frontier_active", "neigh_boundary"}
