"""Tests for the uniform result-validation helpers."""

import numpy as np
import pytest

from repro.graphs import CSRGraph, rmat
from repro.sparse import poisson2d, random_permutation, random_symmetric
from repro.workloads import (
    DegreeCount,
    IntegerSort,
    NeighborPopulate,
    Pagerank,
    PInv,
    Radii,
    SpMV,
    SymPerm,
    Transpose,
)
from repro.workloads.validate import results_equal, verify_workload


class TestResultsEqual:
    def test_integer_arrays_exact(self):
        assert results_equal(np.array([1, 2]), np.array([1, 2]))
        assert not results_equal(np.array([1, 2]), np.array([1, 3]))

    def test_float_arrays_tolerant(self):
        a = np.array([1.0, 2.0])
        assert results_equal(a, a + 1e-12)
        assert not results_equal(a, a + 1e-3)

    def test_shape_mismatch(self):
        assert not results_equal(np.zeros(3), np.zeros(4))

    def test_csr_graphs_by_neighbor_sets(self):
        a = CSRGraph(np.array([0, 2, 2]), np.array([1, 0]))
        b = CSRGraph(np.array([0, 2, 2]), np.array([0, 1]))  # permuted row
        assert results_equal(a, b)

    def test_csr_graphs_differ(self):
        a = CSRGraph(np.array([0, 2, 2]), np.array([1, 0]))
        c = CSRGraph(np.array([0, 2, 2]), np.array([1, 1]))
        assert not results_equal(a, c)

    def test_csr_matrices_by_row_sets(self):
        base = poisson2d(6, seed=1).to_csr()
        assert results_equal(base, base.canonical())

    def test_tuples_recurse(self):
        a = (np.array([1]), np.array([2.0]))
        b = (np.array([1]), np.array([2.0 + 1e-12]))
        assert results_equal(a, b)
        assert not results_equal(a, (np.array([1]),))


class TestVerifyWorkload:
    @pytest.fixture(scope="class")
    def edges(self):
        return rmat(1 << 11, 1 << 14, seed=55)

    @pytest.fixture(scope="class")
    def graph(self, edges):
        from repro.graphs import build_csr

        return build_csr(edges)

    def test_every_kernel_verifies(self, edges, graph, rng):
        matrix = poisson2d(48, seed=3).to_csr()
        n = matrix.num_rows
        workloads = [
            DegreeCount(edges),
            NeighborPopulate(edges),
            Pagerank(graph),
            Radii(graph, seed=4),
            IntegerSort(rng.integers(0, 512, size=4000), 512),
            SpMV(matrix, seed=5),
            PInv(random_permutation(n, seed=6)),
            Transpose(matrix),
            SymPerm(random_symmetric(n, n, seed=7), random_permutation(n, seed=8)),
        ]
        for workload in workloads:
            assert verify_workload(workload, num_bins=32)

    def test_failure_is_diagnosed(self, edges):
        class Broken(DegreeCount):
            def run_pb_functional(self, num_bins=256):
                result = super().run_pb_functional(num_bins)
                result[0] += 1  # corrupt
                return result

        with pytest.raises(AssertionError, match="unordered parallelism"):
            verify_workload(Broken(edges))
